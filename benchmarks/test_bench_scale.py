"""Scale benchmark: the vectorized hot path vs the scalar reference path.

For fleets of 100 / 500 / 2000 Local Controllers the same churn scenario runs
twice from one seed:

* **old path** -- ``telemetry="objects"``, ``coalesce_events=False``: per-VM
  sample objects, one timer event per LC per interval, one Timeout per
  heartbeat peer, one delivery event per message (the pre-optimization event
  structure);
* **new path** -- ``telemetry="arrays"``, ``coalesce_events=True`` (the
  defaults): the shared TelemetryPlane, coalesced tick groups, deadline
  tables and batched deliveries.

Both paths must produce **byte-identical** ScenarioResults (asserted) -- the
benchmark measures pure mechanical speed on identical simulated behaviour.

Throughput is reported as *events per second*: simulator events of the
reference path retired per wall-clock second.  The workload is fixed, so the
reference path's event count measures it for both paths (the optimized path
completes the same simulated work with fewer, cheaper events; crediting it
with its own smaller count would reward doing the same work in fewer events
with a *lower* score).  ``improvement`` is therefore exactly the wall-clock
speedup.

A third, untimed run per fleet repeats the new path with profiling enabled
and folds the event-loop breakdown into the fleet entry: component and
handler wall-clock shares plus per-kind policy decision latency, so the
scale numbers say *where* the time goes, not just how much.  The profiled
run must stay canonically identical to the timed ones (asserted).

Results land in ``benchmarks/results/BENCH_SCALE.json`` (per-fleet entries
are merged across invocations).  The default run covers the 100-LC point so
the tier-1 suite stays fast; set ``REPRO_BENCH_SCALE_FLEETS=100,500,2000``
for the full sweep.  With ``REPRO_BENCH_STRICT=1`` the 100-LC point is gated
against the committed baseline (``benchmarks/BENCH_SCALE_BASELINE.json``):
the run fails if events/sec regresses more than 2x below it (CI's ``scale``
job runs exactly this).
"""

from __future__ import annotations

import gc
import json
import os
from pathlib import Path

from repro.metrics.report import ComparisonTable
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadPhase

from benchmarks.conftest import results_path, write_results_json

#: Committed regression baseline for the CI-gated 100-LC point.
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_SCALE_BASELINE.json"

#: Fleet sizes and per-fleet workload sizing (duration shrinks as fleets grow
#: so every point stays laptop-sized; throughput is per-second anyway).
FLEETS = {
    100: {"group_managers": 4, "vms": 120, "duration": 600.0},
    500: {"group_managers": 8, "vms": 600, "duration": 240.0},
    2000: {"group_managers": 16, "vms": 2000, "duration": 120.0},
}

SEED = 2012


def _configured_fleets() -> list:
    raw = os.environ.get("REPRO_BENCH_SCALE_FLEETS", "100")
    fleets = sorted({int(token) for token in raw.split(",") if token.strip()})
    unknown = [fleet for fleet in fleets if fleet not in FLEETS]
    if unknown:
        raise ValueError(f"unknown fleet size(s) {unknown}; choose from {sorted(FLEETS)}")
    return fleets


def _fleet_spec(lcs: int, telemetry: str, coalesce: bool) -> ScenarioSpec:
    sizing = FLEETS[lcs]
    return ScenarioSpec(
        name=f"bench-scale-{lcs}",
        description="scale benchmark cell",
        duration=sizing["duration"],
        local_controllers=lcs,
        group_managers=sizing["group_managers"],
        nodes_per_rack=40,
        record_interval=60.0,
        config={
            # Deterministic network: identical behaviour on both paths and the
            # delivery-batching fast path is reachable on the new one.
            "network": {"base_latency": 0.001, "jitter": 0.0, "loss_probability": 0.0},
            "telemetry": telemetry,
            "coalesce_events": coalesce,
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=sizing["vms"],
                arrival={"kind": "poisson", "rate_per_hour": 3600.0 * sizing["vms"] / sizing["duration"] / 2.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": sizing["duration"] / 3.0, "minimum": 30.0},
            )
        ],
    )


#: Timed repetitions per path; the fastest wall clock is kept (standard
#: benchmarking practice: the minimum is the least noise-contaminated sample).
ROUNDS = 2


def _run_path(lcs: int, telemetry: str, coalesce: bool) -> dict:
    wall = None
    result = None
    events = 0
    for _ in range(ROUNDS):
        runner = ScenarioRunner(_fleet_spec(lcs, telemetry, coalesce), seed=SEED)
        gc.collect()
        gc.disable()
        try:
            result = runner.run()
        finally:
            gc.enable()
        events = runner.system.sim.processed_events
        round_wall = result.perf["wall_clock_seconds"]
        wall = round_wall if wall is None else min(wall, round_wall)
    return {
        "wall_clock_seconds": round(wall, 4),
        "processed_events": int(events),
        "raw_events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
        "_canonical": result.canonical_json(),
        "_wall": wall,
    }


def _decision_latency(observability: dict) -> dict:
    """Per-kind policy decision latency from a result observability section."""
    counts = observability.get("histogram_counts", {}).get("policy_decision_seconds", {})
    seconds = observability.get("histogram_seconds", {}).get("policy_decision_seconds", {})
    by_kind: dict = {}
    for labels, calls in counts.items():
        kind = next(
            (
                part.split("=", 1)[1].strip('"')
                for part in labels.split(",")
                if part.startswith("kind=")
            ),
            labels,
        )
        agg = by_kind.setdefault(kind, {"calls": 0, "wall_seconds": 0.0})
        agg["calls"] += int(calls)
        agg["wall_seconds"] = round(agg["wall_seconds"] + seconds.get(labels, 0.0), 6)
    return by_kind


def _profile_fleet(lcs: int) -> dict:
    """One profiled (untimed) new-path run: where does the wall clock go?"""
    base = _fleet_spec(lcs, telemetry="arrays", coalesce=True).to_dict()
    base["config"] = dict(base["config"])
    base["config"]["observability"] = {"metrics": True, "tracing": False, "profiling": True}
    runner = ScenarioRunner(ScenarioSpec.from_dict(base), seed=SEED)
    result = runner.run()
    summary = runner.system.obs.profiler.summary(top=8)
    return {
        "_canonical": result.canonical_json(),
        "handler_calls": summary["handler_calls"],
        "profiled_seconds": summary["total_seconds"],
        "component_shares": {
            name: entry["share"] for name, entry in summary["components"].items()
        },
        "top_handlers": {
            name: {"calls": entry["calls"], "share": entry["share"]}
            for name, entry in summary["handlers"].items()
        },
        "decision_latency": _decision_latency(result.observability),
    }


def _measure_fleet(lcs: int) -> dict:
    sizing = FLEETS[lcs]
    old = _run_path(lcs, telemetry="objects", coalesce=False)
    new = _run_path(lcs, telemetry="arrays", coalesce=True)
    new_canonical = new.pop("_canonical")
    identical = old.pop("_canonical") == new_canonical
    profile = _profile_fleet(lcs)
    profiled_identical = profile.pop("_canonical") == new_canonical
    wall_old, wall_new = old.pop("_wall"), new.pop("_wall")
    reference_events = old["processed_events"]
    eps_old = reference_events / wall_old if wall_old > 0 else 0.0
    eps_new = reference_events / wall_new if wall_new > 0 else 0.0
    return {
        "local_controllers": lcs,
        "group_managers": sizing["group_managers"],
        "vms": sizing["vms"],
        "simulated_seconds": sizing["duration"],
        "seed": SEED,
        "old": old,
        "new": new,
        "events_per_second": {"old": round(eps_old, 1), "new": round(eps_new, 1)},
        "events_per_second_definition": (
            "reference-path simulator events retired per wall-clock second; "
            "the fixed workload is measured by the reference path's event "
            "count, so improvement equals the wall-clock speedup"
        ),
        "improvement": round(eps_new / eps_old, 2) if eps_old > 0 else 0.0,
        "results_identical": identical,
        "profiled_result_identical": profiled_identical,
        "profile": profile,
    }


def _merge_results(entries: dict) -> None:
    path = results_path("BENCH_SCALE.json")
    summary = {"benchmark": "scale", "fleets": {}}
    if path is not None and path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("fleets"), dict):
                summary = existing
        except (json.JSONDecodeError, OSError):
            pass
    summary["fleets"].update({str(lcs): entry for lcs, entry in entries.items()})
    write_results_json("BENCH_SCALE.json", summary)


def test_scale_vectorized_vs_scalar_path(benchmark):
    entries = {}
    table = ComparisonTable("Hot-path scale: scalar/per-event vs vectorized/coalesced")

    def run_all():
        for lcs in _configured_fleets():
            entries[lcs] = _measure_fleet(lcs)
        return [
            {
                "lcs": entry["local_controllers"],
                "events_per_second_old": entry["events_per_second"]["old"],
                "events_per_second_new": entry["events_per_second"]["new"],
                "improvement": entry["improvement"],
            }
            for entry in entries.values()
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    for entry in entries.values():
        table.add_row(
            lcs=entry["local_controllers"],
            wall_old_s=entry["old"]["wall_clock_seconds"],
            wall_new_s=entry["new"]["wall_clock_seconds"],
            events_old=entry["old"]["processed_events"],
            events_new=entry["new"]["processed_events"],
            eps_old=entry["events_per_second"]["old"],
            eps_new=entry["events_per_second"]["new"],
            improvement=entry["improvement"],
            identical=entry["results_identical"],
        )
    table.print()
    _merge_results(entries)

    # The optimization must be a pure refactor: byte-identical results.
    for entry in entries.values():
        assert entry["results_identical"], (
            f"old/new paths diverged at {entry['local_controllers']} LCs"
        )
        assert entry["profiled_result_identical"], (
            f"profiling changed the result at {entry['local_controllers']} LCs"
        )
        assert entry["improvement"] > 0
    assert rows

    # CI regression gate: the 100-LC point must stay within 2x of the
    # committed baseline (only enforced in strict mode so cold laptops and
    # busy CI runners do not flake the tier-1 suite).
    if os.environ.get("REPRO_BENCH_STRICT") and 100 in entries:
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["events_per_second"] / 2.0
        measured = entries[100]["events_per_second"]["new"]
        assert measured >= floor, (
            f"events/sec regression at 100 LCs: measured {measured:.0f}, "
            f"baseline {baseline['events_per_second']:.0f} (floor {floor:.0f}); "
            "if the slowdown is intentional, refresh benchmarks/BENCH_SCALE_BASELINE.json"
        )
