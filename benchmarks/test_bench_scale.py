"""Scale benchmark: the vectorized hot path vs the scalar reference path.

For fleets of 100 / 500 / 2000 Local Controllers the same churn scenario runs
twice from one seed:

* **old path** -- ``telemetry="objects"``, ``coalesce_events=False``: per-VM
  sample objects, one timer event per LC per interval, one Timeout per
  heartbeat peer, one delivery event per message (the pre-optimization event
  structure);
* **new path** -- ``telemetry="arrays"``, ``coalesce_events=True`` (the
  defaults): the shared TelemetryPlane, coalesced tick groups, deadline
  tables and batched deliveries.

Both paths must produce **byte-identical** ScenarioResults (asserted) -- the
benchmark measures pure mechanical speed on identical simulated behaviour.

Throughput is reported as *events per second*: simulator events of the
reference path retired per wall-clock second.  The workload is fixed, so the
reference path's event count measures it for both paths (the optimized path
completes the same simulated work with fewer, cheaper events; crediting it
with its own smaller count would reward doing the same work in fewer events
with a *lower* score).  ``improvement`` is therefore exactly the wall-clock
speedup.

A third, untimed run per fleet repeats the new path with profiling enabled
and folds the event-loop breakdown into the fleet entry: component and
handler wall-clock shares plus per-kind policy decision latency, so the
scale numbers say *where* the time goes, not just how much.  The profiled
run must stay canonically identical to the timed ones (asserted).

Results land in ``benchmarks/results/BENCH_SCALE.json`` (per-fleet entries
are merged across invocations).  The default run covers the 100-LC point so
the tier-1 suite stays fast; set ``REPRO_BENCH_SCALE_FLEETS=100,500,2000``
for the full sweep.  With ``REPRO_BENCH_STRICT=1`` the 100-LC point is gated
against the committed baseline (``benchmarks/BENCH_SCALE_BASELINE.json``):
the run fails if events/sec regresses more than 2x below it (CI's ``scale``
job runs exactly this).

A second benchmark extends the sweep past what the object-level hierarchy can
reach: ``test_megafleet_flat_scale`` runs the sharded lockstep engine
(:mod:`repro.megafleet`) over 100-LC, 10k-LC and (best-effort, env-gated)
100k-LC cells and records their events/sec under the ``megafleet`` key of the
same JSON.  Because the engine's per-event cost is flat by construction, the
10k cell is **gated** at >= 0.8x the 100-LC cell's events/sec -- the
flat-scaling claim of ROADMAP item 2, checked on every CI run of the
``megafleet`` job.  Set ``REPRO_BENCH_MEGAFLEET_FLEETS=100,10000,100000`` to
include the 100k point.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.megafleet import ShardedFleetSimulator, get_megafleet
from repro.metrics.report import ComparisonTable
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadPhase

from benchmarks.conftest import results_path, write_results_json

#: Committed regression baseline for the CI-gated 100-LC point.
BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_SCALE_BASELINE.json"

#: Fleet sizes and per-fleet workload sizing (duration shrinks as fleets grow
#: so every point stays laptop-sized; throughput is per-second anyway).  The
#: 500 and 2000 cells share the same per-LC workload intensity (1.2 VMs per
#: LC over 240 simulated seconds) *and* the same ~62-LC group size: Snooze
#: scales by adding constant-size groups, so their events/sec compare the
#: per-event mechanical cost at different fleet sizes rather than different
#: event mixes or group sizes -- the decay criterion of ROADMAP item 2 is
#: judged on this pair.
FLEETS = {
    100: {"group_managers": 4, "vms": 120, "duration": 600.0},
    500: {"group_managers": 8, "vms": 600, "duration": 240.0},
    2000: {"group_managers": 32, "vms": 2400, "duration": 240.0},
}

SEED = 2012


def _configured_fleets() -> list:
    raw = os.environ.get("REPRO_BENCH_SCALE_FLEETS", "100")
    fleets = sorted({int(token) for token in raw.split(",") if token.strip()})
    unknown = [fleet for fleet in fleets if fleet not in FLEETS]
    if unknown:
        raise ValueError(f"unknown fleet size(s) {unknown}; choose from {sorted(FLEETS)}")
    return fleets


def _fleet_spec(lcs: int, telemetry: str, coalesce: bool) -> ScenarioSpec:
    sizing = FLEETS[lcs]
    return ScenarioSpec(
        name=f"bench-scale-{lcs}",
        description="scale benchmark cell",
        duration=sizing["duration"],
        local_controllers=lcs,
        group_managers=sizing["group_managers"],
        nodes_per_rack=40,
        record_interval=60.0,
        config={
            # Deterministic network: identical behaviour on both paths and the
            # delivery-batching fast path is reachable on the new one.
            "network": {"base_latency": 0.001, "jitter": 0.0, "loss_probability": 0.0},
            "telemetry": telemetry,
            "coalesce_events": coalesce,
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=sizing["vms"],
                arrival={"kind": "poisson", "rate_per_hour": 3600.0 * sizing["vms"] / sizing["duration"] / 2.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": sizing["duration"] / 3.0, "minimum": 30.0},
            )
        ],
    )


#: Timed repetitions per path; the fastest wall clock is kept (standard
#: benchmarking practice: the minimum is the least noise-contaminated sample).
ROUNDS = int(os.environ.get("REPRO_BENCH_SCALE_ROUNDS", "2"))

#: The two timed configurations: the seed's per-event/object path and the
#: vectorized/coalesced path this benchmark exists to compare against it.
PATHS = {
    "old": {"telemetry": "objects", "coalesce": False},
    "new": {"telemetry": "arrays", "coalesce": True},
}


#: Run one timed scenario in a *fresh interpreter* and report wall clock,
#: event count and a digest of the canonical result.  Process isolation is
#: the point: repeated runs in one process inherit allocator and cache state
#: from their predecessors, which inflates later (and larger) cells' walls
#: by up to ~10% -- enough to swamp the flat-scale comparison this benchmark
#: exists to make.
_CHILD_SCRIPT = """
import gc, hashlib, json, sys
lcs, telemetry, coalesce = int(sys.argv[1]), sys.argv[2], sys.argv[3] == "1"
from test_bench_scale import SEED, _fleet_spec
from repro.scenarios import ScenarioRunner
runner = ScenarioRunner(_fleet_spec(lcs, telemetry, coalesce), seed=SEED)
gc.collect()
gc.disable()
try:
    result = runner.run()
finally:
    gc.enable()
print(json.dumps({
    "wall": result.perf["wall_clock_seconds"],
    "events": runner.system.sim.processed_events,
    "digest": hashlib.sha256(result.canonical_json().encode()).hexdigest(),
}))
"""


def _canonical_digest(canonical_json: str) -> str:
    return hashlib.sha256(canonical_json.encode()).hexdigest()


def _timed_run(lcs: int, telemetry: str, coalesce: bool) -> dict:
    here = Path(__file__).resolve().parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(here), str(here.parent / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(lcs), telemetry, "1" if coalesce else "0"],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark child (lcs={lcs}, telemetry={telemetry}) failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _interleaved_timings(cells: list) -> dict:
    """Min-of-ROUNDS walls for every (cell, path) pair, rounds interleaved.

    Each round sweeps all pairs once, so the cells being *compared* (the
    flat-scale criterion ranks events/sec across cells) are measured seconds
    -- not minutes -- apart and see the same host weather; the min over
    rounds then discards transient noise per pair.  On a shared host,
    measuring one cell's rounds back-to-back before the next cell's biases
    whichever cell hits the noisier minutes.
    """
    pairs = [(lcs, key) for lcs in cells for key in PATHS]
    timings: dict = {}
    for sweep in range(ROUNDS):
        # Rotate the sweep order so no cell always runs last: allocator and
        # cache state accumulated by earlier runs in the same process inflates
        # later walls, and a fixed order turns that into a systematic bias
        # against whichever cell sits at the end.
        offset = (sweep * 2) % len(pairs) if pairs else 0
        for lcs, key in pairs[offset:] + pairs[:offset]:
            run = _timed_run(lcs, **PATHS[key])
            slot = timings.setdefault((lcs, key), run)
            slot["wall"] = min(slot["wall"], run["wall"])
    return timings


def _decision_latency(observability: dict) -> dict:
    """Per-kind policy decision latency from a result observability section."""
    counts = observability.get("histogram_counts", {}).get("policy_decision_seconds", {})
    seconds = observability.get("histogram_seconds", {}).get("policy_decision_seconds", {})
    by_kind: dict = {}
    for labels, calls in counts.items():
        kind = next(
            (
                part.split("=", 1)[1].strip('"')
                for part in labels.split(",")
                if part.startswith("kind=")
            ),
            labels,
        )
        agg = by_kind.setdefault(kind, {"calls": 0, "wall_seconds": 0.0})
        agg["calls"] += int(calls)
        agg["wall_seconds"] = round(agg["wall_seconds"] + seconds.get(labels, 0.0), 6)
    return by_kind


def _profile_fleet(lcs: int) -> dict:
    """One profiled (untimed) new-path run: where does the wall clock go?"""
    base = _fleet_spec(lcs, telemetry="arrays", coalesce=True).to_dict()
    base["config"] = dict(base["config"])
    base["config"]["observability"] = {"metrics": True, "tracing": False, "profiling": True}
    runner = ScenarioRunner(ScenarioSpec.from_dict(base), seed=SEED)
    result = runner.run()
    summary = runner.system.obs.profiler.summary(top=8)
    return {
        "_canonical": result.canonical_json(),
        "handler_calls": summary["handler_calls"],
        "profiled_seconds": summary["total_seconds"],
        "component_shares": {
            name: entry["share"] for name, entry in summary["components"].items()
        },
        "top_handlers": {
            name: {"calls": entry["calls"], "share": entry["share"]}
            for name, entry in summary["handlers"].items()
        },
        "decision_latency": _decision_latency(result.observability),
    }


def _path_summary(run: dict) -> dict:
    wall = run["wall"]
    return {
        "wall_clock_seconds": round(wall, 4),
        "processed_events": int(run["events"]),
        "raw_events_per_second": round(run["events"] / wall, 1) if wall > 0 else 0.0,
    }


def _measure_fleet(lcs: int, timings: dict) -> dict:
    sizing = FLEETS[lcs]
    old, new = timings[(lcs, "old")], timings[(lcs, "new")]
    identical = old["digest"] == new["digest"]
    profile = _profile_fleet(lcs)
    profiled_identical = _canonical_digest(profile.pop("_canonical")) == new["digest"]
    wall_old, wall_new = old["wall"], new["wall"]
    reference_events = old["events"]
    eps_old = reference_events / wall_old if wall_old > 0 else 0.0
    eps_new = reference_events / wall_new if wall_new > 0 else 0.0
    return {
        "local_controllers": lcs,
        "group_managers": sizing["group_managers"],
        "vms": sizing["vms"],
        "simulated_seconds": sizing["duration"],
        "seed": SEED,
        "old": _path_summary(old),
        "new": _path_summary(new),
        "events_per_second": {"old": round(eps_old, 1), "new": round(eps_new, 1)},
        "events_per_second_definition": (
            "reference-path simulator events retired per wall-clock second; "
            "the fixed workload is measured by the reference path's event "
            "count, so improvement equals the wall-clock speedup"
        ),
        "improvement": round(eps_new / eps_old, 2) if eps_old > 0 else 0.0,
        "results_identical": identical,
        "profiled_result_identical": profiled_identical,
        "profile": profile,
    }


def _merge_results(entries: dict, section: str = "fleets") -> None:
    path = results_path("BENCH_SCALE.json")
    summary = {"benchmark": "scale", "fleets": {}}
    if path is not None and path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("fleets"), dict):
                summary = existing
        except (json.JSONDecodeError, OSError):
            pass
    summary.setdefault(section, {})
    summary[section].update({str(lcs): entry for lcs, entry in entries.items()})
    write_results_json("BENCH_SCALE.json", summary)


def test_scale_vectorized_vs_scalar_path(benchmark):
    entries = {}
    table = ComparisonTable("Hot-path scale: scalar/per-event vs vectorized/coalesced")

    def run_all():
        cells = _configured_fleets()
        timings = _interleaved_timings(cells)
        for lcs in cells:
            entries[lcs] = _measure_fleet(lcs, timings)
        return [
            {
                "lcs": entry["local_controllers"],
                "events_per_second_old": entry["events_per_second"]["old"],
                "events_per_second_new": entry["events_per_second"]["new"],
                "improvement": entry["improvement"],
            }
            for entry in entries.values()
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    for entry in entries.values():
        table.add_row(
            lcs=entry["local_controllers"],
            wall_old_s=entry["old"]["wall_clock_seconds"],
            wall_new_s=entry["new"]["wall_clock_seconds"],
            events_old=entry["old"]["processed_events"],
            events_new=entry["new"]["processed_events"],
            eps_old=entry["events_per_second"]["old"],
            eps_new=entry["events_per_second"]["new"],
            improvement=entry["improvement"],
            identical=entry["results_identical"],
        )
    table.print()
    _merge_results(entries)

    # The optimization must be a pure refactor: byte-identical results.
    for entry in entries.values():
        assert entry["results_identical"], (
            f"old/new paths diverged at {entry['local_controllers']} LCs"
        )
        assert entry["profiled_result_identical"], (
            f"profiling changed the result at {entry['local_controllers']} LCs"
        )
        assert entry["improvement"] > 0
    assert rows

    # CI regression gate: the 100-LC point must stay within 2x of the
    # committed baseline (only enforced in strict mode so cold laptops and
    # busy CI runners do not flake the tier-1 suite).
    if os.environ.get("REPRO_BENCH_STRICT") and 100 in entries:
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["events_per_second"] / 2.0
        measured = entries[100]["events_per_second"]["new"]
        assert measured >= floor, (
            f"events/sec regression at 100 LCs: measured {measured:.0f}, "
            f"baseline {baseline['events_per_second']:.0f} (floor {floor:.0f}); "
            "if the slowdown is intentional, refresh benchmarks/BENCH_SCALE_BASELINE.json"
        )


# --------------------------------------------------------------- megafleet
#: Fleet cells for the sharded lockstep engine.  The 100-LC cell exists to
#: anchor the flatness gate (same engine, toy fleet); 10k is the CI cell of
#: ROADMAP item 2; 100k is the roadmap target, included when the env var
#: asks for it.  Durations are chosen so every cell retires a comparable
#: number of simulated epochs.
MEGAFLEET_CELLS = {
    100: dataclasses.replace(
        get_megafleet("megafleet-1k"),
        name="megafleet-100",
        description="Flatness-gate anchor: the 10k cell must match this eps.",
        local_controllers=100,
        group_managers=4,
        duration=300.0,
        arrivals_per_epoch=20.0,
    ),
    10_000: get_megafleet("megafleet-10k"),
    100_000: get_megafleet("megafleet-100k"),
}

#: The 10k cell must retire at least this fraction of the 100-LC cell's
#: events/sec -- the "near-flat" scaling claim, gated in CI.
MEGAFLEET_FLATNESS_FLOOR = 0.8

MEGAFLEET_SEED = 2012
MEGAFLEET_ROUNDS = 2


def _configured_megafleets() -> list:
    raw = os.environ.get("REPRO_BENCH_MEGAFLEET_FLEETS", "100,10000")
    fleets = sorted({int(token) for token in raw.split(",") if token.strip()})
    unknown = [fleet for fleet in fleets if fleet not in MEGAFLEET_CELLS]
    if unknown:
        raise ValueError(
            f"unknown megafleet size(s) {unknown}; choose from {sorted(MEGAFLEET_CELLS)}"
        )
    return fleets


def _measure_megafleet(lcs: int) -> dict:
    spec = MEGAFLEET_CELLS[lcs]
    shards = min(8, spec.group_managers)
    result = None
    wall = None
    for _ in range(MEGAFLEET_ROUNDS):
        gc.collect()
        gc.disable()
        try:
            result = ShardedFleetSimulator(spec, seed=MEGAFLEET_SEED).run(shards=shards)
        finally:
            gc.enable()
        wall = result.wall_seconds if wall is None else min(wall, result.wall_seconds)
    # Determinism spot-check alongside the measurement: a different shard
    # count must reproduce the run byte for byte.
    reshard = ShardedFleetSimulator(spec, seed=MEGAFLEET_SEED).run(shards=1)
    return {
        "local_controllers": spec.local_controllers,
        "group_managers": spec.group_managers,
        "simulated_seconds": spec.duration,
        "epochs": spec.n_epochs,
        "seed": MEGAFLEET_SEED,
        "shards": shards,
        "wall_clock_seconds": round(wall, 4),
        "processed_events": result.events,
        "events_per_second": round(result.events / wall, 1) if wall > 0 else 0.0,
        "totals": dict(result.totals),
        "shard_invariant": reshard.canonical_json() == result.canonical_json(),
    }


def test_megafleet_flat_scale(benchmark):
    entries = {}
    table = ComparisonTable("Megafleet flat scale: sharded lockstep engine")

    def run_all():
        for lcs in _configured_megafleets():
            entries[lcs] = _measure_megafleet(lcs)
        return [
            {"lcs": lcs, "events_per_second": entry["events_per_second"]}
            for lcs, entry in entries.items()
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    for entry in entries.values():
        table.add_row(
            lcs=entry["local_controllers"],
            gms=entry["group_managers"],
            wall_s=entry["wall_clock_seconds"],
            events=entry["processed_events"],
            eps=entry["events_per_second"],
            placements=entry["totals"]["placements"],
            shard_invariant=entry["shard_invariant"],
        )
    table.print()
    _merge_results(entries, section="megafleet")
    assert rows

    for entry in entries.values():
        assert entry["shard_invariant"], (
            f"sharded run diverged at {entry['local_controllers']} LCs"
        )

    # The flat-scaling gate of ROADMAP item 2: events/sec at 10k LCs must not
    # fall below MEGAFLEET_FLATNESS_FLOOR of the 100-LC anchor cell.
    if 100 in entries and 10_000 in entries:
        anchor = entries[100]["events_per_second"]
        measured = entries[10_000]["events_per_second"]
        assert measured >= MEGAFLEET_FLATNESS_FLOOR * anchor, (
            f"events/sec decayed with fleet size: 10k cell {measured:.0f} < "
            f"{MEGAFLEET_FLATNESS_FLOOR:.0%} of the 100-LC cell {anchor:.0f}"
        )
