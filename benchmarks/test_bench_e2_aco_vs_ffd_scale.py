"""E2 -- ACO vs FFD at scale: hosts and energy conserved.

Paper claim (Section III.B): "compared to FFD, the ACO-based approach utilizes
lower amounts of hosts and thus yields to superior average host utilization
and energy gains.  Thereby, on average 4.7 % of hosts and 4.1 % of energy were
conserved (including energy spent into the computation)."

The benchmark sweeps instance sizes, packs each with FFD and ACO, charges each
algorithm the energy of the hosts its placement keeps on for a fixed horizon
*plus* the energy of its own computation, and reports the relative savings.
"""

from __future__ import annotations

import numpy as np

from repro.core import ACOConsolidation, FirstFitDecreasing
from repro.core.aco import ACOParameters
from repro.energy.accounting import static_placement_energy
from repro.metrics.report import ComparisonTable
from repro.simulation.randomness import spawn_generator
from repro.workloads import UniformDemandDistribution, consolidation_instance

from benchmarks.conftest import run_once

INSTANCE_SIZES = (60, 120, 240)
SEEDS = range(2)
#: Power charged for algorithm computation (a busy management core).
COMPUTE_POWER_WATTS = 120.0
#: Horizon the placement stays in force before the next reconfiguration (1 h).
PLACEMENT_HORIZON_S = 3600.0


def _energy(result) -> float:
    infrastructure = static_placement_energy(
        result.hosts_used, result.placement.average_utilization(), PLACEMENT_HORIZON_S
    )
    computation = result.runtime_seconds * COMPUTE_POWER_WATTS
    return infrastructure + computation


def _run_experiment() -> dict:
    table = ComparisonTable("E2: ACO vs FFD at scale (hosts, utilization, energy)")
    host_savings, energy_savings, utilization_gains = [], [], []
    for n_vms in INSTANCE_SIZES:
        for seed in SEEDS:
            rng = np.random.default_rng(seed)
            demands, capacities = consolidation_instance(
                n_vms,
                rng,
                demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
                host_capacity=(1.0, 1.0),
            )
            ffd = FirstFitDecreasing().solve(demands, capacities)
            aco = ACOConsolidation(
                ACOParameters(n_ants=8, n_cycles=25), rng=spawn_generator(seed, 1)
            ).solve(demands, capacities)
            ffd_energy, aco_energy = _energy(ffd), _energy(aco)
            host_savings.append(1.0 - aco.hosts_used / ffd.hosts_used)
            energy_savings.append(1.0 - aco_energy / ffd_energy)
            utilization_gains.append(
                aco.placement.average_utilization() - ffd.placement.average_utilization()
            )
            table.add_row(
                vms=n_vms,
                seed=seed,
                ffd_hosts=ffd.hosts_used,
                aco_hosts=aco.hosts_used,
                ffd_utilization=round(ffd.placement.average_utilization(), 3),
                aco_utilization=round(aco.placement.average_utilization(), 3),
                hosts_saved_pct=round(100 * host_savings[-1], 2),
                energy_saved_pct=round(100 * energy_savings[-1], 2),
                aco_runtime_s=round(aco.runtime_seconds, 2),
            )
    table.print()
    summary = {
        "mean_hosts_saved_pct": 100 * float(np.mean(host_savings)),
        "mean_energy_saved_pct": 100 * float(np.mean(energy_savings)),
        "mean_utilization_gain": float(np.mean(utilization_gains)),
    }
    print(
        f"E2 summary: ACO saves {summary['mean_hosts_saved_pct']:.2f} % hosts and "
        f"{summary['mean_energy_saved_pct']:.2f} % energy vs FFD "
        f"(paper: 4.7 % hosts, 4.1 % energy)"
    )
    return summary


def test_e2_aco_saves_hosts_and_energy_at_scale(benchmark):
    """ACO keeps a single-digit-percent host/energy advantage over FFD at scale."""
    summary = run_once(benchmark, _run_experiment)
    assert summary["mean_hosts_saved_pct"] > 0.0
    assert summary["mean_energy_saved_pct"] > 0.0
    assert summary["mean_utilization_gain"] > 0.0
