"""Traffic-plane overhead benchmark: the same fleet with and without users.

A 100-LC churn cell (the scale benchmark's sizing) runs twice from one seed:

* **off** -- no ``traffic`` section: the plain churn workload;
* **on** -- the same scenario plus four request-serving services (eight
  replica VMs, analytic M/M/c evaluation every 10 simulated seconds and the
  demand feedback into VM CPU usage).

The traffic plane is array-backed and event-free by design -- each tick is
one coalesced callback doing a handful of numpy operations over all services
at once -- so turning it on must not move fleet-scale throughput.  Throughput
is *events per second* with the **off-path event count as the fixed yardstick
for both runs** (the traffic run adds replica VMs and tick events; crediting
it with its own larger count would hide slowdown as extra events), so the
ratio is exactly the wall-clock ratio.

Results land in ``benchmarks/results/BENCH_TRAFFIC.json``.  With
``REPRO_BENCH_STRICT=1`` (CI's ``traffic`` job) the run fails if enabling
traffic costs more than 10% events/sec.
"""

from __future__ import annotations

import gc
import os

from repro.metrics.report import ComparisonTable
from repro.scenarios import ScenarioRunner, ScenarioSpec, WorkloadPhase

from benchmarks.conftest import write_results_json

#: The CI-gated cell: 100 Local Controllers, laptop-sized duration.
CELL = {"local_controllers": 100, "group_managers": 4, "vms": 120, "duration": 600.0}

SEED = 2012

#: Maximum tolerated events/sec cost of enabling the traffic plane.
MAX_OVERHEAD = 0.10

#: Timed repetitions per variant; the fastest wall clock is kept.  Variants
#: are interleaved (off, on, off, on, ...) so machine noise hits both alike.
ROUNDS = 3


def _cell_spec(traffic: bool) -> ScenarioSpec:
    services = [
        {
            "name": f"svc-{index}",
            "profile": {
                "kind": "diurnal",
                "base": 0.2,
                "peak": 1.0,
                "period": 600.0,
                "peak_time": 300.0,
                "peak_rps": 150.0,
            },
            "initial_replicas": 2,
            "service_rate": 100.0,
        }
        for index in range(4)
    ]
    return ScenarioSpec(
        name="bench-traffic-100",
        description="traffic overhead benchmark cell",
        duration=CELL["duration"],
        local_controllers=CELL["local_controllers"],
        group_managers=CELL["group_managers"],
        nodes_per_rack=40,
        record_interval=60.0,
        config={
            "network": {"base_latency": 0.001, "jitter": 0.0, "loss_probability": 0.0},
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=CELL["vms"],
                arrival={
                    "kind": "poisson",
                    "rate_per_hour": 3600.0 * CELL["vms"] / CELL["duration"] / 2.0,
                },
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.7},
                lifetime={
                    "kind": "exponential",
                    "mean": CELL["duration"] / 3.0,
                    "minimum": 30.0,
                },
            )
        ],
        traffic={"services": services, "interval": 10.0} if traffic else None,
    )


def _run_once(traffic: bool) -> tuple:
    runner = ScenarioRunner(_cell_spec(traffic), seed=SEED)
    gc.collect()
    gc.disable()
    try:
        result = runner.run()
    finally:
        gc.enable()
    events = runner.system.sim.processed_events
    return result, result.perf["wall_clock_seconds"], events


def _run_variants() -> dict:
    entries = {
        label: {"_wall": None, "_result": None, "processed_events": 0}
        for label in ("off", "on")
    }
    for _ in range(ROUNDS):
        for label, traffic in (("off", False), ("on", True)):
            entry = entries[label]
            result, wall, events = _run_once(traffic)
            entry["_result"] = result
            entry["processed_events"] = int(events)
            entry["_wall"] = wall if entry["_wall"] is None else min(entry["_wall"], wall)
    for entry in entries.values():
        entry["wall_clock_seconds"] = round(entry["_wall"], 4)
    return entries


def test_traffic_plane_overhead(benchmark):
    entries = {}

    def run_both():
        entries.update(_run_variants())
        return [
            {
                "wall_off_s": entries["off"]["wall_clock_seconds"],
                "wall_on_s": entries["on"]["wall_clock_seconds"],
            }
        ]

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    assert rows

    off, on = entries["off"], entries["on"]
    wall_off, wall_on = off.pop("_wall"), on.pop("_wall")
    result_on = on.pop("_result")
    off.pop("_result")
    reference_events = off["processed_events"]
    eps_off = reference_events / wall_off if wall_off > 0 else 0.0
    eps_on = reference_events / wall_on if wall_on > 0 else 0.0
    overhead = 1.0 - (eps_on / eps_off) if eps_off > 0 else 0.0
    traffic = result_on.traffic

    table = ComparisonTable("Traffic plane overhead at 100 LCs")
    for label, entry, eps in (("off", off, eps_off), ("on", on, eps_on)):
        table.add_row(
            traffic=label,
            wall_s=entry["wall_clock_seconds"],
            events=entry["processed_events"],
            events_per_second=round(eps, 1),
        )
    table.print()
    print(
        f"overhead: {overhead:+.1%} (gate {MAX_OVERHEAD:.0%} strict); traffic served "
        f"{traffic['requests']['served']:,.0f} requests at p99 "
        f"{traffic['latency_seconds']['p99'] * 1000:.1f} ms"
    )

    write_results_json(
        "BENCH_TRAFFIC.json",
        {
            "benchmark": "traffic",
            "cell": dict(CELL, seed=SEED),
            "off": off,
            "on": on,
            "events_per_second": {"off": round(eps_off, 1), "on": round(eps_on, 1)},
            "events_per_second_definition": (
                "off-path simulator events retired per wall-clock second for "
                "both variants (fixed yardstick), so the ratio equals the "
                "wall-clock ratio"
            ),
            "overhead_fraction": round(overhead, 4),
            "max_overhead_fraction": MAX_OVERHEAD,
            "traffic_summary": {
                "requests": traffic["requests"],
                "latency_seconds": traffic["latency_seconds"],
                "ticks": traffic["ticks"],
            },
        },
    )

    # The traffic run must actually have served traffic through the plane.
    assert traffic["ticks"] == int(CELL["duration"] // 10)
    assert traffic["requests"]["served"] > 0

    # CI regression gate (strict mode only, so cold laptops don't flake).
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert eps_on >= (1.0 - MAX_OVERHEAD) * eps_off, (
            f"traffic plane costs {overhead:.1%} events/sec "
            f"(eps off {eps_off:.0f}, on {eps_on:.0f}); gate is {MAX_OVERHEAD:.0%}"
        )
