"""E6 -- Overload/underload relocation behaviour.

Paper claims (Sections II.C and III): "in case of overload situation VMs must
be relocated to a more lightly loaded node in order to mitigate performance
degradation.  Contrary, in case of underload ... it is beneficial to move away
VMs to moderately loaded LCs in order to create enough idle-time to transition
the underutilized LCs into a lower power state."

The benchmark runs a bursty workload with relocation disabled and enabled and
reports (1) the fraction of host-time spent above the overload threshold (the
performance-degradation proxy) and (2) the number of hosts the underload path
manages to free.  Expected shape: relocation removes most of the overload time
at the cost of a modest number of migrations.
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.scheduling.thresholds import UtilizationThresholds
from repro.workloads import BatchArrival, BurstyTrace, UniformDemandDistribution, WorkloadGenerator

from benchmarks.conftest import run_once

LCS = 16
VMS = 40
HOURS = 2.0
THRESHOLDS = UtilizationThresholds(underload=0.2, overload=0.85)


def _run_configuration(relocation_enabled: bool) -> dict:
    config = HierarchyConfig(
        seed=55,
        monitoring_interval=30.0,
        relocation_enabled=relocation_enabled,
        thresholds=THRESHOLDS,
    )
    system = SnoozeSystem(
        SystemSpec(local_controllers=LCS, group_managers=2, entry_points=1), config=config, seed=55
    )
    system.start()
    generator = WorkloadGenerator(
        UniformDemandDistribution(0.2, 0.35),
        BatchArrival(0.0),
        trace_factory=lambda stream: BurstyTrace(
            stream,
            baseline=0.35,
            burst_level=1.0,
            burst_rate_per_hour=2.0,
            burst_duration=900.0,
            horizon=HOURS * 3600.0,
        ),
    )
    system.submit_requests(generator.generate(VMS, np.random.default_rng(55)))

    # Probe overload exposure: every minute, count hosts above the overload threshold.
    recorder = system.enable_recording(interval=60.0)
    recorder.add_probe(
        "overloaded_hosts",
        lambda: float(
            sum(
                1
                for node in system.topology
                if node.vm_count > 0 and THRESHOLDS.is_overloaded(node.utilization())
            )
        ),
    )
    system.run(HOURS * 3600.0)
    overloaded = recorder.series("overloaded_hosts")
    active = recorder.series("active_hosts")
    overload_host_minutes = float(overloaded.values.sum())
    active_host_minutes = float(active.values.sum())
    return {
        "relocation": relocation_enabled,
        "placed": system.client.placed_count(),
        "overload_fraction": overload_host_minutes / max(active_host_minutes, 1.0),
        "migrations": system.migration_executor.stats.completed,
        "relocations": sum(
            gm.relocations_performed for gm in system.group_managers.values() if gm.is_running
        ),
        "mean_active_hosts": active.time_weighted_mean(),
    }


def _run_experiment() -> dict:
    table = ComparisonTable("E6: overload exposure with and without relocation")
    outcomes = {}
    for enabled in (False, True):
        outcome = _run_configuration(enabled)
        outcomes[enabled] = outcome
        table.add_row(
            relocation="enabled" if enabled else "disabled",
            placed_vms=outcome["placed"],
            overload_host_time_pct=round(100 * outcome["overload_fraction"], 2),
            migrations=outcome["migrations"],
            relocation_decisions=outcome["relocations"],
            mean_active_hosts=round(outcome["mean_active_hosts"], 1),
        )
    table.print()
    reduction = 1.0 - outcomes[True]["overload_fraction"] / max(outcomes[False]["overload_fraction"], 1e-9)
    print(f"E6 summary: relocation removes {100 * reduction:.1f} % of overload host-time")
    return outcomes


def test_e6_relocation_reduces_overload_exposure(benchmark):
    """Enabling relocation removes a large share of overload time via a modest number of migrations."""
    outcomes = run_once(benchmark, _run_experiment)
    without, with_relocation = outcomes[False], outcomes[True]
    assert without["placed"] == with_relocation["placed"] == VMS
    # The bursty workload does create overload when nothing reacts to it.
    assert without["overload_fraction"] > 0.0
    # Relocation reduces overload exposure and actually migrates VMs to do so.
    assert with_relocation["overload_fraction"] < without["overload_fraction"]
    assert with_relocation["migrations"] > 0
    assert without["migrations"] == 0
