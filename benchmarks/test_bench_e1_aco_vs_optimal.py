"""E1 -- ACO vs FFD vs the exact optimum on small instances.

Paper claim (Section III.B): the ACO-based approach "achieves nearly optimal
solutions (i.e. 1.1 % deviation)" while FFD is further from the optimum.

This benchmark reproduces the GRID'11-style table: for a set of small random
instances (where the exact optimum is provable by branch and bound), report
the hosts used by FFD, ACO and the optimum plus the mean deviation.
"""

from __future__ import annotations

import numpy as np

from repro.core import ACOConsolidation, BranchAndBoundOptimal, FirstFitDecreasing
from repro.core.aco import ACOParameters
from repro.metrics.report import ComparisonTable
from repro.simulation.randomness import spawn_generator
from repro.workloads import UniformDemandDistribution, consolidation_instance

from benchmarks.conftest import run_once

INSTANCE_SIZES = (8, 10, 12, 14)
SEEDS = range(4)


def _run_experiment() -> dict:
    table = ComparisonTable("E1: hosts used -- FFD vs ACO vs optimal (small instances)")
    ffd_deviations, aco_deviations = [], []
    optimal_proofs = 0
    runs = 0
    for n_vms in INSTANCE_SIZES:
        for seed in SEEDS:
            rng = np.random.default_rng(seed)
            demands, capacities = consolidation_instance(
                n_vms,
                rng,
                demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
                host_capacity=(1.0, 1.0),
            )
            optimal = BranchAndBoundOptimal(time_limit_seconds=10.0).solve(demands, capacities)
            ffd = FirstFitDecreasing().solve(demands, capacities)
            aco = ACOConsolidation(
                ACOParameters(n_ants=10, n_cycles=40), rng=spawn_generator(seed, 1)
            ).solve(demands, capacities)
            runs += 1
            optimal_proofs += int(optimal.proved_optimal)
            ffd_deviations.append(ffd.hosts_used / optimal.hosts_used - 1.0)
            aco_deviations.append(aco.hosts_used / optimal.hosts_used - 1.0)
            table.add_row(
                vms=n_vms,
                seed=seed,
                optimal_hosts=optimal.hosts_used,
                ffd_hosts=ffd.hosts_used,
                aco_hosts=aco.hosts_used,
                aco_deviation_pct=round(100 * aco_deviations[-1], 2),
                optimum_proved=optimal.proved_optimal,
            )
    table.print()
    summary = {
        "mean_aco_deviation_pct": 100 * float(np.mean(aco_deviations)),
        "mean_ffd_deviation_pct": 100 * float(np.mean(ffd_deviations)),
        "optimum_proved_fraction": optimal_proofs / runs,
    }
    print(
        f"E1 summary: ACO deviation {summary['mean_aco_deviation_pct']:.2f} % "
        f"(paper ~1.1 %), FFD deviation {summary['mean_ffd_deviation_pct']:.2f} %, "
        f"optimum proved on {100 * summary['optimum_proved_fraction']:.0f} % of instances"
    )
    return summary


def test_e1_aco_close_to_optimal(benchmark):
    """ACO deviates from the optimum by only a few percent; FFD deviates more."""
    summary = run_once(benchmark, _run_experiment)
    assert summary["mean_aco_deviation_pct"] <= 6.0
    assert summary["mean_aco_deviation_pct"] <= summary["mean_ffd_deviation_pct"] + 1e-9
    assert summary["optimum_proved_fraction"] >= 0.75
