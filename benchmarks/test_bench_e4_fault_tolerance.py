"""E4 -- Fault tolerance: recovery from GL / GM / LC failures under load.

Paper claim (Section II.F): "the fault tolerance features of the framework do
not impact application performance"; Section II.E describes the recovery
behaviour for each component type.

The benchmark runs a loaded deployment, injects each failure type and measures
(1) the recovery time (new leader elected / orphaned LCs rejoined) and (2) the
"application performance" proxy: the aggregate CPU work delivered to the
still-running VMs per unit time, which should be unaffected by GL/GM failures
and reduced only by the VMs lost to an LC crash.
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator

from benchmarks.conftest import run_once

LCS = 48
GMS = 4
VMS = 96


def _delivered_cpu_per_second(system: SnoozeSystem) -> float:
    """Application-performance proxy: total CPU demand currently being served."""
    return float(sum(node.used()["cpu"] for node in system.topology))


def _build_loaded_system() -> SnoozeSystem:
    system = SnoozeSystem(
        SystemSpec(local_controllers=LCS, group_managers=GMS, entry_points=2),
        config=HierarchyConfig(seed=41),
        seed=41,
    )
    system.start()
    generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.25), BatchArrival(0.0))
    system.submit_requests(generator.generate(VMS, np.random.default_rng(41)))
    system.run(60.0)
    return system


def _run_experiment() -> dict:
    table = ComparisonTable("E4: recovery time and application impact per failure type")
    results = {}

    # --- Group Leader failure --------------------------------------------
    system = _build_loaded_system()
    throughput_before = _delivered_cpu_per_second(system)
    t_fail = system.sim.now
    old_leader = system.kill_group_leader()
    system.run_until(
        lambda: system.current_leader() not in (None, old_leader), timeout=300.0, step=1.0
    )
    gl_recovery = system.sim.now - t_fail
    system.run_until(lambda: system.assigned_lc_count() == LCS, timeout=300.0, step=1.0)
    gl_full_recovery = system.sim.now - t_fail
    throughput_after = _delivered_cpu_per_second(system)
    results["gl"] = {
        "recovery_s": gl_recovery,
        "full_recovery_s": gl_full_recovery,
        "throughput_ratio": throughput_after / throughput_before,
    }
    table.add_row(
        failure="group leader",
        recovery_s=round(gl_recovery, 1),
        lcs_rejoined_s=round(gl_full_recovery, 1),
        app_throughput_ratio=round(results["gl"]["throughput_ratio"], 3),
    )

    # --- Group Manager failure -------------------------------------------
    system = _build_loaded_system()
    throughput_before = _delivered_cpu_per_second(system)
    victim = next(
        name
        for name, gm in system.group_managers.items()
        if gm.is_running and not gm.is_leader and len(gm.local_controllers) > 0
    )
    t_fail = system.sim.now
    system.kill_group_manager(victim)
    system.run_until(lambda: system.assigned_lc_count() == LCS, timeout=300.0, step=1.0)
    gm_recovery = system.sim.now - t_fail
    throughput_after = _delivered_cpu_per_second(system)
    results["gm"] = {
        "recovery_s": gm_recovery,
        "throughput_ratio": throughput_after / throughput_before,
    }
    table.add_row(
        failure="group manager",
        recovery_s=round(gm_recovery, 1),
        lcs_rejoined_s=round(gm_recovery, 1),
        app_throughput_ratio=round(results["gm"]["throughput_ratio"], 3),
    )

    # --- Local Controller failure ----------------------------------------
    system = _build_loaded_system()
    throughput_before = _delivered_cpu_per_second(system)
    victim_lc = next(
        name for name, lc in system.local_controllers.items() if lc.is_running and lc.node.vm_count > 0
    )
    lost_vms = system.local_controllers[victim_lc].node.vm_count
    t_fail = system.sim.now
    system.kill_local_controller(victim_lc)
    system.run(4 * system.config.heartbeat_timeout)
    throughput_after = _delivered_cpu_per_second(system)
    results["lc"] = {
        "lost_vms": lost_vms,
        "throughput_ratio": throughput_after / throughput_before,
        "expected_ratio": 1.0 - lost_vms / VMS,
    }
    table.add_row(
        failure="local controller",
        recovery_s=round(4 * system.config.heartbeat_timeout, 1),
        lcs_rejoined_s="n/a",
        app_throughput_ratio=round(results["lc"]["throughput_ratio"], 3),
    )

    table.print()
    print(
        f"E4 summary: GL failover in {results['gl']['recovery_s']:.1f}s, GM recovery in "
        f"{results['gm']['recovery_s']:.1f}s; application throughput ratio after GL/GM failure "
        f"{results['gl']['throughput_ratio']:.3f}/{results['gm']['throughput_ratio']:.3f} (paper: no impact)"
    )
    return results


def test_e4_failures_recover_without_hurting_applications(benchmark):
    """Failures heal within a few heartbeat periods and leave running VMs untouched."""
    results = run_once(benchmark, _run_experiment)
    config = HierarchyConfig()
    # Recovery happens within a handful of session/heartbeat timeouts.
    assert results["gl"]["recovery_s"] <= 5 * config.session_timeout
    assert results["gm"]["recovery_s"] <= 10 * config.heartbeat_timeout
    # GL / GM failures do not affect the applications at all.
    assert results["gl"]["throughput_ratio"] >= 0.999
    assert results["gm"]["throughput_ratio"] >= 0.999
    # An LC failure costs exactly the VMs it hosted, nothing more.
    assert results["lc"]["throughput_ratio"] >= results["lc"]["expected_ratio"] - 0.1
