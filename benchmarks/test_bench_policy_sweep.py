"""Policy sweep -- one catalog scenario under several placement policies.

The unified policy API makes policy-comparison experiments declarative: the
same :class:`~repro.scenarios.spec.ScenarioSpec` is re-run with only its
``policies`` block changed.  This benchmark sweeps the ``steady-churn``
catalog scenario across three placement policies (first-fit, best-fit,
worst-fit) and reports, per policy: mean/peak active hosts, infrastructure
energy and the end-to-end run wall time.  The wall time covers the whole
simulation (engine, monitoring, metrics), not just the policy decision paths;
it tracks the overall perf trajectory of policy-driven runs across PRs.

Besides the human-readable table, the sweep writes a machine-readable
``BENCH_POLICY_SWEEP.json`` summary next to the per-experiment ``BENCH_E*``
files (same ``REPRO_BENCH_RESULTS`` override, same never-fail contract).
"""

from __future__ import annotations

import time

from repro.metrics.report import ComparisonTable
from repro.scenarios import ScenarioSpec, get_scenario, run_scenario

from benchmarks.conftest import run_once, write_results_json

SCENARIO = "steady-churn"
PLACEMENT_POLICIES = ("first-fit", "best-fit", "worst-fit")
DURATION = 1800.0
SEED = 2012


def _swept_spec(placement: str) -> ScenarioSpec:
    spec = get_scenario(SCENARIO)
    merged = dict(spec.policies)
    merged["placement"] = {"name": placement}
    return ScenarioSpec.from_dict(
        {**spec.to_dict(), "duration": DURATION, "policies": merged}
    )


def _write_sweep_summary(rows: list) -> None:
    write_results_json(
        "BENCH_POLICY_SWEEP.json",
        {
            "scenario": SCENARIO,
            "seed": SEED,
            "duration_seconds": DURATION,
            "entries": rows,
        },
    )


def test_policy_sweep(benchmark):
    def sweep() -> list:
        rows = []
        for placement in PLACEMENT_POLICIES:
            spec = _swept_spec(placement)
            start = time.perf_counter()
            result = run_scenario(spec, seed=SEED)
            wall = time.perf_counter() - start
            rows.append(
                {
                    "placement_policy": placement,
                    "mean_active_hosts": round(result.packing["mean_active_hosts"], 3),
                    "peak_active_hosts": result.packing["peak_active_hosts"],
                    "energy_kwh": round(result.energy["infrastructure_kwh"], 4),
                    "placed": result.submissions["placed"],
                    "run_wall_seconds": round(wall, 4),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    _write_sweep_summary(rows)

    table = ComparisonTable(f"Placement policy sweep ({SCENARIO}, seed {SEED})")
    for row in rows:
        table.add_row(**row)
    table.print()

    # Every policy must place the same workload; packing quality may differ.
    assert len({row["placed"] for row in rows}) == 1
    assert all(row["mean_active_hosts"] > 0 for row in rows)
