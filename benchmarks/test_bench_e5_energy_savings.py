"""E5 -- Energy savings from idle-server power management.

Paper claim (Sections I and III): when energy savings are enabled, "idle
servers are automatically transitioned into a low-power mode (e.g. suspend)"
and "woken up when necessary", and consolidation "favors idle times".

The benchmark runs the same diurnal workload on the same cluster under three
configurations -- no power management, idle-host suspend, suspend plus
periodic ACO consolidation -- and reports the energy consumed by each over the
same simulated horizon.  Expected shape: suspend alone already cuts energy
substantially on a lightly loaded cluster, and consolidation adds to it (or at
worst matches it) by emptying additional hosts.
"""

from __future__ import annotations

import numpy as np

from repro.energy.power_manager import PowerManagerConfig
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import BatchArrival, DiurnalTrace, UniformDemandDistribution, WorkloadGenerator

from benchmarks.conftest import run_once

LCS = 32
VMS = 48
HOURS = 6.0


def _run_configuration(energy: bool, consolidation: bool) -> dict:
    config = HierarchyConfig(
        seed=8,
        monitoring_interval=60.0,
        summary_interval=60.0,
        power_manager=PowerManagerConfig(
            enabled=energy,
            idle_time_threshold=300.0,
            check_interval=120.0,
            min_powered_on_hosts=2,
        ),
        reconfiguration_interval=3600.0 if consolidation else None,
        reconfiguration_algorithm="aco",
        energy_sample_interval=120.0,
    )
    system = SnoozeSystem(
        SystemSpec(local_controllers=LCS, group_managers=2, entry_points=1), config=config, seed=8
    )
    system.start()
    generator = WorkloadGenerator(
        UniformDemandDistribution(0.15, 0.4),
        BatchArrival(0.0),
        trace_factory=lambda stream: DiurnalTrace(base=0.15, peak=0.85, noise_std=0.05, rng=stream),
    )
    system.submit_requests(generator.generate(VMS, np.random.default_rng(8)))
    system.enable_recording(interval=300.0)
    system.run(HOURS * 3600.0)
    report = system.energy_report()
    return {
        "energy_kwh": report.total_energy_kwh,
        "transition_kwh": report.transition_energy_joules / 3.6e6,
        "placed": system.stats()["placed"],
        "mean_powered_on": system.recorder.series("powered_on_hosts").time_weighted_mean(),
        "migrations": system.migration_executor.stats.completed,
    }


def _run_experiment() -> dict:
    configurations = {
        "no power management": (False, False),
        "idle-host suspend": (True, False),
        "suspend + ACO consolidation": (True, True),
    }
    table = ComparisonTable(
        f"E5: cluster energy over {HOURS:.0f} h ({LCS} hosts, {VMS} VMs, diurnal load)"
    )
    outcomes = {}
    baseline = None
    for label, (energy, consolidation) in configurations.items():
        outcome = _run_configuration(energy, consolidation)
        outcomes[label] = outcome
        if baseline is None:
            baseline = outcome["energy_kwh"]
        outcome["saving_pct"] = 100.0 * (1.0 - outcome["energy_kwh"] / baseline)
        table.add_row(
            configuration=label,
            energy_kwh=round(outcome["energy_kwh"], 3),
            saving_pct=round(outcome["saving_pct"], 1),
            mean_powered_on_hosts=round(outcome["mean_powered_on"], 1),
            placed_vms=outcome["placed"],
            migrations=outcome["migrations"],
        )
    table.print()
    return outcomes


def test_e5_power_management_saves_energy(benchmark):
    """Idle-host suspend saves a large fraction of energy; all VMs still get placed."""
    outcomes = run_once(benchmark, _run_experiment)
    baseline = outcomes["no power management"]
    suspend = outcomes["idle-host suspend"]
    consolidated = outcomes["suspend + ACO consolidation"]
    # Every configuration serves the full workload.
    assert all(outcome["placed"] == VMS for outcome in outcomes.values())
    # Power management keeps fewer hosts on and saves energy.
    assert suspend["mean_powered_on"] < baseline["mean_powered_on"]
    assert suspend["saving_pct"] > 10.0
    # Consolidation does not cost energy relative to suspend alone (ties allowed).
    assert consolidated["energy_kwh"] <= suspend["energy_kwh"] * 1.05
