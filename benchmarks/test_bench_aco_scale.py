"""ACO scale benchmark: vectorized ant kernels vs the scalar reference.

For consolidation instances of 100 / 500 / 2000 VMs the same Max-Min ACO
search runs twice from identically seeded generators:

* **scalar** -- :class:`~repro.core.aco.ACOConsolidation`, the paper-faithful
  reference: one Python ``_choose_vm`` call per VM per ant per cycle;
* **vectorized** -- :class:`~repro.core.aco_vectorized.VectorizedACOConsolidation`,
  the batched lockstep kernels (ROADMAP item 5): all ants of a cycle advance
  together, so the interpreter overhead is paid per *step*, not per ant-step.

Throughput is reported as **decisions per second**: VM-placement decisions
made per wall-clock second (``n_vms * n_ants * cycles_run / runtime`` for each
path, from its own cycle count -- early stopping is part of the algorithm).
``speedup`` is the vectorized/scalar decisions-per-second ratio.  Packing
quality must not pay for the speed: each cell also records hosts used by both
paths, and the vectorized path must be **no worse**.

Results land in ``benchmarks/results/BENCH_ACO_SCALE.json`` (per-cell entries
merged across invocations).  The default run covers the 100-VM cell so tier-1
stays fast; set ``REPRO_BENCH_ACO_CELLS=100,500,2000`` for the full sweep.
With ``REPRO_BENCH_STRICT=1`` the 500-VM cell (when selected) is gated: the
vectorized path must deliver at least 3x the scalar decisions/sec and use no
more hosts (CI's ``aco-scale`` job runs exactly this).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.aco_vectorized import VectorizedACOConsolidation
from repro.metrics.report import ComparisonTable
from repro.workloads import UniformDemandDistribution, consolidation_instance

from benchmarks.conftest import results_path, write_results_json

#: Instance sizes and per-cell search effort (cycles shrink as instances grow
#: so every point stays laptop-sized; throughput is per-second anyway).
CELLS = {
    100: {"n_ants": 8, "n_cycles": 10},
    500: {"n_ants": 8, "n_cycles": 6},
    2000: {"n_ants": 6, "n_cycles": 3},
}

SEED = 2012

#: Strict-mode gate at the 500-VM cell: the vectorized kernels must deliver at
#: least this multiple of the scalar decisions/sec (hosts-used must be no
#: worse in every measured cell, strict or not).
STRICT_MIN_SPEEDUP = 3.0
STRICT_CELL = 500


def _configured_cells() -> list:
    raw = os.environ.get("REPRO_BENCH_ACO_CELLS", "100")
    cells = sorted({int(token) for token in raw.split(",") if token.strip()})
    unknown = [cell for cell in cells if cell not in CELLS]
    if unknown:
        raise ValueError(f"unknown cell size(s) {unknown}; choose from {sorted(CELLS)}")
    return cells


def _instance(n_vms: int):
    rng = np.random.default_rng(SEED)
    return consolidation_instance(
        n_vms,
        rng,
        demand_distribution=UniformDemandDistribution(0.05, 0.3, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


def _run_path(algorithm, demands, n_ants: int) -> dict:
    result = algorithm.solve(demands[0], demands[1])
    decisions = demands[0].shape[0] * n_ants * max(result.iterations, 1)
    wall = result.runtime_seconds
    return {
        "hosts_used": int(result.hosts_used),
        "cycles_run": int(result.iterations),
        "wall_clock_seconds": round(wall, 4),
        "decisions": int(decisions),
        "decisions_per_second": round(decisions / wall, 1) if wall > 0 else 0.0,
        "_dps": decisions / wall if wall > 0 else 0.0,
    }


def _measure_cell(n_vms: int) -> dict:
    effort = CELLS[n_vms]
    params = ACOParameters(n_ants=effort["n_ants"], n_cycles=effort["n_cycles"])
    instance = _instance(n_vms)
    scalar = _run_path(ACOConsolidation(params, rng=np.random.default_rng(SEED)), instance,
                       effort["n_ants"])
    vectorized = _run_path(
        VectorizedACOConsolidation(params, rng=np.random.default_rng(SEED)), instance,
        effort["n_ants"],
    )
    dps_scalar, dps_vectorized = scalar.pop("_dps"), vectorized.pop("_dps")
    return {
        "vms": n_vms,
        "hosts": int(instance[1].shape[0]),
        "n_ants": effort["n_ants"],
        "n_cycles": effort["n_cycles"],
        "seed": SEED,
        "scalar": scalar,
        "vectorized": vectorized,
        "decisions_per_second_definition": (
            "VM-placement decisions per wall-clock second, "
            "n_vms * n_ants * cycles_run / runtime, per path"
        ),
        "speedup": round(dps_vectorized / dps_scalar, 2) if dps_scalar > 0 else 0.0,
        "hosts_no_worse": vectorized["hosts_used"] <= scalar["hosts_used"],
    }


def _merge_results(entries: dict) -> None:
    path = results_path("BENCH_ACO_SCALE.json")
    summary = {"benchmark": "aco-scale", "cells": {}}
    if path is not None and path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing.get("cells"), dict):
                summary = existing
        except (json.JSONDecodeError, OSError):
            pass
    summary["cells"].update({str(n_vms): entry for n_vms, entry in entries.items()})
    write_results_json("BENCH_ACO_SCALE.json", summary)


def test_aco_scale_vectorized_vs_scalar(benchmark):
    entries = {}
    table = ComparisonTable("ACO at scale: scalar reference vs batched ant kernels")

    def run_all():
        for n_vms in _configured_cells():
            entries[n_vms] = _measure_cell(n_vms)
        return [
            {
                "vms": entry["vms"],
                "decisions_per_second_scalar": entry["scalar"]["decisions_per_second"],
                "decisions_per_second_vectorized": entry["vectorized"]["decisions_per_second"],
                "speedup": entry["speedup"],
            }
            for entry in entries.values()
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    for entry in entries.values():
        table.add_row(
            vms=entry["vms"],
            wall_scalar_s=entry["scalar"]["wall_clock_seconds"],
            wall_vector_s=entry["vectorized"]["wall_clock_seconds"],
            dps_scalar=entry["scalar"]["decisions_per_second"],
            dps_vector=entry["vectorized"]["decisions_per_second"],
            speedup=entry["speedup"],
            hosts_scalar=entry["scalar"]["hosts_used"],
            hosts_vector=entry["vectorized"]["hosts_used"],
        )
    table.print()
    _merge_results(entries)

    # The speedup must be pure mechanics: packing quality never pays for it.
    for entry in entries.values():
        assert entry["hosts_no_worse"], (
            f"vectorized ACO used more hosts at {entry['vms']} VMs "
            f"({entry['vectorized']['hosts_used']} vs {entry['scalar']['hosts_used']})"
        )
        assert entry["speedup"] > 0
    assert rows

    # CI gate: the 500-VM cell must hold the headline speedup (only enforced
    # in strict mode so cold laptops and busy runners do not flake tier-1).
    if os.environ.get("REPRO_BENCH_STRICT") and STRICT_CELL in entries:
        measured = entries[STRICT_CELL]["speedup"]
        assert measured >= STRICT_MIN_SPEEDUP, (
            f"vectorized ACO speedup at {STRICT_CELL} VMs is {measured:.2f}x, "
            f"below the {STRICT_MIN_SPEEDUP:.1f}x gate"
        )
