"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's reported results (see the
experiment index in DESIGN.md) and prints a plain-text table with the same
rows/series the paper reports.  Absolute numbers differ from the paper's
testbed measurements; the *shape* (who wins, by roughly what factor) is what
EXPERIMENTS.md compares.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def bench_rng() -> np.random.Generator:
    """Deterministic generator shared by benchmark workloads."""
    return np.random.default_rng(2012)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are full simulations or algorithm sweeps: one round is
    both representative and keeps the harness fast enough to run on a laptop.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
