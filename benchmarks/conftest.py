"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's reported results (see the
experiment index in DESIGN.md) and prints a plain-text table with the same
rows/series the paper reports.  Absolute numbers differ from the paper's
testbed measurements; the *shape* (who wins, by roughly what factor) is what
EXPERIMENTS.md compares.

Besides the human-readable tables, :func:`run_once` writes one machine-readable
``BENCH_<EXPERIMENT>.json`` summary per experiment under ``benchmarks/results/``
(timing plus a headline metric extracted from the benchmark's return value),
seeding the performance trajectory across PRs.  Set ``REPRO_BENCH_RESULTS`` to
redirect the output directory, or to an empty string to disable writing.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Optional

import numpy as np
import pytest

#: Default directory for BENCH_<experiment>.json summaries.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture
def bench_rng() -> np.random.Generator:
    """Deterministic generator shared by benchmark workloads."""
    return np.random.default_rng(2012)


def _experiment_id(benchmark) -> Optional[str]:
    """Extract the experiment tag (``E1`` ... ``E8``) from the benchmark name."""
    name = getattr(benchmark, "fullname", None) or getattr(benchmark, "name", "") or ""
    match = re.search(r"\be(\d+)\b|_e(\d+)_", name.lower())
    if match is None:
        return None
    return f"E{match.group(1) or match.group(2)}"


def _headline_metric(result) -> Optional[dict]:
    """Pull a small, JSON-safe headline out of a benchmark's return value.

    Benchmarks return a dict, a list of row-dicts, or a ComparisonTable-like
    object; the headline is the first row's scalar entries (enough to spot a
    regression without parsing the full table).
    """
    row = result
    if hasattr(row, "rows"):  # ComparisonTable
        row = row.rows
    if isinstance(row, (list, tuple)) and row:
        row = row[0]
    if not isinstance(row, dict):
        if isinstance(row, (int, float, str, bool)):
            return {"value": row}
        return None
    headline = {}
    for key, value in row.items():
        if isinstance(value, (bool, str)):
            headline[key] = value
        elif isinstance(value, (int, float, np.integer, np.floating)):
            headline[key] = float(value)
    return headline or None


def results_path(filename: str) -> Optional[Path]:
    """Resolve a results file path, honoring the ``REPRO_BENCH_RESULTS`` override.

    Returns ``None`` when result writing is disabled (override set to "").
    """
    results_dir = os.environ.get("REPRO_BENCH_RESULTS")
    if results_dir == "":
        return None
    return (Path(results_dir) if results_dir else RESULTS_DIR) / filename


def write_results_json(filename: str, payload: dict) -> None:
    """Write a machine-readable results file (shared by every benchmark).

    Results are a convenience artifact; filesystem errors never fail a
    benchmark over them.
    """
    path = results_path(filename)
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:
        pass


def merge_results_json(filename: str, payload: dict) -> None:
    """Merge ``payload``'s top-level keys into an existing results file.

    Unlike :func:`write_results_json` (full overwrite), keys written by
    *other* benchmarks survive: the sweep matrix and distributed-sweep
    benchmarks share ``BENCH_SWEEP_MATRIX.json``, and whichever runs second
    must not erase the other's cell.  Same never-fail contract.
    """
    path = results_path(filename)
    if path is None:
        return
    merged: dict = {}
    try:
        if path.exists():
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                merged = existing
    except (json.JSONDecodeError, OSError):
        pass
    merged.update(payload)
    write_results_json(filename, merged)


def _write_summary(experiment: str, benchmark, elapsed_seconds: float, result) -> None:
    filename = f"BENCH_{experiment}.json"
    path = results_path(filename)
    if path is None:
        return
    entry = {
        "benchmark": getattr(benchmark, "name", None) or experiment,
        "elapsed_seconds": round(elapsed_seconds, 4),
        "headline": _headline_metric(result),
    }
    summary = {"experiment": experiment, "entries": []}
    try:
        if path.exists():
            existing = json.loads(path.read_text())
            if isinstance(existing.get("entries"), list):
                summary = existing
    except (json.JSONDecodeError, OSError):
        pass
    summary["entries"] = [
        other for other in summary["entries"] if other.get("benchmark") != entry["benchmark"]
    ] + [entry]
    write_results_json(filename, summary)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are full simulations or algorithm sweeps: one round is
    both representative and keeps the harness fast enough to run on a laptop.
    Also writes the ``BENCH_<experiment>.json`` machine-readable summary.
    """
    start = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    elapsed = time.perf_counter() - start
    # Prefer pytest-benchmark's own measurement so the JSON matches the table
    # it prints; fall back to the wall clock if the stats API ever changes.
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    total = getattr(stats, "total", None)
    if total:
        elapsed = float(total)
    experiment = _experiment_id(benchmark)
    if experiment is not None:
        _write_summary(experiment, benchmark, elapsed, result)
    return result
