"""E7 (ablation) -- ACO parameter sensitivity.

DESIGN.md calls out the ACO design choices worth ablating: the number of ants,
the number of cycles, the evaporation rate rho and the alpha/beta weighting of
pheromone vs heuristic information.  The benchmark sweeps each knob around the
default configuration on a fixed instance and reports hosts used and runtime,
showing (a) diminishing returns beyond the default colony size and (b) that
the heuristic term matters (beta = 0 packs clearly worse).
"""

from __future__ import annotations

import numpy as np

from repro.core import FirstFitDecreasing
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.metrics.report import ComparisonTable
from repro.workloads import UniformDemandDistribution, consolidation_instance

from benchmarks.conftest import run_once

N_VMS = 100


def _instance():
    rng = np.random.default_rng(424)
    return consolidation_instance(
        N_VMS,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


def _solve(demands, capacities, **overrides) -> dict:
    defaults = dict(n_ants=8, n_cycles=25, alpha=1.0, beta=2.0, rho=0.3)
    defaults.update(overrides)
    params = ACOParameters(**defaults)
    result = ACOConsolidation(params, rng=np.random.default_rng(99)).solve(demands, capacities)
    return {
        "hosts": result.hosts_used,
        "runtime_s": result.runtime_seconds,
        "utilization": result.placement.average_utilization(),
    }


def _run_experiment() -> dict:
    demands, capacities = _instance()
    ffd_hosts = FirstFitDecreasing().solve(demands, capacities).hosts_used
    table = ComparisonTable(f"E7: ACO parameter ablation ({N_VMS} VMs; FFD uses {ffd_hosts} hosts)")
    outcomes = {}

    sweeps = [
        ("default", {}),
        ("ants=2", {"n_ants": 2}),
        ("ants=16", {"n_ants": 16}),
        ("cycles=5", {"n_cycles": 5}),
        ("cycles=50", {"n_cycles": 50}),
        ("rho=0.1", {"rho": 0.1}),
        ("rho=0.7", {"rho": 0.7}),
        ("beta=0 (no heuristic)", {"beta": 0.0}),
        ("alpha=0 (no pheromone)", {"alpha": 0.0}),
    ]
    for label, overrides in sweeps:
        outcome = _solve(demands, capacities, **overrides)
        outcomes[label] = outcome
        table.add_row(
            configuration=label,
            hosts=outcome["hosts"],
            vs_ffd=outcome["hosts"] - ffd_hosts,
            utilization=round(outcome["utilization"], 3),
            runtime_s=round(outcome["runtime_s"], 2),
        )
    table.print()
    outcomes["ffd_hosts"] = ffd_hosts
    return outcomes


def test_e7_aco_parameter_sensitivity(benchmark):
    """The default configuration is competitive; removing the heuristic term hurts packing."""
    outcomes = run_once(benchmark, _run_experiment)
    default = outcomes["default"]
    # Default ACO beats the FFD baseline on this instance.
    assert default["hosts"] <= outcomes["ffd_hosts"]
    # Removing the heuristic guidance (beta=0) never improves on the default.
    assert outcomes["beta=0 (no heuristic)"]["hosts"] >= default["hosts"]
    # A tiny colony / few cycles never beats the default configuration.
    assert outcomes["ants=2"]["hosts"] >= default["hosts"]
    assert outcomes["cycles=5"]["hosts"] >= default["hosts"]
    # More ants cost proportionally more runtime.
    assert outcomes["ants=16"]["runtime_s"] > outcomes["ants=2"]["runtime_s"]
