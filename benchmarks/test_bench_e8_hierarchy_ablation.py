"""E8 (ablation) -- Hierarchy fan-out and heartbeat-interval sensitivity.

DESIGN.md calls out two hierarchy design choices worth ablating:

* **Group Manager fan-out**: how does the number of GMs over a fixed set of
  Local Controllers affect management-message overhead and Group-Leader
  failover time?
* **Heartbeat interval**: faster heartbeats detect failures sooner but cost
  more messages -- the classic failure-detection trade-off the paper's
  "multicast-based heartbeat protocols" imply.

Expected shape: message overhead grows mildly with GM count and inversely with
the heartbeat interval, while GL failover time is governed by the session
timeout / heartbeat timeout rather than by cluster size.
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator

from benchmarks.conftest import run_once

LCS = 48
VMS = 48
OBSERVATION_WINDOW = 300.0


def _run_configuration(gms: int, heartbeat_interval: float) -> dict:
    config = HierarchyConfig(
        seed=66,
        gl_heartbeat_interval=heartbeat_interval,
        gm_heartbeat_interval=heartbeat_interval,
        lc_heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=4 * heartbeat_interval,
        session_timeout=5 * heartbeat_interval,
    )
    system = SnoozeSystem(
        SystemSpec(local_controllers=LCS, group_managers=gms, entry_points=1), config=config, seed=66
    )
    system.start()
    generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.2), BatchArrival(0.0))
    system.submit_requests(generator.generate(VMS, np.random.default_rng(66)))
    system.run(30.0)

    # Steady-state management-message rate over a fixed observation window.
    messages_before = system.network.messages_sent
    system.run(OBSERVATION_WINDOW)
    message_rate = (system.network.messages_sent - messages_before) / OBSERVATION_WINDOW

    # Group Leader failover time under these heartbeat settings.  With a single
    # GM there is no other candidate to promote, so failover is not defined.
    if gms > 1:
        old_leader = system.kill_group_leader()
        t_fail = system.sim.now
        healed = system.run_until(
            lambda: system.current_leader() not in (None, old_leader), timeout=600.0, step=1.0
        )
        failover_time = system.sim.now - t_fail if healed else float("inf")
    else:
        failover_time = float("nan")
    return {
        "gms": gms,
        "heartbeat_s": heartbeat_interval,
        "placed": system.client.placed_count(),
        "messages_per_s": message_rate,
        "failover_s": failover_time,
    }


def _run_experiment() -> list:
    table = ComparisonTable(f"E8: hierarchy ablation ({LCS} LCs, {VMS} VMs)")
    rows = []
    for gms in (1, 2, 4, 8):
        rows.append(_run_configuration(gms, heartbeat_interval=2.0))
    for heartbeat in (1.0, 5.0):
        rows.append(_run_configuration(4, heartbeat_interval=heartbeat))
    for row in rows:
        table.add_row(
            group_managers=row["gms"],
            heartbeat_s=row["heartbeat_s"],
            placed=row["placed"],
            mgmt_messages_per_s=round(row["messages_per_s"], 1),
            gl_failover_s=round(row["failover_s"], 1),
        )
    table.print()
    return rows


def test_e8_hierarchy_fanout_and_heartbeat_tradeoffs(benchmark):
    """Message overhead tracks heartbeat rate; failover time tracks the timeout, not the size."""
    rows = run_once(benchmark, _run_experiment)
    by_config = {(row["gms"], row["heartbeat_s"]): row for row in rows}
    # All configurations serve the workload; every multi-GM configuration fails over.
    assert all(row["placed"] == VMS for row in rows)
    assert all(np.isfinite(row["failover_s"]) for row in rows if row["gms"] > 1)
    # Faster heartbeats cost more messages (1 s vs 5 s at 4 GMs).
    assert by_config[(4, 1.0)]["messages_per_s"] > by_config[(4, 5.0)]["messages_per_s"]
    # Faster heartbeats (shorter session timeout) also fail over faster.
    assert by_config[(4, 1.0)]["failover_s"] < by_config[(4, 5.0)]["failover_s"]
    # Adding GMs does not blow up the message rate (within 2x from 1 to 8 GMs).
    assert by_config[(8, 2.0)]["messages_per_s"] <= 2.0 * by_config[(1, 2.0)]["messages_per_s"]
    # Failover time is bounded by a few session timeouts at the default heartbeat.
    assert by_config[(4, 2.0)]["failover_s"] <= 5 * (5 * 2.0)
