"""E3 -- Snooze scalability: submission cost vs cluster size and GM count.

Paper claims (Section II.F): "negligible cost is involved in performing
distributed VM management and the system remains highly scalable with
increasing amounts of VMs and hosts" (CCGrid'12 submission-time experiments,
up to 144 nodes and 500 VMs).

The benchmark sweeps the number of Local Controllers and Group Managers,
submits a burst of VMs and reports the client-observed submission latency and
the per-VM management message overhead.  The shape to reproduce: latency grows
slowly (roughly linearly in queued VMs, milliseconds each), and adding Group
Managers does not increase it (distributed management is essentially free).
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.metrics.report import ComparisonTable
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator

from benchmarks.conftest import run_once

#: (local controllers, group managers) sweep -- scaled-down version of the 144-node testbed.
SWEEP = ((16, 1), (16, 2), (48, 2), (48, 4), (96, 4), (144, 4))
VM_COUNT = 120


def _run_configuration(lcs: int, gms: int) -> dict:
    system = SnoozeSystem(
        SystemSpec(local_controllers=lcs, group_managers=gms, entry_points=1),
        config=HierarchyConfig(seed=3),
        seed=3,
    )
    system.start()
    # Small VMs so the burst fits even on the 16-host configuration; the paper's
    # submission experiment likewise uses lightweight benchmark VMs.
    generator = WorkloadGenerator(UniformDemandDistribution(0.02, 0.1), BatchArrival(0.0))
    system.submit_requests(generator.generate(VM_COUNT, np.random.default_rng(3)))
    messages_before = system.network.messages_sent
    system.run_until(
        lambda: len(system.client.records) >= VM_COUNT and system.client.pending_count() == 0,
        timeout=900.0,
        step=5.0,
    )
    latencies = np.asarray(system.client.latencies())
    return {
        "lcs": lcs,
        "gms": gms,
        "placed": system.client.placed_count(),
        "mean_latency_ms": 1000.0 * float(latencies.mean()),
        "p95_latency_ms": 1000.0 * float(np.percentile(latencies, 95)),
        "messages_per_vm": (system.network.messages_sent - messages_before) / VM_COUNT,
    }


def _run_experiment() -> list:
    table = ComparisonTable(f"E3: submission latency vs cluster size ({VM_COUNT} VM burst)")
    rows = []
    for lcs, gms in SWEEP:
        outcome = _run_configuration(lcs, gms)
        rows.append(outcome)
        table.add_row(
            hosts=outcome["lcs"],
            group_managers=outcome["gms"],
            placed=outcome["placed"],
            mean_latency_ms=round(outcome["mean_latency_ms"], 2),
            p95_latency_ms=round(outcome["p95_latency_ms"], 2),
            messages_per_vm=round(outcome["messages_per_vm"], 1),
        )
    table.print()
    return rows


def test_e3_submission_scales_with_hosts_and_gms(benchmark):
    """Submission latency stays in the tens of milliseconds and is flat in the GM count."""
    rows = run_once(benchmark, _run_experiment)
    # Every configuration places the full burst.
    assert all(row["placed"] == VM_COUNT for row in rows)
    # Latency never explodes: well under a second on average everywhere.
    assert all(row["mean_latency_ms"] < 500.0 for row in rows)
    # Distributed management is "negligible cost": going from 1 GM to 4 GMs at the
    # same scale does not blow up latency (allow 2x head-room for scheduling noise).
    by_key = {(row["lcs"], row["gms"]): row for row in rows}
    assert by_key[(16, 2)]["mean_latency_ms"] <= 2.0 * by_key[(16, 1)]["mean_latency_ms"]
    assert by_key[(48, 4)]["mean_latency_ms"] <= 2.0 * by_key[(48, 2)]["mean_latency_ms"]
    # Scaling hosts 9x (16 -> 144) must not scale latency anywhere near 9x.
    assert by_key[(144, 4)]["mean_latency_ms"] <= 3.0 * by_key[(16, 2)]["mean_latency_ms"]
