"""Sweep matrix benchmark -- serial vs parallel execution of a policy grid.

Runs a trimmed ``policy-matrix`` sweep (every placement x reconfiguration
policy over one churn scenario) twice: once with the serial executor and once
with the multiprocessing executor, asserting that the two reports are
byte-identical and recording the wall-clock of both, so the parallel speedup
is tracked in the bench trajectory alongside the per-experiment ``BENCH_E*``
files.

The machine-readable summary is ``BENCH_SWEEP_MATRIX.json`` (same
``REPRO_BENCH_RESULTS`` override and never-fail contract as the others).
The speedup assertion is gated on the CPUs actually available: on a
single-core container process-level parallelism cannot win, but correctness
(identical reports) must hold everywhere.
"""

from __future__ import annotations

import os
import time

from repro.metrics.report import ComparisonTable
from repro.sweeps import SweepSpec, get_sweep, run_sweep

from benchmarks.conftest import merge_results_json, run_once

SWEEP = "policy-matrix"
#: Trim the catalog entry to one scenario and shorter runs: enough cells (20)
#: to amortize pool startup, small enough to keep the tier-1 suite fast.
SCENARIOS = ["steady-churn"]
DURATION = 600.0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


PARALLEL_JOBS = max(2, min(4, _available_cpus()))


def _matrix_spec() -> SweepSpec:
    base = get_sweep(SWEEP).to_dict()
    return SweepSpec.from_dict({**base, "scenarios": SCENARIOS, "duration": DURATION})


def test_sweep_matrix_serial_vs_parallel(benchmark):
    spec = _matrix_spec()

    def compare() -> dict:
        start = time.perf_counter()
        serial = run_sweep(spec, jobs=1)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_sweep(spec, jobs=PARALLEL_JOBS)
        parallel_seconds = time.perf_counter() - start
        return {
            "serial": serial,
            "parallel": parallel,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
        }

    outcome = run_once(benchmark, compare)
    serial, parallel = outcome["serial"], outcome["parallel"]
    speedup = outcome["serial_seconds"] / max(outcome["parallel_seconds"], 1e-9)
    cpus = _available_cpus()
    # On a single-CPU box every backend time-slices one core: speedup numbers
    # are honest-but-meaningless, so they are flagged rather than asserted.
    compute_starved = cpus < 2

    # Merge (not overwrite): the distributed-sweep benchmark contributes a
    # "distributed" cell to this same file.
    merge_results_json(
        "BENCH_SWEEP_MATRIX.json",
        {
            "sweep": SWEEP,
            "scenarios": SCENARIOS,
            "duration_seconds": DURATION,
            "runs": serial.total_runs,
            "failed_runs": serial.failed,
            "jobs": PARALLEL_JOBS,
            "cpus_available": cpus,
            "compute_starved": compute_starved,
            "serial_seconds": round(outcome["serial_seconds"], 4),
            "parallel_seconds": round(outcome["parallel_seconds"], 4),
            "speedup": round(speedup, 4),
            "reports_identical": serial.to_json() == parallel.to_json(),
        },
    )

    table = ComparisonTable(f"Sweep matrix: serial vs parallel ({serial.total_runs} runs)")
    table.add_row(executor="serial", jobs=1, wall_seconds=round(outcome["serial_seconds"], 3))
    table.add_row(
        executor="multiprocessing",
        jobs=PARALLEL_JOBS,
        wall_seconds=round(outcome["parallel_seconds"], 3),
    )
    table.add_row(executor="speedup", jobs=f"x{speedup:.2f}", wall_seconds="-")
    table.print()

    assert serial.failed == 0
    assert parallel.failed == 0
    # The determinism contract: the job count must never change the report.
    assert serial.to_json() == parallel.to_json()
    assert serial.to_csv() == parallel.to_csv()
    # Any speedup assertion needs at least a second CPU to be meaningful.
    if not compute_starved:
        assert speedup > 0
    # The wall-clock threshold is load-sensitive, so it is only enforced in
    # the dedicated CI sweeps job (REPRO_BENCH_STRICT=1), never in the plain
    # tier-1 run where a noisy co-tenant could flake the whole suite.
    if os.environ.get("REPRO_BENCH_STRICT") == "1" and cpus >= 4:
        # With real cores behind the pool the matrix must parallelize.
        assert speedup > 1.5
