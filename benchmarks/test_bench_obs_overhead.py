"""Observability overhead benchmark: what does each pillar cost?

The scale benchmark's CI-gated 100-LC churn cell (same spec, same seed, same
workload streams) runs under three observability configurations:

* **off** -- every pillar disabled.  ``ObservabilityPlane.build`` returns
  ``None``, so no hook holds a plane: this is structurally the
  pre-observability code path (asserted below: no plane service, no kernel
  profiler, no transport tracer).
* **metrics** -- the default configuration (metrics on, tracing/profiling
  off).  Hot-path counters are mirrored by collectors at exposition time, so
  the expected overhead is ~0.
* **full** -- metrics + tracing + profiling: per-span recording and
  per-event ``perf_counter`` pairs (reported, not gated).

All three configurations must produce **byte-identical** canonical results
(asserted unconditionally -- observability never changes simulated
behaviour).  Rounds are interleaved across configurations and the fastest
wall clock per configuration is kept, so slow machine drift hits every
configuration alike.

Gating (only under ``REPRO_BENCH_STRICT=1``, like the scale benchmark):
metrics-on may cost at most 5% events/sec against the all-off run of the
*same invocation* -- a paired same-machine comparison, which is the only
honest way to resolve single-digit percentages.  The "all-off within ~1% of
the pre-observability baseline" criterion is enforced structurally (the
assertions above prove no instrumentation exists on that path, so it *is*
the PR-4 code path), and cross-machine absolute regressions are already
gated by the scale benchmark's baseline floor -- which, with metrics on by
default, now exercises the metrics-on hot path.

Results land in ``benchmarks/results/BENCH_OBS_OVERHEAD.json``.
"""

from __future__ import annotations

import gc
import os

from repro.metrics.report import ComparisonTable
from repro.scenarios import ScenarioRunner, ScenarioSpec

from benchmarks.conftest import write_results_json
from benchmarks.test_bench_scale import FLEETS, SEED, _fleet_spec

#: Fleet size measured (the scale benchmark's CI-gated point).
LCS = 100

#: The observability configurations compared.
CONFIGS = {
    "off": {"metrics": False, "tracing": False, "profiling": False},
    "metrics": {"metrics": True, "tracing": False, "profiling": False},
    "full": {"metrics": True, "tracing": True, "profiling": True},
}

#: Interleaved timed repetitions per configuration; the fastest is kept.
ROUNDS = 3


def _obs_spec(pillars: dict) -> ScenarioSpec:
    # Keep the scale benchmark's spec (and name: workload streams are keyed by
    # it) so the all-off run is literally the scale benchmark's new path.
    base = _fleet_spec(LCS, telemetry="arrays", coalesce=True).to_dict()
    base["config"] = dict(base["config"])
    base["config"]["observability"] = dict(pillars)
    return ScenarioSpec.from_dict(base)


def _run_once(label: str) -> dict:
    runner = ScenarioRunner(_obs_spec(CONFIGS[label]), seed=SEED)
    gc.collect()
    gc.disable()
    try:
        result = runner.run()
    finally:
        gc.enable()
    system = runner.system
    if label == "off":
        # All pillars off must mean structurally zero instrumentation: no
        # plane service, no kernel profiler, no transport tracer.
        assert system.obs is None
        assert not system.sim.has_service("observability")
        assert system.sim.profiler is None
        assert system.network._tracer is None and system.network.obs is None
    return {
        "wall": result.perf["wall_clock_seconds"],
        "events": system.sim.processed_events,
        "canonical": result.canonical_json(),
    }


def _measure() -> dict:
    best: dict = {}
    for _ in range(ROUNDS):
        for label in CONFIGS:
            sample = _run_once(label)
            entry = best.get(label)
            if entry is None or sample["wall"] < entry["wall"]:
                best[label] = sample
    return {
        label: {
            "observability": dict(CONFIGS[label]),
            "wall_clock_seconds": round(sample["wall"], 4),
            "processed_events": int(sample["events"]),
            "events_per_second": (
                round(sample["events"] / sample["wall"], 1) if sample["wall"] > 0 else 0.0
            ),
            "_canonical": sample["canonical"],
        }
        for label, sample in best.items()
    }


def test_observability_overhead(benchmark):
    entries = benchmark.pedantic(_measure, rounds=1, iterations=1, warmup_rounds=0)

    # Observability never changes simulated behaviour: byte-identical results.
    baseline_canonical = entries["off"].pop("_canonical")
    for label in ("metrics", "full"):
        assert entries[label].pop("_canonical") == baseline_canonical, (
            f"observability config {label!r} changed the simulated result"
        )

    eps_off = entries["off"]["events_per_second"]
    table = ComparisonTable("Observability overhead (100 LCs, churn)")
    for label, entry in entries.items():
        entry["relative_throughput"] = (
            round(entry["events_per_second"] / eps_off, 4) if eps_off > 0 else 0.0
        )
        table.add_row(
            config=label,
            wall_s=entry["wall_clock_seconds"],
            events=entry["processed_events"],
            eps=entry["events_per_second"],
            relative=entry["relative_throughput"],
        )
    table.print()

    write_results_json(
        "BENCH_OBS_OVERHEAD.json",
        {
            "benchmark": "obs-overhead",
            "local_controllers": LCS,
            "group_managers": FLEETS[LCS]["group_managers"],
            "vms": FLEETS[LCS]["vms"],
            "simulated_seconds": FLEETS[LCS]["duration"],
            "seed": SEED,
            "rounds": ROUNDS,
            "results_identical": True,
            "configs": entries,
        },
    )

    if os.environ.get("REPRO_BENCH_STRICT"):
        # Paired same-invocation comparison: the default (metrics-on)
        # configuration may cost at most 5% events/sec.
        relative = entries["metrics"]["relative_throughput"]
        assert relative >= 0.95, (
            f"metrics-on throughput is {relative:.3f}x of all-off "
            "(gate: >= 0.95); collector-based mirroring should cost ~0"
        )
