"""Distributed sweep benchmark -- serial vs pool vs loopback runner fleets.

Runs one small grid (the ``smoke-2x2`` scenarios with two seeds, 8 cells)
through every execution backend: the in-process serial executor, the
multiprocessing pool, and :class:`~repro.sweeps.distributed.DistributedExecutor`
fleets of 1, 2 and 4 loopback runner subprocesses -- plus one fleet where a
runner is killed mid-sweep (``REPRO_SWEEP_RUNNER_FAULT``) to price the lease
reclaim/retry path.  Every backend's report must be byte-identical to the
serial one; the wall clocks land in ``BENCH_SWEEP_DIST.json`` and a summary
cell is merged into ``BENCH_SWEEP_MATRIX.json``.

The 1-runner fleet measures pure coordination overhead (socket round-trips,
leases, heartbeats, subprocess start) against the serial baseline, reported as
``coordinator_overhead_ratio``.  On a single-CPU container every backend
time-slices one core, so speedups are flagged ``compute_starved`` instead of
asserted; the strict gate runs only in CI (``REPRO_BENCH_STRICT=1``) with
real cores.
"""

from __future__ import annotations

import os
import time

from repro.metrics.report import ComparisonTable
from repro.sweeps import DistributedExecutor, SweepSpec, run_sweep

from benchmarks.conftest import merge_results_json, run_once, write_results_json

SCENARIOS = ["steady-churn", "flash-crowd"]
SEEDS = [2012, 7]
DURATION = 600.0
RUNNER_COUNTS = [1, 2, 4]
#: Short leases so the killed-runner cell recovers quickly; heartbeats keep
#: healthy long runs alive regardless.
LEASE_SECONDS = 2.0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _dist_spec() -> SweepSpec:
    return SweepSpec(
        name="dist-bench",
        description="distributed sweep benchmark grid",
        scenarios=SCENARIOS,
        policies=[{}, {"placement": {"name": "best-fit"}}],
        seeds=SEEDS,
        duration=DURATION,
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_sweep_distributed_backends(benchmark):
    spec = _dist_spec()
    pool_jobs = max(2, min(4, _available_cpus()))

    def compare() -> dict:
        serial, serial_seconds = _timed(lambda: run_sweep(spec, jobs=1))
        pool, pool_seconds = _timed(lambda: run_sweep(spec, jobs=pool_jobs))
        fleets = {}
        for runners in RUNNER_COUNTS:
            executor = DistributedExecutor(runners=runners, lease_seconds=LEASE_SECONDS)
            report, seconds = _timed(lambda: run_sweep(spec, executor=executor))
            fleets[runners] = {
                "report": report,
                "seconds": seconds,
                "stats": dict(executor.last_stats),
            }
        killer = DistributedExecutor(
            runners=2,
            lease_seconds=LEASE_SECONDS,
            runner_env=[{"REPRO_SWEEP_RUNNER_FAULT": "die-after-pulls:1"}, None],
        )
        killed, killed_seconds = _timed(lambda: run_sweep(spec, executor=killer))
        return {
            "serial": serial,
            "serial_seconds": serial_seconds,
            "pool": pool,
            "pool_jobs": pool_jobs,
            "pool_seconds": pool_seconds,
            "fleets": fleets,
            "killed": killed,
            "killed_seconds": killed_seconds,
            "killed_stats": dict(killer.last_stats),
        }

    outcome = run_once(benchmark, compare)
    serial = outcome["serial"]
    serial_json = serial.to_json()
    cpus = _available_cpus()
    compute_starved = cpus < 2

    identical = (
        outcome["pool"].to_json() == serial_json
        and outcome["killed"].to_json() == serial_json
        and all(
            fleet["report"].to_json() == serial_json
            for fleet in outcome["fleets"].values()
        )
    )
    overhead_ratio = outcome["fleets"][1]["seconds"] / max(
        outcome["serial_seconds"], 1e-9
    )
    speedups = {
        runners: outcome["serial_seconds"] / max(fleet["seconds"], 1e-9)
        for runners, fleet in outcome["fleets"].items()
    }

    write_results_json(
        "BENCH_SWEEP_DIST.json",
        {
            "sweep": spec.name,
            "scenarios": SCENARIOS,
            "seeds": SEEDS,
            "duration_seconds": DURATION,
            "runs": serial.total_runs,
            "failed_runs": serial.failed,
            "cpus_available": cpus,
            "compute_starved": compute_starved,
            "lease_seconds": LEASE_SECONDS,
            "serial_seconds": round(outcome["serial_seconds"], 4),
            "pool_jobs": outcome["pool_jobs"],
            "pool_seconds": round(outcome["pool_seconds"], 4),
            "runners": {
                str(runners): {
                    "seconds": round(fleet["seconds"], 4),
                    "speedup_vs_serial": round(speedups[runners], 4),
                    "leases_granted": fleet["stats"].get("leases_granted"),
                    "speculative_leases": fleet["stats"].get("speculative_leases"),
                }
                for runners, fleet in outcome["fleets"].items()
            },
            "coordinator_overhead_ratio": round(overhead_ratio, 4),
            "killed_runner": {
                "seconds": round(outcome["killed_seconds"], 4),
                "reclaimed_disconnect": outcome["killed_stats"].get(
                    "reclaimed_disconnect"
                ),
                "retries": outcome["killed_stats"].get("retries"),
            },
            "reports_identical": identical,
        },
    )
    merge_results_json(
        "BENCH_SWEEP_MATRIX.json",
        {
            "distributed": {
                "runs": serial.total_runs,
                "runners": 2,
                "seconds": round(outcome["fleets"][2]["seconds"], 4),
                "speedup_vs_serial": round(speedups[2], 4),
                "reports_identical": identical,
                "compute_starved": compute_starved,
            }
        },
    )

    table = ComparisonTable(f"Distributed sweep: {serial.total_runs} runs per backend")
    table.add_row(backend="serial", workers=1, wall_seconds=round(outcome["serial_seconds"], 3))
    table.add_row(
        backend="pool",
        workers=outcome["pool_jobs"],
        wall_seconds=round(outcome["pool_seconds"], 3),
    )
    for runners, fleet in outcome["fleets"].items():
        table.add_row(
            backend=f"runners={runners}",
            workers=runners,
            wall_seconds=round(fleet["seconds"], 3),
        )
    table.add_row(
        backend="runners=2 +kill", workers=2, wall_seconds=round(outcome["killed_seconds"], 3)
    )
    table.print()

    assert serial.failed == 0
    # The tentpole contract: no backend, fleet size or injected kill may
    # change a single byte of the report.
    assert identical
    assert outcome["killed_stats"]["reclaimed_disconnect"] >= 1
    # The threshold gates only run in the dedicated CI job with real cores;
    # see test_bench_sweep_matrix for the rationale.
    if os.environ.get("REPRO_BENCH_STRICT") == "1" and cpus >= 4:
        assert speedups[2] > 1.7
        assert overhead_ratio < 3.0
