"""Tests for the consolidation algorithms: FFD family, ACO and the exact solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.base import lower_bound_hosts
from repro.core.ffd import (
    BestFitDecreasing,
    FirstFit,
    FirstFitDecreasing,
    SortKey,
    WorstFitDecreasing,
)
from repro.core.optimal import BranchAndBoundOptimal
from repro.simulation.randomness import spawn_generator
from repro.core.placement import PlacementError
from repro.workloads import UniformDemandDistribution, consolidation_instance


def tiny_instance():
    """A hand-built instance with a known optimum of 2 hosts."""
    demands = np.array(
        [
            [0.6, 0.2],
            [0.4, 0.3],
            [0.5, 0.5],
            [0.5, 0.5],
        ]
    )
    capacities = np.tile([1.0, 1.0], (4, 1))
    return demands, capacities


class TestFirstFitFamily:
    def test_first_fit_places_everything(self, small_instance):
        demands, capacities = small_instance
        result = FirstFit().solve(demands, capacities)
        assert result.feasible
        assert result.algorithm == "first-fit"

    def test_ffd_beats_or_equals_first_fit(self, medium_instance):
        demands, capacities = medium_instance
        ff = FirstFit().solve(demands, capacities)
        ffd = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities)
        assert ffd.hosts_used <= ff.hosts_used

    def test_ffd_single_dimension_sorts_by_cpu(self):
        demands, capacities = tiny_instance()
        result = FirstFitDecreasing(sort_key=SortKey.SINGLE_DIMENSION, dimension=0).solve(
            demands, capacities
        )
        assert result.feasible
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    @pytest.mark.parametrize("key", list(SortKey))
    def test_all_sort_keys_produce_feasible_packings(self, key, small_instance):
        demands, capacities = small_instance
        result = FirstFitDecreasing(sort_key=key).solve(demands, capacities)
        assert result.feasible

    def test_ffd_name_reflects_sort_key(self):
        assert FirstFitDecreasing().name == "ffd"
        assert FirstFitDecreasing(sort_key=SortKey.L2).name == "ffd-l2"

    def test_bfd_feasible_and_reasonable(self, medium_instance):
        demands, capacities = medium_instance
        result = BestFitDecreasing().solve(demands, capacities)
        assert result.feasible
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    def test_wfd_spreads_load(self, small_instance):
        demands, capacities = small_instance
        wfd = WorstFitDecreasing().solve(demands, capacities)
        ffd = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities)
        assert wfd.feasible
        assert wfd.hosts_used >= ffd.hosts_used

    def test_insufficient_hosts_raises(self):
        demands = np.tile([0.6, 0.6], (4, 1))
        capacities = np.tile([1.0, 1.0], (2, 1))  # needs 4 hosts, only 2 available
        with pytest.raises(PlacementError):
            FirstFitDecreasing().solve(demands, capacities)

    def test_runtime_is_recorded(self, small_instance):
        demands, capacities = small_instance
        result = FirstFitDecreasing().solve(demands, capacities)
        assert result.runtime_seconds >= 0.0

    def test_empty_instance(self):
        capacities = np.tile([1.0, 1.0], (3, 1))
        result = FirstFitDecreasing().solve(np.empty((0, 2)), capacities)
        assert result.hosts_used == 0
        assert result.feasible

    def test_sort_dimension_out_of_range_rejected(self, small_instance):
        demands, capacities = small_instance
        with pytest.raises(PlacementError):
            FirstFitDecreasing(dimension=9).solve(demands, capacities)

    def test_heterogeneous_hosts_supported(self, rng):
        demands = UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")).sample(20, rng)
        capacities = np.vstack([np.tile([1.0, 1.0], (10, 1)), np.tile([2.0, 2.0], (5, 1))])
        result = BestFitDecreasing().solve(demands, capacities)
        assert result.feasible


class TestACO:
    def test_aco_is_feasible_and_complete(self, small_instance):
        demands, capacities = small_instance
        result = ACOConsolidation(rng=np.random.default_rng(0)).solve(demands, capacities)
        assert result.feasible
        assert result.algorithm == "aco"

    def test_aco_never_worse_than_lower_bound(self, small_instance):
        demands, capacities = small_instance
        result = ACOConsolidation(rng=np.random.default_rng(0)).solve(demands, capacities)
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    def test_aco_no_worse_than_ffd_on_average(self):
        """The paper's headline: ACO uses fewer (or equal) hosts than FFD."""
        wins = 0
        ties = 0
        losses = 0
        for seed in range(6):
            rng = np.random.default_rng(seed)
            demands, capacities = consolidation_instance(
                40,
                rng,
                demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
                host_capacity=(1.0, 1.0),
            )
            ffd = FirstFitDecreasing().solve(demands, capacities)
            aco = ACOConsolidation(
                ACOParameters(n_ants=6, n_cycles=20), rng=spawn_generator(seed, 1)
            ).solve(demands, capacities)
            assert aco.feasible
            if aco.hosts_used < ffd.hosts_used:
                wins += 1
            elif aco.hosts_used == ffd.hosts_used:
                ties += 1
            else:
                losses += 1
        assert wins + ties >= 5
        assert losses <= 1

    def test_aco_deterministic_given_rng_seed(self, small_instance):
        demands, capacities = small_instance
        a = ACOConsolidation(rng=np.random.default_rng(7)).solve(demands, capacities)
        b = ACOConsolidation(rng=np.random.default_rng(7)).solve(demands, capacities)
        assert np.array_equal(a.placement.assignment, b.placement.assignment)

    def test_history_is_monotone_non_increasing(self, small_instance):
        demands, capacities = small_instance
        result = ACOConsolidation(rng=np.random.default_rng(1)).solve(demands, capacities)
        history = result.history
        assert history == sorted(history, reverse=True)

    def test_stops_at_lower_bound(self):
        # Two VMs of half a host each: optimum (and bound) is 1 host.
        demands = np.array([[0.5, 0.5], [0.5, 0.5]])
        capacities = np.tile([1.0, 1.0], (3, 1))
        result = ACOConsolidation(
            ACOParameters(n_ants=4, n_cycles=50), rng=np.random.default_rng(0)
        ).solve(demands, capacities)
        assert result.hosts_used == 1
        assert result.proved_optimal
        assert result.iterations < 50  # stopped early

    def test_pheromone_stays_within_bounds(self, small_instance):
        demands, capacities = small_instance
        params = ACOParameters(n_ants=4, n_cycles=10, tau_min=0.05, tau_max=5.0)
        result = ACOConsolidation(params, rng=np.random.default_rng(3)).solve(demands, capacities)
        assert result.extra["pheromone_max"] <= 5.0 + 1e-9
        assert result.extra["pheromone_mean"] >= 0.05 - 1e-9

    def test_empty_instance(self):
        capacities = np.tile([1.0, 1.0], (2, 1))
        result = ACOConsolidation(rng=np.random.default_rng(0)).solve(np.empty((0, 2)), capacities)
        assert result.hosts_used == 0

    def test_too_few_hosts_raises(self):
        demands = np.tile([0.9, 0.9], (3, 1))
        capacities = np.tile([1.0, 1.0], (2, 1))
        with pytest.raises(PlacementError):
            ACOConsolidation(rng=np.random.default_rng(0)).solve(demands, capacities)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ACOParameters(n_ants=0)
        with pytest.raises(ValueError):
            ACOParameters(rho=0.0)
        with pytest.raises(ValueError):
            ACOParameters(q0=1.5)
        with pytest.raises(ValueError):
            ACOParameters(tau_min=0.5, tau_max=0.1)
        with pytest.raises(ValueError):
            ACOParameters(stagnation_cycles=0)

    def test_greedy_mode_q0_one_is_deterministic_construction(self, small_instance):
        demands, capacities = small_instance
        params = ACOParameters(n_ants=2, n_cycles=3, q0=1.0)
        a = ACOConsolidation(params, rng=np.random.default_rng(0)).solve(demands, capacities)
        b = ACOConsolidation(params, rng=np.random.default_rng(99)).solve(demands, capacities)
        assert a.hosts_used == b.hosts_used

    def test_three_dimensional_instances_supported(self, rng):
        demands = UniformDemandDistribution(0.1, 0.4).sample(20, rng)
        capacities = np.tile([1.0, 1.0, 1.0], (12, 1))
        result = ACOConsolidation(rng=np.random.default_rng(2)).solve(demands, capacities)
        assert result.feasible


class TestBranchAndBoundOptimal:
    def test_finds_known_optimum(self):
        demands, capacities = tiny_instance()
        result = BranchAndBoundOptimal().solve(demands, capacities)
        assert result.hosts_used == 2
        assert result.proved_optimal
        assert result.feasible

    def test_never_worse_than_ffd(self, small_instance):
        demands, capacities = small_instance
        ffd = FirstFitDecreasing().solve(demands, capacities)
        optimal = BranchAndBoundOptimal(time_limit_seconds=10.0).solve(demands, capacities)
        assert optimal.hosts_used <= ffd.hosts_used

    def test_never_below_lower_bound(self, small_instance):
        demands, capacities = small_instance
        result = BranchAndBoundOptimal(time_limit_seconds=10.0).solve(demands, capacities)
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    def test_aco_close_to_optimal_small_instances(self):
        """The paper's claim: ACO lands within a few percent of the optimum."""
        deviations = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            demands, capacities = consolidation_instance(
                10,
                rng,
                demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
                host_capacity=(1.0, 1.0),
            )
            optimal = BranchAndBoundOptimal(time_limit_seconds=10.0).solve(demands, capacities)
            aco = ACOConsolidation(
                ACOParameters(n_ants=8, n_cycles=40), rng=spawn_generator(seed, 1)
            ).solve(demands, capacities)
            deviations.append(aco.hosts_used / optimal.hosts_used - 1.0)
        assert np.mean(deviations) <= 0.10  # within 10 % of optimal on average

    def test_node_budget_degrades_gracefully(self, small_instance):
        demands, capacities = small_instance
        result = BranchAndBoundOptimal(max_nodes=10).solve(demands, capacities)
        assert result.feasible  # still returns the FFD seed or better
        assert result.nodes_explored <= 10 + 1

    def test_empty_instance(self):
        capacities = np.tile([1.0, 1.0], (2, 1))
        result = BranchAndBoundOptimal().solve(np.empty((0, 2)), capacities)
        assert result.hosts_used == 0
        assert result.proved_optimal

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BranchAndBoundOptimal(max_nodes=0)
        with pytest.raises(ValueError):
            BranchAndBoundOptimal(time_limit_seconds=0.0)

    def test_single_vm(self):
        demands = np.array([[0.5, 0.5]])
        capacities = np.tile([1.0, 1.0], (2, 1))
        result = BranchAndBoundOptimal().solve(demands, capacities)
        assert result.hosts_used == 1
        assert result.proved_optimal

    def test_summary_contains_expected_fields(self, small_instance):
        demands, capacities = small_instance
        result = BranchAndBoundOptimal(time_limit_seconds=5.0).solve(demands, capacities)
        summary = result.summary()
        for key in ("algorithm", "hosts_used", "feasible", "runtime_seconds", "proved_optimal"):
            assert key in summary
