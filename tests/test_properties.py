"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the invariants the whole reproduction leans on:

* ResourceVector arithmetic behaves like a vector space over non-negative data;
* every consolidation algorithm returns a *feasible, complete* placement and
  never beats the provable lower bound;
* FFD never uses fewer hosts than the exact optimum and ACO never uses more
  hosts than plain First-Fit's worst case guarantees;
* demand estimators stay within the sample envelope;
* the migration planner never violates capacities when executed step by step.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.resources import ResourceVector
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.base import lower_bound_hosts
from repro.core.ffd import BestFitDecreasing, FirstFit, FirstFitDecreasing, SortKey
from repro.core.migration_plan import plan_migrations
from repro.monitoring.estimators import EwmaEstimator, MaxEstimator, MeanEstimator, PercentileEstimator
from repro.scheduling.thresholds import UtilizationThresholds


# --------------------------------------------------------------------- helpers
@st.composite
def instances(draw, max_vms=24, dimensions=2):
    """Random feasible vector bin-packing instances (unit hosts)."""
    n_vms = draw(st.integers(min_value=1, max_value=max_vms))
    demands = draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
                min_size=dimensions,
                max_size=dimensions,
            ),
            min_size=n_vms,
            max_size=n_vms,
        )
    )
    demands = np.asarray(demands)
    capacities = np.tile(np.ones(dimensions), (n_vms, 1))  # one host per VM always suffices
    return demands, capacities


@st.composite
def resource_vectors(draw, dimensions=3):
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
            min_size=dimensions,
            max_size=dimensions,
        )
    )
    return ResourceVector(values)


# ------------------------------------------------------------ ResourceVector
class TestResourceVectorProperties:
    @given(resource_vectors(), resource_vectors())
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(resource_vectors(), resource_vectors(), resource_vectors())
    def test_addition_associative(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        assert np.allclose(left.values, right.values)

    @given(resource_vectors())
    def test_zero_is_identity(self, a):
        zero = ResourceVector.zeros(a.dimensions)
        assert a + zero == a

    @given(resource_vectors(), st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def test_scaling_scales_norms(self, a, factor):
        scaled = a * factor
        assert scaled.l1() == pytest.approx(a.l1() * factor, rel=1e-9, abs=1e-9)

    @given(resource_vectors(), resource_vectors())
    def test_fits_within_consistent_with_dominates(self, a, b):
        assert a.fits_within(b) == b.dominates(a)

    @given(resource_vectors())
    def test_subtract_self_is_zero(self, a):
        assert np.allclose((a - a).values, 0.0)


# ----------------------------------------------------------------- algorithms
ALGORITHMS = [
    ("first-fit", lambda: FirstFit()),
    ("ffd", lambda: FirstFitDecreasing(sort_key=SortKey.L1)),
    ("bfd", lambda: BestFitDecreasing()),
    ("aco", lambda: ACOConsolidation(ACOParameters(n_ants=4, n_cycles=8), rng=np.random.default_rng(0))),
]


class TestAlgorithmProperties:
    @pytest.mark.parametrize("name,factory", ALGORITHMS)
    @given(instance=instances())
    @settings(max_examples=25, deadline=None)
    def test_every_algorithm_returns_feasible_complete_placement(self, name, factory, instance):
        demands, capacities = instance
        result = factory().solve(demands, capacities)
        placement = result.placement
        assert placement.fully_assigned
        assert placement.is_feasible()
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)
        assert result.hosts_used <= demands.shape[0]

    @given(instance=instances(max_vms=16))
    @settings(max_examples=20, deadline=None)
    def test_ffd_not_worse_than_first_fit_by_large_margin(self, instance):
        demands, capacities = instance
        ff = FirstFit().solve(demands, capacities)
        ffd = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities)
        # Classic guarantee-ish sanity: sorting never costs more than a couple of hosts.
        assert ffd.hosts_used <= ff.hosts_used + 1

    @given(instance=instances(max_vms=14))
    @settings(max_examples=15, deadline=None)
    def test_aco_not_worse_than_ffd_plus_slack(self, instance):
        demands, capacities = instance
        ffd = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities)
        aco = ACOConsolidation(
            ACOParameters(n_ants=4, n_cycles=10), rng=np.random.default_rng(1)
        ).solve(demands, capacities)
        assert aco.hosts_used <= ffd.hosts_used + 1

    @given(instance=instances(max_vms=12))
    @settings(max_examples=15, deadline=None)
    def test_host_loads_equal_sum_of_assigned_demands(self, instance):
        demands, capacities = instance
        result = FirstFitDecreasing().solve(demands, capacities)
        loads = result.placement.host_loads()
        assert np.allclose(loads.sum(axis=0), demands.sum(axis=0))


# ----------------------------------------------------------- migration planner
class TestMigrationPlannerProperties:
    @given(instance=instances(max_vms=12))
    @settings(max_examples=20, deadline=None)
    def test_executing_plan_never_violates_capacity(self, instance):
        demands, capacities = instance
        current = FirstFit().solve(demands, capacities).placement
        target = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities).placement
        plan = plan_migrations(current, target)
        working = current.copy()
        for migration in plan:
            working.assignment[migration.vm_index] = migration.target_host
            assert working.is_feasible()
        # Every non-deferred difference has been applied.
        moved = {m.vm_index for m in plan}
        for vm in range(working.n_vms):
            if vm in moved:
                assert working.assignment[vm] == target.assignment[vm]


# -------------------------------------------------------------------- estimators
class TestEstimatorProperties:
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=3, max_size=3),
            min_size=1,
            max_size=30,
        )
    )
    def test_estimates_within_sample_envelope(self, samples):
        matrix = np.asarray(samples)
        for estimator in (MeanEstimator(), MaxEstimator(), EwmaEstimator(), PercentileEstimator()):
            estimate = estimator.estimate(matrix)
            assert np.all(estimate >= matrix.min(axis=0) - 1e-9)
            assert np.all(estimate <= matrix.max(axis=0) + 1e-9)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_threshold_classification_total(self, utilization):
        thresholds = UtilizationThresholds()
        band = thresholds.classify(utilization)
        assert band is not None
        # Exactly one of the two extreme predicates can hold.
        assert not (thresholds.is_overloaded(utilization) and thresholds.is_underloaded(utilization))


# ------------------------------------------------------------------- placement
class TestPlacementProperties:
    @given(instance=instances(max_vms=10))
    @settings(max_examples=20, deadline=None)
    def test_hosts_used_counts_distinct_assignment_values(self, instance):
        demands, capacities = instance
        placement = FirstFitDecreasing().solve(demands, capacities).placement
        distinct = len(set(int(h) for h in placement.assignment if h >= 0))
        assert placement.hosts_used() == distinct

    @given(instance=instances(max_vms=10))
    @settings(max_examples=20, deadline=None)
    def test_average_utilization_in_unit_interval(self, instance):
        demands, capacities = instance
        placement = BestFitDecreasing().solve(demands, capacities).placement
        assert 0.0 < placement.average_utilization() <= 1.0 + 1e-9
