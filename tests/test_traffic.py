"""Tests for the request-traffic plane: queue model, specs, autoscaling, wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.policies import (
    LatencyThresholdAutoscaling,
    ServiceSnapshot,
    TargetUtilizationAutoscaling,
    make_policy,
    policy_names,
)
from repro.scenarios import ScenarioSpec, get_scenario, run_scenario
from repro.traffic import (
    DEFAULT_LATENCY_BUCKETS,
    STABILITY_CAP,
    ServiceLoadTrace,
    ServiceSpec,
    TrafficSpec,
    compile_profile,
    erlang_c,
    evaluate_tick,
    quantile_from_histogram,
    sojourn_cdf,
)

BOUNDS = np.asarray(DEFAULT_LATENCY_BUCKETS, dtype=float)


def snapshot(**overrides) -> ServiceSnapshot:
    base = dict(
        service="svc",
        arrival_rate=100.0,
        replicas=2,
        pending=0,
        service_rate=100.0,
        utilization=0.5,
        p99_latency=0.05,
        dropped_ratio=0.0,
    )
    base.update(overrides)
    return ServiceSnapshot(**base)


class TestQueueModel:
    def test_erlang_c_matches_mm1(self):
        # For c = 1 the waiting probability collapses to rho.
        load = np.array([0.2, 0.5, 0.9])
        servers = np.ones(3, dtype=int)
        np.testing.assert_allclose(erlang_c(load, servers), load, atol=1e-12)

    def test_erlang_c_decreases_with_more_servers(self):
        load = np.array([1.8, 1.8, 1.8])
        servers = np.array([2, 4, 8])
        wait = erlang_c(load, servers)
        assert wait[0] > wait[1] > wait[2]

    def test_erlang_c_zero_load_or_servers(self):
        wait = erlang_c(np.array([0.0, 0.5]), np.array([2, 0]))
        np.testing.assert_array_equal(wait, np.zeros(2))

    def test_sojourn_cdf_is_monotone_and_bounded(self):
        t = np.linspace(0.0, 5.0, 200)
        cdf = sojourn_cdf(t, np.full_like(t, 10.0), np.full_like(t, 3.0), np.full_like(t, 0.4))
        assert (np.diff(cdf) >= -1e-12).all()
        assert cdf.min() >= 0.0 and cdf.max() <= 1.0

    def test_sojourn_cdf_equal_rates_limit_is_continuous(self):
        # The Erlang-2 fallback must agree with the hypoexponential branch
        # just outside the numerical window.
        mu = np.array([10.0, 10.0])
        drain = np.array([10.0, 10.0 + 1e-6])
        cdf = sojourn_cdf(np.array([0.2, 0.2]), mu, drain, np.array([1.0, 1.0]))
        assert abs(cdf[0] - cdf[1]) < 1e-4

    def test_mm1_mean_sojourn_is_exact(self):
        # M/M/1: E[T] = 1 / (mu - lam); the model's 1/mu + Pw/drain with
        # Pw = rho reproduces it exactly below the admission cap.
        lam, mu = np.array([60.0]), np.array([100.0])
        metrics = evaluate_tick(lam, mu, np.array([1]), 10.0, BOUNDS)
        np.testing.assert_allclose(metrics["mean_latency"], 1.0 / (100.0 - 60.0), rtol=1e-9)

    def test_zero_replicas_drop_everything(self):
        metrics = evaluate_tick(np.array([50.0]), np.array([100.0]), np.array([0]), 10.0, BOUNDS)
        assert metrics["served"][0] == 0.0
        assert metrics["dropped"][0] == pytest.approx(500.0)
        assert metrics["utilization"][0] == 1.0
        assert metrics["p99"][0] == 0.0
        assert metrics["bucket_mass"][0].sum() == 0.0

    def test_overload_is_admission_capped(self):
        lam, mu, servers = np.array([500.0]), np.array([100.0]), np.array([2])
        metrics = evaluate_tick(lam, mu, servers, 10.0, BOUNDS)
        cap = STABILITY_CAP * 200.0
        assert metrics["served"][0] == pytest.approx(cap * 10.0)
        assert metrics["dropped"][0] == pytest.approx((500.0 - cap) * 10.0)
        assert metrics["utilization"][0] == 1.0

    def test_bucket_mass_accounts_for_all_served_requests(self):
        lam = np.array([30.0, 150.0, 0.0])
        mu = np.array([100.0, 100.0, 100.0])
        servers = np.array([1, 2, 3])
        metrics = evaluate_tick(lam, mu, servers, 10.0, BOUNDS)
        np.testing.assert_allclose(metrics["bucket_mass"].sum(axis=1), metrics["served"])

    def test_quantiles_increase_with_load(self):
        low = evaluate_tick(np.array([20.0]), np.array([100.0]), np.array([1]), 10.0, BOUNDS)
        high = evaluate_tick(np.array([90.0]), np.array([100.0]), np.array([1]), 10.0, BOUNDS)
        assert high["p99"][0] > low["p99"][0]
        assert high["mean_latency"][0] > low["mean_latency"][0]

    def test_quantile_from_histogram_edge_cases(self):
        assert quantile_from_histogram(BOUNDS, np.zeros(BOUNDS.size + 1), 0.99) == 0.0
        # All mass in the +inf tail reports the last finite bound.
        tail_only = np.zeros(BOUNDS.size + 1)
        tail_only[-1] = 5.0
        assert quantile_from_histogram(BOUNDS, tail_only, 0.5) == BOUNDS[-1]


class TestProfilesAndSpecs:
    def test_compile_profile_scales_trace_by_peak(self):
        rng = np.random.default_rng(0)
        profile = compile_profile({"kind": "constant", "level": 0.5, "peak_rps": 200.0}, rng)
        assert profile.rate(0.0) == pytest.approx(100.0)
        assert profile(1234.5) == pytest.approx(100.0)

    def test_compile_profile_requires_kind_and_peak(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            compile_profile({"peak_rps": 10.0}, rng)
        with pytest.raises(ValueError):
            compile_profile({"kind": "constant"}, rng)

    def test_service_load_trace_is_a_plane_driven_step(self):
        trace = ServiceLoadTrace()
        assert trace(0.0) == 0.0
        trace.level = 0.7
        assert trace(10.0) == trace(99999.0) == 0.7

    def test_traffic_spec_round_trips(self):
        spec = TrafficSpec(
            services=[
                ServiceSpec(
                    name="web",
                    profile={"kind": "constant", "level": 1.0, "peak_rps": 50.0},
                    autoscaling={"name": "target-utilization", "target": 0.7},
                ),
                ServiceSpec(name="batchy", initial_replicas=2),
            ],
            interval=5.0,
            autoscale_interval=30.0,
        )
        restored = TrafficSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.enabled
        assert restored.autoscaling_names() == {"web": "target-utilization"}

    def test_traffic_spec_rejects_duplicates_and_bad_policies(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrafficSpec(services=[ServiceSpec(name="a"), ServiceSpec(name="a")])
        with pytest.raises(ValueError):
            ServiceSpec(name="a", autoscaling={"name": "does-not-exist"})

    def test_scenario_spec_round_trips_traffic_section(self):
        spec = ScenarioSpec(
            name="with-traffic",
            duration=100.0,
            traffic={
                "services": [{"name": "web", "initial_replicas": 2}],
                "interval": 5.0,
            },
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert isinstance(restored.traffic, TrafficSpec)
        # Scenarios without traffic serialize it as null and stay equal too.
        plain = ScenarioSpec(name="plain", duration=50.0)
        assert plain.to_dict()["traffic"] is None
        assert ScenarioSpec.from_dict(plain.to_dict()) == plain


class TestAutoscalingPolicies:
    def test_registered_in_policy_registry(self):
        names = policy_names("autoscaling")
        assert "target-utilization" in names
        assert "latency-threshold" in names
        assert isinstance(
            make_policy("autoscaling", "target-utilization"), TargetUtilizationAutoscaling
        )
        assert isinstance(
            make_policy("autoscaling", "latency-threshold"), LatencyThresholdAutoscaling
        )

    def test_target_utilization_scales_to_demand(self):
        policy = TargetUtilizationAutoscaling(target=0.6, min_replicas=1, max_replicas=10)
        # demand = lam/mu = 3 Erlangs -> ceil(3 / 0.6) = 5 replicas.
        decision = policy.decide(snapshot(arrival_rate=300.0, replicas=2))
        assert decision == 5

    def test_target_utilization_clamps_to_bounds(self):
        policy = TargetUtilizationAutoscaling(target=0.5, min_replicas=2, max_replicas=4)
        assert policy.decide(snapshot(arrival_rate=0.0, replicas=3)) == 2
        assert policy.decide(snapshot(arrival_rate=10000.0, replicas=3)) == 4

    def test_target_utilization_shrinks_with_hysteresis(self):
        policy = TargetUtilizationAutoscaling(target=0.6, scale_in_headroom=0.25)
        # Provisioned 6, demand only needs 2: the conservative estimate
        # (25% headroom) limits the shrink rather than snapping to 2.
        decision = policy.decide(snapshot(arrival_rate=100.0, replicas=6))
        assert 2 <= decision < 6

    def test_latency_threshold_reacts_to_sla_breach(self):
        policy = LatencyThresholdAutoscaling(p99_target=0.25, step=2, max_replicas=8)
        assert policy.decide(snapshot(replicas=3, p99_latency=0.6)) == 5
        assert policy.decide(snapshot(replicas=3, p99_latency=0.1, dropped_ratio=0.2)) == 5

    def test_latency_threshold_scales_in_when_idle(self):
        policy = LatencyThresholdAutoscaling(
            p99_target=0.25, min_replicas=1, scale_in_utilization=0.3
        )
        assert policy.decide(snapshot(replicas=4, utilization=0.1, p99_latency=0.01)) == 3
        # Holds inside the comfort band.
        assert policy.decide(snapshot(replicas=4, utilization=0.5, p99_latency=0.1)) == 4


def small_traffic_spec(autoscaling=None, peak_rps=300.0, initial=2):
    service = {
        "name": "web",
        "profile": {"kind": "constant", "level": 1.0, "peak_rps": peak_rps},
        "initial_replicas": initial,
        "service_rate": 100.0,
    }
    if autoscaling is not None:
        service["autoscaling"] = autoscaling
    return ScenarioSpec(
        name="traffic-it",
        duration=600.0,
        local_controllers=6,
        group_managers=2,
        traffic={"services": [service], "interval": 10.0, "autoscale_interval": 30.0},
    )


class TestTrafficPlaneIntegration:
    def test_replicas_flow_through_ordinary_submission_path(self):
        result = run_scenario(small_traffic_spec(), seed=1)
        assert result.submissions["submitted"] == 2
        assert result.submissions["placed"] == 2
        traffic = result.traffic
        assert traffic["ticks"] == 60
        assert traffic["requests"]["offered"] == pytest.approx(300.0 * 600.0)
        web = traffic["services"]["web"]
        assert web["replicas_initial"] == web["replicas_final"] == 2
        assert web["autoscaling"] is None

    def test_overloaded_service_drops_and_reports(self):
        # 300 rps against one replica at 100 rps: ~2/3 of traffic dropped.
        result = run_scenario(small_traffic_spec(initial=1), seed=1)
        traffic = result.traffic
        assert traffic["requests"]["dropped_ratio"] > 0.6
        assert traffic["latency_seconds"]["p99"] > 0.0

    def test_autoscaler_scales_out_and_logs_events(self):
        spec = small_traffic_spec(
            autoscaling={"name": "target-utilization", "target": 0.6, "max_replicas": 8},
        )
        result = run_scenario(spec, seed=1)
        web = result.traffic["services"]["web"]
        # demand = 3 Erlangs at target 0.6 -> 5 replicas.
        assert web["replicas_final"] == 5
        assert web["scale_out_total"] == 3
        assert result.event_counts.get("scale_out", 0) >= 1
        assert result.policies["autoscaling"] == "target-utilization"

    def test_scale_in_terminates_via_lc_path(self):
        # Overprovisioned fleet with tiny demand: the autoscaler shrinks and
        # the terminations run through the LC terminate_vm command.
        spec = small_traffic_spec(
            autoscaling={"name": "target-utilization", "target": 0.6, "min_replicas": 1},
            peak_rps=50.0,
            initial=6,
        )
        result = run_scenario(spec, seed=1)
        web = result.traffic["services"]["web"]
        assert web["replicas_final"] < 6
        assert web["scale_in_total"] >= 1
        assert result.event_counts.get("scale_in", 0) >= 1
        assert result.event_counts.get("vm_terminated", 0) >= 1

    def test_demand_feedback_drives_host_load(self):
        # Same fleet, hot vs idle users: host utilization must differ because
        # replica CPU usage follows the offered traffic.
        hot = run_scenario(small_traffic_spec(peak_rps=190.0), seed=1)
        idle = run_scenario(small_traffic_spec(peak_rps=10.0), seed=1)
        assert hot.traffic["requests"]["offered"] > idle.traffic["requests"]["offered"]
        hot_energy = hot.energy["infrastructure_kwh"]
        idle_energy = idle.energy["infrastructure_kwh"]
        assert hot_energy > idle_energy

    def test_traffic_metrics_exported_to_obs(self):
        spec = small_traffic_spec()
        spec.config["observability"] = {"metrics": True}
        result = run_scenario(spec, seed=1)
        counters = result.observability["counters"]
        assert "traffic_requests_offered_total" in counters
        assert "traffic_requests_served_total" in counters
        gauges = result.observability["gauges"]
        assert "traffic_request_latency_p99_seconds" in gauges
        assert "traffic_service_replicas" in gauges

    def test_byte_identical_across_runs(self):
        spec = small_traffic_spec(
            autoscaling={"name": "latency-threshold", "p99_target": 0.1},
        )
        first = run_scenario(spec, seed=11).canonical_json()
        second = run_scenario(spec, seed=11).canonical_json()
        assert first == second
        assert run_scenario(spec, seed=12).canonical_json() != first


class TestCatalogAcceptance:
    def test_flash_crowd_autoscaling_beats_fixed_fleet(self):
        # The ISSUE acceptance bar: on a catalog scenario the autoscaled run
        # must report BOTH lower p99 and lower dropped ratio than the same
        # scenario with autoscaling stripped.
        on_spec = get_scenario("flash-crowd-autoscale")
        off_spec = get_scenario("flash-crowd-autoscale")
        off_spec.traffic.services[0].autoscaling = None
        on = run_scenario(on_spec, seed=7).traffic
        off = run_scenario(off_spec, seed=7).traffic
        assert on["latency_seconds"]["p99"] < off["latency_seconds"]["p99"]
        assert on["requests"]["dropped_ratio"] < off["requests"]["dropped_ratio"]
        web = on["services"]["frontpage"]
        assert web["replicas_peak"] > web["replicas_initial"]

    def test_diurnal_autoscaler_breathes_with_the_wave(self):
        result = run_scenario(get_scenario("diurnal-users-autoscale"), seed=7)
        web = result.traffic["services"]["web"]
        assert web["scale_out_total"] >= 1
        assert web["scale_in_total"] >= 1
        assert web["replicas_peak"] > web["replicas_initial"]

    def test_steady_users_baseline_has_no_scaling(self):
        result = run_scenario(get_scenario("steady-users-traffic"), seed=7)
        web = result.traffic["services"]["web"]
        assert web["scale_out_total"] == web["scale_in_total"] == 0
        assert result.traffic["requests"]["dropped_ratio"] == 0.0
