"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import PhysicalNode
from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.simulation.engine import Simulator
from repro.workloads import UniformDemandDistribution, consolidation_instance


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def small_instance(rng):
    """A small 2-D consolidation instance (12 VMs)."""
    return consolidation_instance(
        12,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


@pytest.fixture
def medium_instance(rng):
    """A medium 2-D consolidation instance (60 VMs)."""
    return consolidation_instance(
        60,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


def make_vm(cpu=0.25, memory=0.25, network=0.1, **kwargs) -> VirtualMachine:
    """Helper constructing a VM with a simple demand vector."""
    return VirtualMachine(ResourceVector([cpu, memory, network], DEFAULT_DIMENSIONS), **kwargs)


def make_node(node_id="node-0", cpu=1.0, memory=1.0, network=1.0) -> PhysicalNode:
    """Helper constructing a unit-capacity physical node."""
    return PhysicalNode(node_id, capacity=ResourceVector([cpu, memory, network], DEFAULT_DIMENSIONS))


@pytest.fixture
def small_system() -> SnoozeSystem:
    """A started 6-LC / 2-GM Snooze deployment (shared by hierarchy tests)."""
    system = SnoozeSystem(
        SystemSpec(local_controllers=6, group_managers=2, entry_points=1),
        config=HierarchyConfig(seed=7),
        seed=7,
    )
    system.start()
    return system
