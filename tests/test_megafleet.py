"""Tests for the sharded lockstep megafleet engine and its catalog.

The load-bearing property is the sweeps/colonies determinism discipline at
fleet scale: a run's canonical JSON must be byte-identical for ANY shard and
jobs count, because randomness is spawned per group before the fan-out and
inter-shard messages only flow at epoch boundaries.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli.main import main
from repro.megafleet import (
    MegafleetSpec,
    ShardedFleetSimulator,
    get_megafleet,
    megafleet_names,
    run_megafleet,
)


def tiny_spec(**overrides) -> MegafleetSpec:
    """A seconds-fast fleet derived from the smoke-test catalog entry."""
    base = dataclasses.replace(
        get_megafleet("megafleet-1k"),
        local_controllers=120,
        group_managers=6,
        duration=60.0,
        arrivals_per_epoch=25.0,
        vm_lifetime_mean=40.0,
    )
    return dataclasses.replace(base, **overrides) if overrides else base


class TestCatalog:
    def test_roadmap_fleets_registered(self):
        names = megafleet_names()
        assert "megafleet-10k" in names
        assert "megafleet-100k" in names
        assert get_megafleet("megafleet-100k").local_controllers == 100_000

    def test_unknown_fleet_raises(self):
        with pytest.raises(KeyError, match="unknown megafleet"):
            get_megafleet("megafleet-1e9")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="at least one LC"):
            tiny_spec(local_controllers=2, group_managers=6)
        with pytest.raises(ValueError, match="positive epoch"):
            tiny_spec(duration=1.0, epoch=10.0)
        with pytest.raises(ValueError, match="match dimensions"):
            tiny_spec(node_capacity=(1.0,))

    def test_group_sizes_cover_fleet(self):
        spec = tiny_spec(local_controllers=121)
        sizes = spec.group_sizes()
        assert sum(sizes) == 121
        assert max(sizes) - min(sizes) <= 1

    def test_spec_round_trips_to_json(self):
        payload = json.loads(json.dumps(tiny_spec().to_dict()))
        assert payload["local_controllers"] == 120
        assert payload["dimensions"] == ["cpu", "memory", "network"]


class TestDeterminism:
    def test_byte_identical_across_shard_counts(self):
        spec = tiny_spec()
        reference = ShardedFleetSimulator(spec, seed=11).run(shards=1).canonical_json()
        for shards in (2, 3, 6, 32):  # 32 > group count: clamped, still identical
            assert (
                ShardedFleetSimulator(spec, seed=11).run(shards=shards).canonical_json()
                == reference
            )

    def test_byte_identical_across_jobs(self):
        spec = tiny_spec()
        serial = ShardedFleetSimulator(spec, seed=11).run(shards=4, jobs=1)
        pooled = ShardedFleetSimulator(spec, seed=11).run(shards=4, jobs=2)
        assert pooled.canonical_json() == serial.canonical_json()

    def test_seed_changes_the_run(self):
        spec = tiny_spec()
        a = ShardedFleetSimulator(spec, seed=1).run().canonical_json()
        b = ShardedFleetSimulator(spec, seed=2).run().canonical_json()
        assert a != b

    def test_wall_clock_excluded_from_canonical_payload(self):
        result = ShardedFleetSimulator(tiny_spec(), seed=3).run()
        assert result.wall_seconds > 0
        assert "wall" not in result.canonical_json()


class TestSemantics:
    def test_totals_are_consistent(self):
        result = ShardedFleetSimulator(tiny_spec(), seed=5).run(shards=3)
        totals = result.totals
        assert totals["epochs"] == tiny_spec().n_epochs
        assert totals["placements"] > 0
        # Every placed VM either departed or is still running.
        assert totals["vms_running"] == totals["placements"] - totals["departures"]
        # Events count at least the per-LC monitoring rows of every epoch.
        assert totals["events"] >= 120 * totals["epochs"]

    def test_dispatch_spreads_over_groups(self):
        result = ShardedFleetSimulator(tiny_spec(), seed=5).run()
        placed_groups = [g for g in result.per_group if g["placements"] > 0]
        assert len(placed_groups) > 1

    def test_capacity_never_oversubscribed(self):
        result = ShardedFleetSimulator(tiny_spec(arrivals_per_epoch=200.0), seed=9).run()
        for group in result.per_group:
            assert group["free_cpu"] >= 0.0

    def test_run_megafleet_duration_override(self):
        result = run_megafleet("megafleet-1k", seed=1, shards=4, duration=30.0)
        assert result.totals["epochs"] == 3
        assert result.spec.name == "megafleet-1k"


class TestCli:
    def test_megafleet_list(self, capsys):
        assert main(["megafleet", "list"]) == 0
        out = capsys.readouterr().out
        assert "megafleet-100k" in out

    def test_megafleet_run_json_matches_engine(self, capsys):
        args = ["megafleet", "run", "megafleet-1k", "--seed", "4", "--duration", "30",
                "--shards", "3", "--json"]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        direct = run_megafleet("megafleet-1k", seed=4, shards=1, duration=30.0)
        assert payload["totals"] == direct.totals
