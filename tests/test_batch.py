"""Tests for the coalesced event machinery (repro.simulation.batch).

The contract under test everywhere: coalescing changes the *event count*,
never the simulated times, the firing order, or the observable behaviour.
"""

from __future__ import annotations

import pytest

from repro.simulation.batch import CoalescedTicker, DeadlineTable
from repro.simulation.engine import SimulationError
from repro.simulation.timers import PeriodicTimer, Timeout


class TestCoalescedTicker:
    def test_members_fire_at_timer_equivalent_times(self, sim):
        ticker = CoalescedTicker(sim)
        coalesced_times, timer_times = [], []
        ticker.register(2.0, lambda: coalesced_times.append(sim.now))
        PeriodicTimer(sim, 2.0, lambda: timer_times.append(sim.now))
        sim.run(until=10.0)
        assert coalesced_times == timer_times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_same_instant_registrations_share_one_group_and_fire_in_order(self, sim):
        ticker = CoalescedTicker(sim)
        fired = []
        for index in range(5):
            ticker.register(1.0, lambda index=index: fired.append(index))
        assert ticker.group_count() == 1
        sim.run(until=1.0)
        assert fired == [0, 1, 2, 3, 4]

    def test_later_registration_gets_its_own_group(self, sim):
        ticker = CoalescedTicker(sim)
        fired = []
        ticker.register(2.0, lambda: fired.append(("grid", sim.now)))
        sim.run(until=1.0)
        ticker.register(2.0, lambda: fired.append(("offset", sim.now)))
        assert ticker.group_count() == 2
        sim.run(until=4.0)
        assert fired == [("grid", 2.0), ("offset", 3.0), ("grid", 4.0)]

    def test_phases_run_breadth_first(self, sim):
        ticker = CoalescedTicker(sim)
        order = []
        ticker.register(1.0, lambda: order.append("a1"), lambda: order.append("a2"))
        ticker.register(1.0, lambda: order.append("b1"), lambda: order.append("b2"))
        sim.run(until=1.0)
        assert order == ["a1", "b1", "a2", "b2"]

    def test_stopped_member_no_longer_fires(self, sim):
        ticker = CoalescedTicker(sim)
        fired = []
        keep = ticker.register(1.0, lambda: fired.append("keep"))
        drop = ticker.register(1.0, lambda: fired.append("drop"))
        sim.run(until=1.0)
        drop.stop()
        assert not drop.running and keep.running
        sim.run(until=2.0)
        assert fired == ["keep", "drop", "keep"]

    def test_empty_group_unwinds(self, sim):
        ticker = CoalescedTicker(sim)
        handle = ticker.register(1.0, lambda: None)
        handle.stop()
        sim.run(until=2.0)
        assert ticker.group_count() == 0
        assert ticker.member_count() == 0

    def test_invalid_registrations_rejected(self, sim):
        ticker = CoalescedTicker(sim)
        with pytest.raises(SimulationError):
            ticker.register(0.0, lambda: None)
        with pytest.raises(SimulationError):
            ticker.register(1.0)

    def test_shared_returns_one_instance_per_sim(self, sim):
        assert CoalescedTicker.shared(sim) is CoalescedTicker.shared(sim)

    def test_fired_count_tracks_ticks(self, sim):
        ticker = CoalescedTicker(sim)
        handle = ticker.register(1.0, lambda: None)
        sim.run(until=3.0)
        assert handle.fired_count == 3


class TestDeadlineTable:
    def test_expires_at_exactly_timeout_equivalent_time(self, sim):
        table = DeadlineTable(sim)
        fired = []
        table.arm(5.0, lambda: fired.append(("table", sim.now)))
        Timeout(sim, 5.0, lambda: fired.append(("timeout", sim.now)))
        sim.run(until=10.0)
        assert fired == [("table", 5.0), ("timeout", 5.0)]

    def test_restart_pushes_the_deadline_back(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handle = table.arm(4.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        handle.restart()
        sim.run(until=10.0)
        assert fired == [6.0]

    def test_repeated_restarts_are_lazy_but_exact(self, sim):
        """The classic failure-detector pattern: heartbeats keep the deadline away."""
        table = DeadlineTable(sim)
        fired = []
        handle = table.arm(3.0, lambda: fired.append(sim.now))
        heartbeat = PeriodicTimer(sim, 1.0, handle.restart)
        sim.run(until=20.0)
        assert fired == []
        heartbeat.stop()
        sim.run(until=30.0)
        assert fired == [23.0]  # last restart at t=20 + 3s deadline

    def test_cancel_disarms(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handle = table.arm(2.0, lambda: fired.append(sim.now))
        handle.cancel()
        assert not handle.armed
        sim.run(until=5.0)
        assert fired == []
        handle.restart()
        sim.run(until=10.0)
        assert fired == [7.0]

    def test_equal_deadlines_fire_in_restart_order(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handles = [
            table.arm(3.0, lambda name=name: fired.append(name)) for name in "abc"
        ]
        sim.run(until=1.0)
        # Restart in reverse order: expiry order must follow restarts, not arming.
        for name, handle in zip("cba", reversed(handles)):
            handle.restart()
        sim.run(until=10.0)
        assert fired == ["c", "b", "a"]

    def test_restart_with_new_duration(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handle = table.arm(2.0, lambda: fired.append(sim.now))
        handle.restart(7.0)
        sim.run(until=10.0)
        assert fired == [7.0]
        with pytest.raises(SimulationError):
            handle.restart(0.0)

    def test_expiry_callback_can_rearm_other_entries(self, sim):
        table = DeadlineTable(sim)
        fired = []
        def fired_second():
            fired.append(("second", sim.now))

        table.arm(2.0, lambda: (fired.append(("first", sim.now)), second.restart(5.0)))
        second = table.arm(2.0, fired_second)
        sim.run(until=10.0)
        assert fired == [("first", 2.0), ("second", 7.0)]

    def test_release_recycles_entries_and_inerts_handles(self, sim):
        table = DeadlineTable(sim)
        handle = table.arm(2.0, lambda: None)
        table.release(handle)
        assert not handle.armed
        with pytest.raises(SimulationError):
            handle.restart()
        replacement = table.arm(1.0, lambda: None)
        assert replacement.armed
        sim.run(until=5.0)
        assert replacement.expired

    def test_release_recycles_entries_so_churn_does_not_grow_the_table(self, sim):
        """The fail/rejoin pattern: discard + re-arm must reuse one entry."""
        table = DeadlineTable(sim)
        for _ in range(500):
            handle = table.arm(5.0, lambda: None)
            handle.release()
        assert len(table) == 0
        assert len(table._durations) <= 32  # never grew past the initial block

    def test_grows_past_initial_capacity(self, sim):
        table = DeadlineTable(sim)
        handles = [table.arm(1000.0, lambda: None) for _ in range(100)]
        assert len(table) == 100
        assert all(handle.armed for handle in handles)
        assert table.next_deadline() == 1000.0

    def test_invalid_duration_rejected(self, sim):
        table = DeadlineTable(sim)
        with pytest.raises(SimulationError):
            table.arm(0.0, lambda: None)

    def test_shared_tables_are_named_singletons(self, sim):
        assert DeadlineTable.shared(sim, "a") is DeadlineTable.shared(sim, "a")
        assert DeadlineTable.shared(sim, "a") is not DeadlineTable.shared(sim, "b")

    def test_one_pending_event_for_many_armed_entries(self, sim):
        table = DeadlineTable(sim)
        for _ in range(50):
            table.arm(5.0, lambda: None)
        # 50 failure detectors, one scheduled simulator event.
        assert len(sim) == 1


class TestVectorizedRestarts:
    """Publish-time batch restarts: the heartbeat fan-out / lease fast paths."""

    def test_restart_handles_matches_per_entry_restarts(self, sim):
        table, mirror = DeadlineTable(sim), DeadlineTable(sim)
        fired, mirrored = [], []
        handles = [table.arm(5.0, lambda i=i: fired.append((i, sim.now))) for i in range(4)]
        twins = [mirror.arm(5.0, lambda i=i: mirrored.append((i, sim.now))) for i in range(4)]
        sim.run(until=2.0)
        # One vectorized call == four per-entry restarts with the clock at 2.0.
        table.restart_handles(handles, sim.now)
        for twin in twins:
            twin.restart()
        sim.run(until=20.0)
        assert fired == mirrored == [(i, 7.0) for i in range(4)]

    def test_restart_handles_sets_base_plus_duration(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handles = [table.arm(5.0, lambda i=i: fired.append(i)) for i in range(3)]
        sim.run(until=1.0)
        table.restart_handles(handles, 2.5)  # deadlines at 7.5, not 6.0
        sim.run(until=6.9)
        assert fired == []
        sim.run(until=7.5)
        assert fired == [0, 1, 2]

    def test_restart_handles_fires_in_sequence_order(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handles = [table.arm(4.0, lambda i=i: fired.append(i)) for i in range(4)]
        table.restart_handles(list(reversed(handles)), 1.0)
        sim.run(until=10.0)
        # Equal deadlines fire in restart order: the reversed sequence.
        assert fired == [3, 2, 1, 0]

    def test_restart_handles_skips_released_handles(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handles = [table.arm(4.0, lambda i=i: fired.append(i)) for i in range(3)]
        handles[1].release()
        recycled = table.arm(100.0, lambda: fired.append("recycled"))
        assert recycled.index == handles[1].index  # entry reused
        table.restart_handles(handles, 1.0)
        sim.run(until=10.0)
        # The stale handle neither fires nor disturbs the recycled entry.
        assert fired == [0, 2]
        assert recycled.armed

    def test_restart_later_is_a_future_based_restart(self, sim):
        table = DeadlineTable(sim)
        fired = []
        handle = table.arm(5.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        handle.restart_later(3.0)  # delivery-time restart: fires at 8.0
        sim.run(until=20.0)
        assert fired == [8.0]

    def test_restart_later_on_released_handle_is_a_noop(self, sim):
        table = DeadlineTable(sim)
        handle = table.arm(5.0, lambda: None)
        handle.release()
        handle.restart_later(1.0)  # must not raise, must not re-arm
        assert not handle.armed
