"""Tests for the sweep engine: spec expansion, executors, reports, catalog."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenarios import get_scenario
from repro.simulation.randomness import derive_run_seeds, spawn_generator
from repro.sweeps import (
    MultiprocessExecutor,
    RunSpec,
    SerialExecutor,
    SweepReport,
    SweepSpec,
    execute_run,
    get_sweep,
    iter_sweeps,
    make_executor,
    run_sweep,
    sweep_names,
)
from repro.sweeps.report import KEY_COLUMNS, METRIC_COLUMNS


def _tiny_sweep(**overrides) -> SweepSpec:
    """A 2-scenario x 2-policy grid small enough for sub-second runs."""
    base = dict(
        name="tiny",
        scenarios=["steady-churn", "flash-crowd"],
        policies=[{}, {"placement": {"name": "best-fit"}}],
        seeds=[7],
        duration=300.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


# ----------------------------------------------------------------------- spec
class TestSweepSpec:
    def test_round_trips_through_json(self):
        spec = _tiny_sweep(
            thresholds=[None, {"underload": 0.3, "overload": 0.8}],
            config={"monitoring_interval": 30.0},
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert SweepSpec.from_dict(data).to_dict() == spec.to_dict()

    def test_expand_is_the_full_cross_product_in_order(self):
        spec = _tiny_sweep(
            thresholds=[None, {"underload": 0.3, "overload": 0.8}], seeds=[1, 2]
        )
        runs = spec.expand()
        assert len(runs) == spec.total_runs() == 2 * 2 * 2 * 2
        assert [run.index for run in runs] == list(range(16))
        # Scenario is the outermost axis, seed the innermost.
        assert [run.scenario for run in runs[:8]] == ["steady-churn"] * 8
        assert [run.seed for run in runs[:4]] == [1, 2, 1, 2]

    def test_unknown_scenario_rejected_with_suggestions(self):
        with pytest.raises(ValueError, match="unknown scenario.*available"):
            _tiny_sweep(scenarios=["no-such-scenario"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            _tiny_sweep(policies=[{"placement": {"name": "bogus"}}])

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError, match="underload"):
            _tiny_sweep(thresholds=[{"underload": 0.9, "overload": 0.2}])
        with pytest.raises(ValueError, match="needs"):
            _tiny_sweep(thresholds=[{"underload": 0.2}])
        with pytest.raises(ValueError, match="unknown thresholds key"):
            _tiny_sweep(
                thresholds=[{"underload": 0.2, "overload": 0.8, "overlad": 0.9}]
            )

    def test_threshold_values_normalized_to_floats(self):
        # JSON may deliver numbers as strings; they must never survive to the
        # report/label layer as non-numeric values.
        spec = _tiny_sweep(thresholds=[{"underload": "0.3", "overload": "0.8"}])
        assert spec.thresholds == [{"underload": 0.3, "overload": 0.8}]
        from repro.sweeps import thresholds_label

        assert thresholds_label(spec.expand()[0].thresholds) == "0.3/0.8"

    def test_policy_cell_labels_distinguish_parameters(self):
        from repro.sweeps import policy_cell_label

        small = {"reconfiguration": {"name": "aco", "n_ants": 4}}
        large = {"reconfiguration": {"name": "aco", "n_ants": 16}}
        assert policy_cell_label(small) != policy_cell_label(large)
        assert policy_cell_label(small) == "reconfiguration=aco[n_ants=4]"
        assert policy_cell_label({}) == "defaults"
        # Parameter-differing cells must land in distinct aggregate groups.
        report = run_sweep(
            _tiny_sweep(scenarios=["steady-churn"], policies=[small, large]), jobs=1
        )
        assert len(report.aggregates()) == 2

    def test_duration_override_must_keep_timeline_events(self):
        with pytest.raises(ValueError, match="timeline"):
            _tiny_sweep(scenarios=["rolling-node-failures"], duration=300.0)

    def test_run_spec_round_trips(self):
        run = _tiny_sweep().expand()[1]
        assert RunSpec.from_dict(json.loads(json.dumps(run.to_dict()))) == run

    def test_build_scenario_spec_merges_overrides(self):
        spec = _tiny_sweep(
            thresholds=[{"underload": 0.3, "overload": 0.8}],
            config={"monitoring_interval": 45.0},
        )
        run = spec.expand()[1]  # steady-churn, best-fit cell
        scenario = run.build_scenario_spec()
        assert scenario.policies["placement"]["name"] == "best-fit"
        assert scenario.config["thresholds"] == {"underload": 0.3, "overload": 0.8}
        assert scenario.config["monitoring_interval"] == 45.0
        # The underlying catalog entry is untouched.
        assert "thresholds" not in get_scenario("steady-churn").config

    def test_bare_same_name_cell_keeps_scenario_tuned_params(self):
        # aco-consolidation-cycle tunes its aco reconfiguration policy; a
        # bare {"name": "aco"} cell (what `sweep run --policy` produces) must
        # keep those parameters, while a cell with params replaces them.
        tuned = get_scenario("aco-consolidation-cycle").policies["reconfiguration"]
        assert tuned.get("n_ants") == 6
        spec = SweepSpec(
            name="bare",
            scenarios=["aco-consolidation-cycle"],
            policies=[
                {"reconfiguration": {"name": "aco"}},
                {"reconfiguration": {"name": "aco", "n_ants": 2, "n_cycles": 3}},
            ],
        )
        bare, explicit = (run.build_scenario_spec() for run in spec.expand())
        assert bare.policies["reconfiguration"] == tuned
        assert explicit.policies["reconfiguration"] == {
            "name": "aco",
            "n_ants": 2,
            "n_cycles": 3,
        }


# ----------------------------------------------------------- seed derivation
class TestRunSeedDerivation:
    def test_replicates_use_seedsequence_spawn_not_seed_arithmetic(self):
        seeds = derive_run_seeds(123, 5)
        assert len(seeds) == len(set(seeds)) == 5
        # Regression: the historical hazard was seed+i enumeration.
        assert seeds != [123 + i for i in range(5)]
        expected = [
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in np.random.SeedSequence(123).spawn(5)
        ]
        assert seeds == expected

    def test_derivation_is_deterministic_and_prefix_stable(self):
        assert derive_run_seeds(9, 4) == derive_run_seeds(9, 4)
        assert derive_run_seeds(9, 4)[:2] == derive_run_seeds(9, 2)

    def test_spawned_streams_are_decorrelated(self):
        seeds = derive_run_seeds(0, 2)
        a = np.random.default_rng(seeds[0]).random(512)
        b = np.random.default_rng(seeds[1]).random(512)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.2

    def test_spawn_generator_differs_from_base_stream(self):
        base = np.random.default_rng(5).random(8)
        child = spawn_generator(5, 1).random(8)
        assert not np.allclose(base, child)

    def test_sweep_spec_replicates_axis_is_spawn_derived(self):
        spec = _tiny_sweep(replicates=3, base_seed=42)
        assert spec.resolved_seeds() == derive_run_seeds(42, 3)
        assert {run.base_seed for run in spec.expand()} == {42}


# ------------------------------------------------------------------ executors
class TestExecutors:
    def test_make_executor_selects_backend(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), MultiprocessExecutor)
        with pytest.raises(ValueError):
            make_executor(0)

    def test_failure_is_isolated_to_its_run(self):
        spec = _tiny_sweep()
        payloads = [run.to_dict() for run in spec.expand()[:2]]
        payloads[0] = {**payloads[0], "scenario": "does-not-exist"}
        outcomes = SerialExecutor().map(payloads)
        assert outcomes[0]["status"] == "failed"
        assert "does-not-exist" in outcomes[0]["error"]
        assert outcomes[1]["status"] == "ok"

    def test_execute_run_never_raises_on_bad_payload(self):
        outcome = execute_run({"index": 0})  # missing required keys
        assert outcome["status"] == "failed"
        assert outcome["error"]

    def test_serial_and_parallel_reports_are_byte_identical(self):
        spec = _tiny_sweep()
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert serial.failed == parallel.failed == 0
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()

    def test_chunked_pool_outcomes_identical_to_unchunked(self):
        spec = _tiny_sweep()
        unchunked = run_sweep(spec, executor=MultiprocessExecutor(jobs=2))
        chunked = run_sweep(spec, executor=MultiprocessExecutor(jobs=2, chunksize=3))
        assert unchunked.to_json() == chunked.to_json()
        with pytest.raises(ValueError, match="chunksize"):
            MultiprocessExecutor(jobs=2, chunksize=0)

    def test_failed_outcome_carries_truncated_traceback(self):
        from repro.sweeps.executor import TRACEBACK_LIMIT_CHARS

        outcome = execute_run({"index": 0})  # missing required keys
        assert outcome["status"] == "failed"
        assert "Traceback" in outcome["traceback"]
        assert len(outcome["traceback"]) <= TRACEBACK_LIMIT_CHARS + 64
        ok = execute_run(_tiny_sweep().expand()[0].to_dict())
        assert ok["status"] == "ok" and ok["traceback"] is None

    def test_traceback_excluded_from_canonical_report(self):
        spec = _tiny_sweep()
        payloads = [run.to_dict() for run in spec.expand()]
        payloads[0] = {**payloads[0], "scenario": "does-not-exist"}
        outcomes = SerialExecutor().map(payloads)
        assert outcomes[0]["traceback"]  # present on the wire...
        report = SweepReport.from_outcomes(spec, outcomes)
        # ...but never in the canonical serializations: tracebacks vary by
        # Python version and filesystem layout, reports must not.
        assert "traceback" not in report.to_json()
        assert "Traceback" not in report.to_csv()


# -------------------------------------------------------------------- report
class TestSweepReport:
    @pytest.fixture(scope="class")
    def report(self) -> SweepReport:
        return run_sweep(_tiny_sweep(), jobs=1)

    def test_report_shape(self, report):
        assert report.total_runs == 4
        assert report.failed == 0
        data = report.to_dict()
        assert data["sweep"] == "tiny"
        assert len(data["runs"]) == 4
        assert {run["policies"] for run in data["runs"]} == {
            "defaults",
            "placement=best-fit",
        }
        for run in data["runs"]:
            assert set(METRIC_COLUMNS) <= set(run["metrics"])
            assert run["resolved_policies"]["placement"] in {"first-fit", "best-fit"}

    def test_report_json_has_no_wall_clock(self, report):
        assert "wall" not in report.to_json()
        assert report.timing["jobs"] == 1
        assert len(report.timing["run_wall_seconds"]) == 4

    def test_aggregates_group_over_seeds(self):
        report = run_sweep(_tiny_sweep(scenarios=["steady-churn"], seeds=[1, 2]), jobs=1)
        groups = report.aggregates()
        assert len(groups) == 2  # one per policy cell
        for group in groups:
            assert group["runs"] == 2
            energy = group["metrics"]["energy_kwh"]
            assert energy["min"] <= energy["mean"] <= energy["max"]

    def test_csv_layout(self, report):
        lines = report.to_csv().splitlines()
        assert lines[0] == ",".join(KEY_COLUMNS + METRIC_COLUMNS)
        assert len(lines) == 1 + report.total_runs

    def test_incomplete_failed_payload_degrades_to_failed_row(self):
        spec = _tiny_sweep()
        outcome = execute_run({"index": 0})  # junk payload, isolated failure
        report = SweepReport.from_outcomes(spec, [outcome])
        assert report.failed == 1
        assert report.runs[0]["scenario"] == "?"
        assert report.to_json()  # aggregation and serialization survive

    def test_partial_payload_labels_never_crash_report(self):
        from repro.sweeps import policy_cell_label, thresholds_label

        # Partial thresholds / nameless policy entries render placeholders.
        assert thresholds_label({"overload": 0.8}) == "?/0.8"
        assert policy_cell_label({"placement": {}}) == "placement=?"
        # Non-dict junk (possible in a failed run's payload) must not raise.
        assert policy_cell_label({"placement": "best-fit"}) == "placement='best-fit'"
        assert thresholds_label("bogus") == "bogus"
        spec = _tiny_sweep()
        outcome = execute_run(
            {
                "index": 0,
                "scenario": "steady-churn",
                "policies": {},
                "thresholds": {"overload": 0.8},
                "base_seed": 0,
                "seed": 0,
            }
        )
        report = SweepReport.from_outcomes(spec, [outcome])
        assert report.to_json()

    def test_failed_runs_are_reported_with_errors(self):
        spec = _tiny_sweep()
        payloads = [run.to_dict() for run in spec.expand()]
        payloads[1] = {**payloads[1], "scenario": "broken"}
        outcomes = SerialExecutor().map(payloads)
        report = SweepReport.from_outcomes(spec, outcomes)
        assert report.failed == 1
        assert report.failures()[0]["error"]
        assert report.to_csv().count("failed") == 1


# ------------------------------------------------------------ Pareto analysis
class TestParetoAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self) -> dict:
        report = run_sweep(_tiny_sweep(), jobs=1)
        return report.pareto()

    def test_every_scenario_has_a_front_of_rank_one_cells(self, analysis):
        from repro.sweeps import PARETO_OBJECTIVES

        assert analysis["objectives"] == list(PARETO_OBJECTIVES)
        assert set(analysis["scenarios"]) == {"steady-churn", "flash-crowd"}
        for entry in analysis["scenarios"].values():
            assert entry["front"]
            assert {cell["rank"] for cell in entry["cells"]} >= {1}
            front_labels = {(c["policies"], c["thresholds"]) for c in entry["front"]}
            rank_one = {
                (c["policies"], c["thresholds"])
                for c in entry["cells"]
                if c["rank"] == 1
            }
            assert front_labels == rank_one

    def test_no_front_member_is_dominated_by_any_cell(self, analysis):
        from repro.sweeps.report import dominates

        objectives = analysis["objectives"]
        for entry in analysis["scenarios"].values():
            vectors = [
                [c["objectives"][name] for name in objectives]
                for c in entry["cells"]
                if c["rank"] is not None
            ]
            for front_cell in entry["front"]:
                front_vector = [front_cell["objectives"][name] for name in objectives]
                assert not any(dominates(v, front_vector) for v in vectors)

    def test_analysis_is_deterministic_and_serializable(self, analysis):
        from repro.sweeps.report import pareto_csv, pareto_json

        report = run_sweep(_tiny_sweep(), jobs=2)
        assert pareto_json(report.pareto()) == pareto_json(analysis)
        lines = pareto_csv(analysis).splitlines()
        assert lines[0] == "scenario,policies,thresholds,rank," + ",".join(
            analysis["objectives"]
        )
        assert len(lines) == 1 + sum(
            len(entry["cells"]) for entry in analysis["scenarios"].values()
        )

    def test_unknown_objective_and_junk_report_rejected(self):
        from repro.sweeps.report import analyze_report

        report = run_sweep(_tiny_sweep(scenarios=["steady-churn"]), jobs=1)
        with pytest.raises(ValueError, match="unknown objective"):
            analyze_report(report.to_dict(), objectives=["bogus"])
        with pytest.raises(ValueError, match="at least one objective"):
            analyze_report(report.to_dict(), objectives=[])
        with pytest.raises(ValueError, match="not a sweep report"):
            analyze_report({"hello": "world"})

    def test_all_failed_cell_is_unranked_and_off_the_front(self):
        from repro.sweeps.report import analyze_report

        spec = _tiny_sweep(scenarios=["steady-churn"])
        payloads = [run.to_dict() for run in spec.expand()]
        # Fail the second policy cell while keeping its scenario/policies
        # labels intact, so the failed group stays inside steady-churn.
        payloads[1] = {**payloads[1], "policies": {"placement": {"name": "bogus"}}}
        report = SweepReport.from_outcomes(spec, SerialExecutor().map(payloads))
        analysis = analyze_report(report.to_dict())
        cells = analysis["scenarios"]["steady-churn"]["cells"]
        unranked = [c for c in cells if c["rank"] is None]
        assert len(unranked) == 1 and unranked[0]["failed"] == 1
        assert cells[-1] is unranked[0]  # unranked cells sort last
        front = analysis["scenarios"]["steady-churn"]["front"]
        assert all(c["policies"] != unranked[0]["policies"] for c in front)

    def test_pareto_ranks_properties(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.sweeps.report import dominates, pareto_ranks

        vector = st.lists(
            st.integers(min_value=0, max_value=4), min_size=3, max_size=3
        )

        @settings(max_examples=200, deadline=None)
        @given(st.lists(vector, min_size=1, max_size=12))
        def check(vectors):
            ranks = pareto_ranks(vectors)
            assert len(ranks) == len(vectors)
            assert min(ranks) == 1
            for i, rank in enumerate(ranks):
                # Front members are dominated by nothing at all.
                if rank == 1:
                    assert not any(
                        dominates(v, vectors[i]) for j, v in enumerate(vectors) if j != i
                    )
                else:
                    # Peeling invariant: a rank-r cell is dominated by some
                    # rank-(r-1) cell and by nothing of rank >= r.
                    assert any(
                        dominates(vectors[j], vectors[i])
                        for j in range(len(vectors))
                        if ranks[j] == rank - 1
                    )
                    assert not any(
                        dominates(vectors[j], vectors[i])
                        for j in range(len(vectors))
                        if ranks[j] >= rank
                    )
            # Order-independence: reversing the input permutes the ranks.
            assert pareto_ranks(vectors[::-1]) == ranks[::-1]
            # Equal vectors always share a rank.
            for i, a in enumerate(vectors):
                for j, b in enumerate(vectors):
                    if a == b:
                        assert ranks[i] == ranks[j]

        check()

    def test_truncated_traceback_helper_bounds_length(self):
        from repro.sweeps.executor import TRACEBACK_LIMIT_CHARS, _truncated_traceback

        try:
            raise ValueError("x" * (3 * TRACEBACK_LIMIT_CHARS))
        except ValueError:
            text = _truncated_traceback()
        assert text.startswith("... [truncated] ...")
        assert len(text) <= TRACEBACK_LIMIT_CHARS + 32
        assert text.endswith("x" * 100 + "\n")


# ------------------------------------------------------------------- catalog
class TestSweepCatalog:
    def test_expected_entries_present(self):
        assert {"smoke-2x2", "paper-e5-grid", "policy-matrix"} <= set(sweep_names())

    def test_every_entry_is_valid_and_round_trips(self):
        for spec in iter_sweeps():
            assert spec.total_runs() > 0
            assert SweepSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_policy_matrix_crosses_the_registries(self):
        from repro.policies import policy_names

        spec = get_sweep("policy-matrix")
        placements = {cell["placement"]["name"] for cell in spec.policies}
        reconfigurations = {cell["reconfiguration"]["name"] for cell in spec.policies}
        assert placements == set(policy_names("placement"))
        assert reconfigurations == set(policy_names("reconfiguration"))

    def test_unknown_sweep_lists_alternatives(self):
        with pytest.raises(KeyError, match="available"):
            get_sweep("missing")
