"""Tests for metrics: event log, time series, recorder and report tables."""

from __future__ import annotations

import pytest

from repro.metrics.recorder import EventLog, TimeSeries, TimeSeriesRecorder
from repro.metrics.report import ComparisonTable, format_table


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record(1.0, "failure", component="gm-0")
        log.record(2.0, "failure", component="lc-1")
        log.record(3.0, "election", winner="gm-1")
        assert len(log) == 3
        assert log.count("failure") == 2
        assert log.categories() == ["election", "failure"]
        assert log.events("election")[0].details["winner"] == "gm-1"

    def test_empty_log(self):
        log = EventLog()
        assert len(log) == 0
        assert log.count() == 0
        assert log.count("anything") == 0
        assert log.categories() == []
        assert log.events() == []

    def test_events_returns_copies_of_list(self):
        log = EventLog()
        log.record(0.0, "x")
        events = log.events()
        events.clear()
        assert len(log) == 1


class TestTimeSeries:
    def test_append_and_stats(self):
        series = TimeSeries("hosts")
        for t, v in [(0.0, 4.0), (10.0, 6.0), (20.0, 2.0)]:
            series.append(t, v)
        assert len(series) == 3
        assert series.latest() == 2.0
        assert series.mean() == pytest.approx(4.0)
        assert series.min() == 2.0
        assert series.max() == 6.0

    def test_empty_history_statistics_are_zero_or_none(self):
        series = TimeSeries("empty")
        assert len(series) == 0
        assert series.latest() is None
        assert series.mean() == 0.0
        assert series.min() == 0.0
        assert series.max() == 0.0
        assert series.time_weighted_mean() == 0.0
        assert series.integral() == 0.0

    def test_single_sample_statistics(self):
        series = TimeSeries("one")
        series.append(5.0, 42.0)
        assert series.latest() == 42.0
        assert series.mean() == 42.0
        assert series.time_weighted_mean() == 42.0  # no duration: plain mean
        assert series.integral() == 0.0

    def test_constant_trace_time_weighted_mean_is_the_constant(self):
        series = TimeSeries("flat")
        for time in (0.0, 10.0, 25.0, 100.0):  # uneven spacing must not matter
            series.append(time, 7.5)
        assert series.time_weighted_mean() == pytest.approx(7.5)
        assert series.integral() == pytest.approx(7.5 * 100.0)

    def test_equal_timestamps_are_allowed(self):
        series = TimeSeries("dense")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)  # same instant: allowed (zero-duration step)
        assert series.time_weighted_mean() == pytest.approx(1.5)  # degenerate: plain mean

    def test_non_monotonic_time_rejected(self):
        series = TimeSeries("x")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.append(4.0, 1.0)

    def test_time_weighted_mean(self):
        series = TimeSeries("power")
        series.append(0.0, 100.0)
        series.append(10.0, 200.0)  # 100 W held for 10 s
        series.append(40.0, 0.0)  # 200 W held for 30 s
        assert series.time_weighted_mean() == pytest.approx((100 * 10 + 200 * 30) / 40)

    def test_integral(self):
        series = TimeSeries("power")
        series.append(0.0, 100.0)
        series.append(10.0, 100.0)
        assert series.integral() == pytest.approx(1000.0)

    def test_empty_series_statistics(self):
        series = TimeSeries("empty")
        assert series.latest() is None
        assert series.mean() == 0.0
        assert series.integral() == 0.0


class TestTimeSeriesRecorder:
    def test_probes_sampled_periodically(self, sim):
        recorder = TimeSeriesRecorder(sim, interval=10.0)
        counter = {"value": 0}

        def probe():
            counter["value"] += 1
            return counter["value"]

        series = recorder.add_probe("counter", probe)
        sim.run(until=50.0)
        assert len(series) == 5
        assert series.values[-1] == 5

    def test_recorder_without_probes_samples_nothing(self, sim):
        recorder = TimeSeriesRecorder(sim, interval=10.0)
        recorder.sample_all()
        sim.run(until=30.0)
        assert recorder.all_series() == {}
        with pytest.raises(KeyError):
            recorder.series("unknown")

    def test_duplicate_probe_rejected(self, sim):
        recorder = TimeSeriesRecorder(sim, interval=10.0)
        recorder.add_probe("x", lambda: 1.0)
        with pytest.raises(ValueError):
            recorder.add_probe("x", lambda: 2.0)

    def test_stop_halts_sampling(self, sim):
        recorder = TimeSeriesRecorder(sim, interval=10.0)
        series = recorder.add_probe("x", lambda: 1.0)
        sim.run(until=30.0)
        recorder.stop()
        sim.run(until=100.0)
        assert len(series) == 3

    def test_all_series(self, sim):
        recorder = TimeSeriesRecorder(sim, interval=5.0)
        recorder.add_probe("a", lambda: 1.0)
        recorder.add_probe("b", lambda: 2.0)
        assert set(recorder.all_series()) == {"a", "b"}


class TestReportTables:
    def test_format_table_alignment_and_content(self):
        rows = [
            {"algorithm": "ffd", "hosts": 20, "ratio": 1.0521},
            {"algorithm": "aco", "hosts": 19, "ratio": 1.0},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert "algorithm" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows
        assert "ffd" in lines[2]
        assert "1.052" in lines[2]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_columns_filled_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_boolean_and_large_number_formatting(self):
        text = format_table([{"ok": True, "big": 1234567.0, "small": 0.00123}])
        assert "yes" in text
        assert "1,234,567" in text
        assert "0.0012" in text

    def test_comparison_table_rows_and_render(self):
        table = ComparisonTable("My experiment", columns=["name", "value"])
        table.add_row(name="x", value=1)
        table.extend([{"name": "y", "value": 2}])
        assert len(table) == 2
        assert table.column("value") == [1, 2]
        rendered = table.render()
        assert rendered.startswith("My experiment")
        assert "=" * len("My experiment") in rendered

    def test_comparison_table_print(self, capsys):
        table = ComparisonTable("T")
        table.add_row(a=1)
        table.print()
        assert "T" in capsys.readouterr().out
