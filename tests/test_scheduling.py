"""Tests for the two-level scheduling policies: thresholds, dispatching, placement,
relocation and reconfiguration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.aco_vectorized import VectorizedACOConsolidation
from repro.core.ffd import FirstFitDecreasing
from repro.monitoring.summary import GroupManagerSummary
from repro.scheduling.dispatching import (
    FirstFitDispatching,
    LeastLoadedDispatching,
    RoundRobinDispatching,
    make_dispatching_policy,
)
from repro.scheduling.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    RoundRobinPlacement,
    WorstFitPlacement,
    make_placement_policy,
)
from repro.scheduling.reconfiguration import ReconfigurationPolicy
from repro.scheduling.relocation import OverloadRelocationPolicy, UnderloadRelocationPolicy
from repro.scheduling.thresholds import LoadBand, UtilizationThresholds
from repro.workloads.traces import ConstantTrace

from tests.conftest import make_node, make_vm


class TestThresholds:
    def test_classification(self):
        thresholds = UtilizationThresholds(underload=0.2, overload=0.8)
        assert thresholds.classify(0.1) is LoadBand.UNDERLOADED
        assert thresholds.classify(0.5) is LoadBand.MODERATE
        assert thresholds.classify(0.9) is LoadBand.OVERLOADED

    def test_boundaries_are_moderate(self):
        thresholds = UtilizationThresholds(underload=0.2, overload=0.8)
        assert thresholds.classify(0.2) is LoadBand.MODERATE
        assert thresholds.classify(0.8) is LoadBand.MODERATE

    def test_headroom(self):
        thresholds = UtilizationThresholds(overload=0.8)
        assert thresholds.headroom(0.5) == pytest.approx(0.3)
        assert thresholds.headroom(0.9) == 0.0

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            UtilizationThresholds(underload=0.9, overload=0.8)
        with pytest.raises(ValueError):
            UtilizationThresholds(underload=-0.1, overload=0.8)


def summary_for(gm_id, reserved_fraction, lc_count=4):
    capacity = ResourceVector([float(lc_count)] * 3)
    reserved = capacity * reserved_fraction
    return GroupManagerSummary(
        gm_id=gm_id,
        timestamp=0.0,
        total_capacity=capacity,
        reserved=reserved,
        used=reserved,
        local_controller_count=lc_count,
        active_vm_count=lc_count,
        largest_free_slot=ResourceVector([1.0 - reserved_fraction] * 3),
    )


class TestDispatching:
    DEMAND = ResourceVector([0.3, 0.3, 0.3])

    def test_round_robin_rotates(self):
        policy = RoundRobinDispatching()
        summaries = {f"gm-{i}": summary_for(f"gm-{i}", 0.2) for i in range(3)}
        first = policy.candidates(self.DEMAND, summaries)
        second = policy.candidates(self.DEMAND, summaries)
        assert first[0] != second[0]
        assert sorted(first) == sorted(second) == ["gm-0", "gm-1", "gm-2"]

    def test_least_loaded_prefers_emptiest_gm(self):
        policy = LeastLoadedDispatching()
        summaries = {
            "gm-0": summary_for("gm-0", 0.7),
            "gm-1": summary_for("gm-1", 0.1),
            "gm-2": summary_for("gm-2", 0.4),
        }
        assert policy.candidates(self.DEMAND, summaries)[0] == "gm-1"

    def test_first_fit_is_id_ordered(self):
        policy = FirstFitDispatching()
        summaries = {
            "gm-2": summary_for("gm-2", 0.1),
            "gm-0": summary_for("gm-0", 0.6),
            "gm-1": summary_for("gm-1", 0.3),
        }
        assert policy.candidates(self.DEMAND, summaries) == ["gm-0", "gm-1", "gm-2"]

    def test_implausible_gms_filtered_but_fallback_to_all(self):
        policy = FirstFitDispatching()
        # Both GMs too full for the VM -> fallback returns all of them.
        summaries = {
            "gm-0": summary_for("gm-0", 0.95),
            "gm-1": summary_for("gm-1", 0.99),
        }
        big_demand = ResourceVector([0.9, 0.9, 0.9])
        assert sorted(policy.candidates(big_demand, summaries)) == ["gm-0", "gm-1"]

    def test_factory(self):
        assert isinstance(make_dispatching_policy("round-robin"), RoundRobinDispatching)
        assert isinstance(make_dispatching_policy("least-loaded"), LeastLoadedDispatching)
        with pytest.raises(ValueError):
            make_dispatching_policy("nope")

    def test_empty_summaries(self):
        assert RoundRobinDispatching().candidates(self.DEMAND, {}) == []


class TestPlacementPolicies:
    def make_nodes(self):
        nodes = [make_node(f"node-{i}") for i in range(3)]
        # node-0 half full, node-1 nearly full, node-2 empty.
        nodes[0].place_vm(make_vm(0.5, 0.5, 0.5))
        nodes[1].place_vm(make_vm(0.8, 0.8, 0.8))
        return nodes

    def test_first_fit_picks_lowest_id_that_fits(self):
        nodes = self.make_nodes()
        chosen = FirstFitPlacement().select(make_vm(0.3, 0.3, 0.3), nodes)
        assert chosen.node_id == "node-0"

    def test_best_fit_picks_fullest_feasible_node(self):
        nodes = self.make_nodes()
        chosen = BestFitPlacement().select(make_vm(0.1, 0.1, 0.1), nodes)
        assert chosen.node_id == "node-1"

    def test_worst_fit_picks_emptiest_node(self):
        nodes = self.make_nodes()
        chosen = WorstFitPlacement().select(make_vm(0.1, 0.1, 0.1), nodes)
        assert chosen.node_id == "node-2"

    def test_round_robin_cycles_through_feasible_nodes(self):
        nodes = [make_node(f"node-{i}") for i in range(3)]
        policy = RoundRobinPlacement()
        chosen = [policy.select(make_vm(0.1, 0.1, 0.1), nodes).node_id for _ in range(3)]
        assert len(set(chosen)) == 3

    def test_none_when_nothing_fits(self):
        nodes = [make_node("node-0")]
        nodes[0].place_vm(make_vm(0.9, 0.9, 0.9))
        assert FirstFitPlacement().select(make_vm(0.5, 0.5, 0.5), nodes) is None

    def test_suspended_nodes_excluded(self):
        from repro.cluster.node import NodeState

        nodes = [make_node("node-0"), make_node("node-1")]
        nodes[0].state = NodeState.SUSPENDED
        chosen = FirstFitPlacement().select(make_vm(), nodes)
        assert chosen.node_id == "node-1"

    def test_factory(self):
        assert isinstance(make_placement_policy("best-fit"), BestFitPlacement)
        with pytest.raises(ValueError):
            make_placement_policy("nope")


class TestOverloadRelocation:
    def overloaded_setup(self):
        source = make_node("hot")
        for _ in range(3):
            vm = make_vm(cpu=0.32, memory=0.2, network=0.1, trace=ConstantTrace(1.0))
            source.place_vm(vm)
            vm.update_usage(0.0)
        destinations = [make_node("cold-0"), make_node("cold-1")]
        return source, destinations

    def test_moves_enough_vms_to_clear_overload(self):
        source, destinations = self.overloaded_setup()
        policy = OverloadRelocationPolicy(UtilizationThresholds(overload=0.8))
        decision = policy.decide(source, destinations + [source])
        assert not decision.empty
        moved_cpu = sum(vm.used["cpu"] for vm, _, _ in decision.moves)
        assert source.used()["cpu"] - moved_cpu <= 0.8 + 1e-9

    def test_no_moves_when_not_overloaded(self):
        source = make_node("ok")
        vm = make_vm(cpu=0.3, trace=ConstantTrace(1.0))
        source.place_vm(vm)
        vm.update_usage(0.0)
        decision = OverloadRelocationPolicy().decide(source, [make_node("other")])
        assert decision.empty
        assert "not overloaded" in decision.reason

    def test_no_moves_without_feasible_destination(self):
        source, _ = self.overloaded_setup()
        full = make_node("full")
        full.place_vm(make_vm(0.95, 0.9, 0.9))
        decision = OverloadRelocationPolicy().decide(source, [full])
        assert decision.empty

    def test_destinations_not_pushed_over_threshold(self):
        source, destinations = self.overloaded_setup()
        policy = OverloadRelocationPolicy(UtilizationThresholds(overload=0.8))
        decision = policy.decide(source, destinations)
        added = {}
        for vm, _, destination in decision.moves:
            added[destination.node_id] = added.get(destination.node_id, 0.0) + vm.used["cpu"]
        for destination in destinations:
            assert destination.used()["cpu"] + added.get(destination.node_id, 0.0) <= 0.8 + 1e-9


class TestUnderloadRelocation:
    def test_evacuates_underloaded_host_entirely(self):
        source = make_node("light")
        vm = make_vm(cpu=0.1, memory=0.1, network=0.05, trace=ConstantTrace(1.0))
        source.place_vm(vm)
        vm.update_usage(0.0)
        busy = make_node("busy")
        busy_vm = make_vm(cpu=0.5, memory=0.3, network=0.1, trace=ConstantTrace(1.0))
        busy.place_vm(busy_vm)
        busy_vm.update_usage(0.0)
        decision = UnderloadRelocationPolicy().decide(source, [busy])
        assert len(decision.moves) == 1
        assert decision.moves[0][2].node_id == "busy"

    def test_all_or_nothing(self):
        source = make_node("light")
        for _ in range(2):
            vm = make_vm(cpu=0.08, memory=0.45, network=0.05, trace=ConstantTrace(1.0))
            source.place_vm(vm)
            vm.update_usage(0.0)
        # Destination can fit only one of the two VMs (memory bound).
        busy = make_node("busy")
        filler = make_vm(cpu=0.3, memory=0.5, network=0.1, trace=ConstantTrace(1.0))
        busy.place_vm(filler)
        filler.update_usage(0.0)
        decision = UnderloadRelocationPolicy().decide(source, [busy])
        assert decision.empty
        assert "aborting evacuation" in decision.reason

    def test_empty_hosts_not_used_as_destinations(self):
        source = make_node("light")
        vm = make_vm(cpu=0.1, trace=ConstantTrace(1.0))
        source.place_vm(vm)
        vm.update_usage(0.0)
        empty = make_node("empty")
        decision = UnderloadRelocationPolicy().decide(source, [empty])
        assert decision.empty

    def test_not_underloaded_means_no_moves(self):
        source = make_node("mid")
        vm = make_vm(cpu=0.5, trace=ConstantTrace(1.0))
        source.place_vm(vm)
        vm.update_usage(0.0)
        decision = UnderloadRelocationPolicy().decide(source, [make_node("busy")])
        assert decision.empty


class TestReconfiguration:
    def spread_out_cluster(self, vms_per_node=1, node_count=6):
        nodes = [make_node(f"node-{i}") for i in range(node_count)]
        for node in nodes[:4]:
            for _ in range(vms_per_node):
                vm = make_vm(cpu=0.3, memory=0.3, network=0.1, trace=ConstantTrace(1.0))
                node.place_vm(vm)
                vm.update_usage(0.0)
        return nodes

    def test_consolidation_reduces_hosts(self):
        nodes = self.spread_out_cluster()
        policy = ReconfigurationPolicy(algorithm=FirstFitDecreasing())
        plan = policy.plan(nodes)
        assert plan.hosts_before == 4
        assert plan.hosts_after < plan.hosts_before
        assert plan.hosts_saved >= 1
        assert not plan.empty

    def test_released_nodes_are_reported(self):
        nodes = self.spread_out_cluster()
        plan = ReconfigurationPolicy(algorithm=FirstFitDecreasing()).plan(nodes)
        assert len(plan.released_nodes) >= 1
        for released in plan.released_nodes:
            assert released.vm_count > 0  # currently busy, would be emptied by the plan

    def test_aco_reconfiguration_also_works(self):
        nodes = self.spread_out_cluster()
        policy = ReconfigurationPolicy(
            algorithm=ACOConsolidation(ACOParameters(n_ants=4, n_cycles=10), rng=np.random.default_rng(0))
        )
        plan = policy.plan(nodes)
        assert plan.hosts_after <= plan.hosts_before

    def test_max_migrations_cap(self):
        nodes = self.spread_out_cluster(vms_per_node=2)
        policy = ReconfigurationPolicy(algorithm=FirstFitDecreasing(), max_migrations=1)
        plan = policy.plan(nodes)
        assert len(plan.moves) <= 1

    def test_overloaded_hosts_excluded_by_default(self):
        nodes = [make_node(f"node-{i}") for i in range(3)]
        hot_vm = make_vm(cpu=0.95, trace=ConstantTrace(1.0))
        nodes[0].place_vm(hot_vm)
        hot_vm.update_usage(0.0)
        policy = ReconfigurationPolicy(algorithm=FirstFitDecreasing())
        eligible = policy._eligible_nodes(nodes)
        assert nodes[0] not in eligible

    def test_no_plan_for_fewer_than_two_nodes(self):
        node = make_node()
        vm = make_vm()
        node.place_vm(vm)
        plan = ReconfigurationPolicy(algorithm=FirstFitDecreasing()).plan([node])
        assert plan.empty

    def test_consolidation_summary_recorded(self):
        nodes = self.spread_out_cluster()
        plan = ReconfigurationPolicy(algorithm=FirstFitDecreasing()).plan(nodes)
        assert plan.consolidation_summary.get("algorithm") == "ffd"
        assert "runtime_seconds" in plan.consolidation_summary


class TestWarmStartReconfiguration:
    def busy_cluster(self, node_count=6, loaded=4):
        nodes = [make_node(f"node-{i}") for i in range(node_count)]
        for node in nodes[:loaded]:
            vm = make_vm(cpu=0.3, memory=0.3, network=0.1, trace=ConstantTrace(1.0))
            node.place_vm(vm)
            vm.update_usage(0.0)
        return nodes

    def make_policy(self, **kwargs):
        return ReconfigurationPolicy(
            algorithm=VectorizedACOConsolidation(
                ACOParameters(n_ants=4, n_cycles=8), rng=np.random.default_rng(0)
            ),
            **kwargs,
        )

    def test_warm_start_persists_target_pairs(self):
        nodes = self.busy_cluster()
        policy = self.make_policy(warm_start=True)
        plan = policy.plan(nodes)
        assert plan.hosts_after <= plan.hosts_before
        # Every participating VM's target host is remembered by id.
        vm_ids = {vm.vm_id for node in nodes for vm in node.vms}
        assert set(policy._summary.pairs) == vm_ids
        node_ids = {node.node_id for node in nodes}
        assert set(policy._summary.pairs.values()) <= node_ids

    def test_warm_started_round_plans_no_worse(self):
        nodes = self.busy_cluster()
        policy = self.make_policy(warm_start=True)
        first = policy.plan(nodes)
        # Same cluster state again: the warm trail reproduces (or improves on)
        # the previous target via the greedy anchor.
        second = policy.plan(nodes)
        assert second.hosts_after <= first.hosts_after

    def test_warm_start_ignored_by_algorithms_without_support(self):
        nodes = self.busy_cluster()
        policy = ReconfigurationPolicy(algorithm=FirstFitDecreasing(), warm_start=True)
        policy.plan(nodes)
        assert policy._summary.pairs == {}

    def test_incremental_round_skips_clean_nodes(self):
        nodes = self.busy_cluster()
        policy = self.make_policy(incremental=True)
        first = policy.plan(nodes)
        assert not first.empty
        # Nothing changed since the snapshot: no node is dirty, so the next
        # round has fewer than two participants and produces no plan.
        second = policy.plan(nodes)
        assert second.empty

    def test_incremental_round_repacks_dirty_nodes(self):
        nodes = self.busy_cluster()
        policy = self.make_policy(incremental=True)
        policy.plan(nodes)
        # Touch two nodes: both become dirty and participate again.
        for node in nodes[:2]:
            vm = make_vm(cpu=0.2, memory=0.2, network=0.1, trace=ConstantTrace(1.0))
            node.place_vm(vm)
            vm.update_usage(0.0)
        participants = policy._participants(policy._eligible_nodes(nodes))
        assert {node.node_id for node in participants} == {"node-0", "node-1"}
