"""Tests for the declarative scenario engine (spec, catalog, runner, CLI)."""

from __future__ import annotations

import json

import pytest

from repro.cluster.topology import NodeClass
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    TimelineEvent,
    WorkloadPhase,
    get_scenario,
    iter_scenarios,
    run_scenario,
    scenario_names,
)
from repro.cli.main import main
from tests.golden import regenerate as golden


def _small_churn_spec(**overrides) -> ScenarioSpec:
    """A fast-running churn scenario used by several tests."""
    base = dict(
        name="test-churn",
        description="small churn scenario for tests",
        duration=600.0,
        local_controllers=4,
        group_managers=2,
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=12,
                arrival={"kind": "poisson", "rate_per_hour": 360.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.6},
                lifetime={"kind": "exponential", "mean": 120.0, "minimum": 30.0},
            )
        ],
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioSpec:
    def test_round_trip_through_dict(self):
        spec = _small_churn_spec(
            node_classes=[NodeClass(name="std", count=4, capacity=(1.0, 1.0, 1.0))],
            timeline=[TimelineEvent(at=300.0, action="kill_leader")],
            config={"monitoring_interval": 5.0},
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json(self):
        spec = _small_churn_spec()
        decoded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert decoded == spec

    def test_node_classes_force_local_controller_count(self):
        spec = _small_churn_spec(
            local_controllers=99,
            node_classes=[
                NodeClass(name="a", count=2, capacity=(1.0, 1.0, 1.0)),
                NodeClass(name="b", count=3, capacity=(2.0, 1.0, 1.0)),
            ],
        )
        assert spec.local_controllers == 5

    def test_unknown_config_override_rejected(self):
        with pytest.raises(ValueError, match="unknown HierarchyConfig overrides"):
            _small_churn_spec(config={"not_a_knob": 1})

    def test_seed_config_override_rejected(self):
        with pytest.raises(ValueError, match="'seed' cannot be a config override"):
            _small_churn_spec(config={"seed": 99})

    def test_invalid_phase_parameters_fail_at_construction(self):
        with pytest.raises(ValueError, match="lifetime seconds must be positive"):
            WorkloadPhase(name="bad", vm_count=1, lifetime={"kind": "fixed", "seconds": -1})
        with pytest.raises(ValueError, match="window must be positive"):
            WorkloadPhase(name="bad", vm_count=1, arrival={"kind": "uniform", "window": -5})

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            WorkloadPhase(name="bad", vm_count=1, arrival={"kind": "fibonacci"})
        with pytest.raises(ValueError, match="unknown lifetime distribution"):
            WorkloadPhase(name="bad", vm_count=1, lifetime={"kind": "bogus"})

    def test_unknown_timeline_action_rejected(self):
        with pytest.raises(ValueError, match="unknown timeline action"):
            TimelineEvent(at=0.0, action="reboot_universe")

    def test_timeline_event_beyond_duration_rejected(self):
        with pytest.raises(ValueError, match="beyond duration"):
            _small_churn_spec(timeline=[TimelineEvent(at=1e9, action="kill_leader")])

    def test_config_overrides_reach_hierarchy_config(self):
        spec = _small_churn_spec(
            config={
                "monitoring_interval": 5.0,
                "thresholds": {"underload": 0.3, "overload": 0.7},
                "power_manager": {"enabled": True, "check_interval": 60.0},
            }
        )
        config = spec.hierarchy_config(seed=42)
        assert config.seed == 42
        assert config.monitoring_interval == 5.0
        assert config.thresholds.overload == 0.7
        assert config.power_manager.enabled is True


class TestCatalog:
    def test_catalog_has_at_least_six_scenarios(self):
        assert len(scenario_names()) >= 6

    def test_every_entry_round_trips(self):
        for spec in iter_scenarios():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_get_scenario_returns_fresh_specs(self):
        first = get_scenario("steady-churn")
        first.duration = 1.0
        assert get_scenario("steady-churn").duration != 1.0

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="steady-churn"):
            get_scenario("no-such-scenario")

    def test_catalog_covers_churn_failures_and_heterogeneity(self):
        specs = {spec.name: spec for spec in iter_scenarios()}
        assert any(
            phase.lifetime["kind"] != "infinite"
            for spec in specs.values()
            for phase in spec.phases
        )
        assert any(spec.timeline for spec in specs.values())
        assert any(spec.node_classes for spec in specs.values())


class TestGoldenCatalogFixtures:
    """Every catalog scenario reproduces its committed golden fixture.

    This is both the determinism sweep the sweep engine's jobs-independence
    contract builds on (a nondeterministic scenario could not match a fixed
    byte string) and the safety net for hot-path refactors: array-backed
    telemetry, coalesced events and any future optimization must leave every
    fixture byte-identical.  Regenerate intentionally via
    ``PYTHONPATH=src python -m tests.golden.regenerate``.
    """

    @pytest.mark.parametrize("name", scenario_names())
    def test_catalog_scenario_matches_golden_fixture(self, name):
        path = golden.fixture_path(name)
        assert path.exists(), (
            f"missing golden fixture {path}; run "
            "PYTHONPATH=src python -m tests.golden.regenerate"
        )
        assert golden.golden_json(name) == path.read_text()

    @pytest.mark.parametrize("name", ["steady-churn", "rolling-node-failures", "megafleet-steady"])
    def test_scalar_and_array_paths_are_byte_identical(self, name):
        """The optimized defaults == the pre-optimization event structure.

        ``telemetry="objects"`` + ``coalesce_events=False`` reproduces the
        scalar per-event hot path; the result must match the default
        vectorized/coalesced path byte for byte (jittered and deterministic
        networks alike).
        """
        spec = get_scenario(name)
        duration = golden.golden_duration(spec, cap=600.0)
        fast = run_scenario(get_scenario(name), seed=5, duration=duration)
        slow_spec = get_scenario(name)
        slow_spec.config = {
            **slow_spec.config,
            "telemetry": "objects",
            "coalesce_events": False,
        }
        slow = run_scenario(slow_spec, seed=5, duration=duration)
        assert fast.canonical_json() == slow.canonical_json()

    def test_perf_section_is_zeroed_in_goldens_but_measured_in_results(self):
        result = run_scenario(_small_churn_spec(), seed=0)
        assert result.perf["wall_clock_seconds"] > 0.0
        assert result.perf["events_per_second"] > 0.0
        zeroed = json.loads(result.canonical_json())["perf"]
        assert zeroed == {"wall_clock_seconds": 0.0, "events_per_second": 0.0}


class TestScenarioRunner:
    def test_churn_departures_observable_in_result(self):
        result = run_scenario(_small_churn_spec(), seed=1)
        assert result.submissions["placed"] > 0
        assert result.churn["departed"] > 0
        assert result.churn["departure_events"] == result.churn["departed"]

    def test_same_spec_and_seed_is_byte_identical(self):
        spec = _small_churn_spec()
        first = run_scenario(spec, seed=3).canonical_json()
        second = run_scenario(_small_churn_spec(), seed=3).canonical_json()
        assert first == second

    def test_different_seeds_differ(self):
        spec = _small_churn_spec()
        assert (
            run_scenario(spec, seed=0).canonical_json()
            != run_scenario(spec, seed=99).canonical_json()
        )

    def test_timeline_failure_and_recovery_applied(self):
        spec = _small_churn_spec(
            timeline=[
                TimelineEvent(at=120.0, action="kill_lc", params={"name": "lc-001"}),
                TimelineEvent(at=360.0, action="recover", params={"name": "lc-001"}),
            ]
        )
        result = run_scenario(spec, seed=2)
        assert result.availability["failures_injected"] == 1
        assert result.availability["recoveries"] == 1
        assert result.availability["local_controllers_assigned"] == 4

    def test_set_thresholds_event_reaches_config(self):
        spec = _small_churn_spec(
            timeline=[
                TimelineEvent(
                    at=60.0, action="set_thresholds", params={"underload": 0.35, "overload": 0.75}
                )
            ]
        )
        runner = ScenarioRunner(spec, seed=0)
        runner.run()
        assert runner.system.config.thresholds.overload == 0.75
        for gm in runner.system.group_managers.values():
            assert gm.overload_policy.thresholds.overload == 0.75
        assert runner.system.event_log.count("thresholds_changed") == 1

    def test_heterogeneous_fleet_builds_distinct_capacities(self):
        spec = _small_churn_spec(
            node_classes=[
                NodeClass(name="big", count=2, capacity=(2.0, 2.0, 1.0)),
                NodeClass(name="small", count=2, capacity=(0.5, 0.5, 1.0)),
            ]
        )
        runner = ScenarioRunner(spec, seed=0)
        system = runner.build_system()
        capacities = sorted(node.capacity.values[0] for node in system.topology)
        assert capacities == [0.5, 0.5, 2.0, 2.0]
        classes = [node.node_class for node in system.topology]
        assert classes == ["big", "big", "small", "small"]

    def test_duration_override_shortens_run(self):
        result = run_scenario(_small_churn_spec(), seed=0, duration=120.0)
        assert result.duration == 120.0

    def test_duration_override_may_not_drop_timeline_events(self):
        spec = _small_churn_spec(
            timeline=[TimelineEvent(at=500.0, action="kill_leader")]
        )
        with pytest.raises(ValueError, match="drop 1 timeline event"):
            ScenarioRunner(spec, seed=0, duration=100.0)


class TestScenarioCli:
    def test_list_prints_catalog(self, capsys):
        assert main(["scenario", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output

    def test_list_json(self, capsys):
        assert main(["scenario", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in entries} == set(scenario_names())

    def test_describe_round_trips(self, capsys):
        assert main(["scenario", "describe", "steady-churn"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(data) == get_scenario("steady-churn")

    def test_run_json_reports_churn(self, capsys):
        assert (
            main(["scenario", "run", "steady-churn", "--seed", "0", "--duration", "600", "--json"])
            == 0
        )
        result = json.loads(capsys.readouterr().out)
        assert result["scenario"] == "steady-churn"
        assert result["churn"]["departed"] > 0

    def test_run_table_output(self, capsys):
        assert main(["scenario", "run", "flash-crowd", "--seed", "0", "--duration", "300"]) == 0
        output = capsys.readouterr().out
        assert "Scenario: flash-crowd" in output
        assert "infrastructure_kwh" in output

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["scenario", "run", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_without_name_errors(self):
        with pytest.raises(SystemExit):
            main(["scenario", "run"])
