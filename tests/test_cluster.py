"""Tests for the data-center model: resources, VMs, nodes, power, topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import NodeState, PhysicalNode, release_finished_vms
from repro.cluster.power import (
    ConstantPowerModel,
    CubicPowerModel,
    DEFAULT_POWER_STATES,
    LinearPowerModel,
    PowerStateSpec,
)
from repro.cluster.resources import (
    ResourceError,
    ResourceVector,
    capacity_matrix,
    demand_matrix,
)
from repro.cluster.topology import ClusterSpec, build_cluster, homogeneous_nodes
from repro.cluster.vm import VMState
from repro.workloads.traces import ConstantTrace, SpikeTrace

from tests.conftest import make_node, make_vm


class TestResourceVector:
    def test_construction_from_sequence(self):
        vector = ResourceVector([0.5, 0.25, 0.1])
        assert vector["cpu"] == 0.5
        assert vector["memory"] == 0.25
        assert vector["network"] == 0.1

    def test_construction_from_mapping(self):
        vector = ResourceVector.from_mapping({"cpu": 0.3, "memory": 0.2})
        assert vector["cpu"] == 0.3
        assert vector["network"] == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector([1.0, 2.0], dimensions=("cpu", "memory", "network"))

    def test_non_finite_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector([np.nan, 1.0, 1.0])

    def test_addition_and_subtraction(self):
        a = ResourceVector([0.5, 0.5, 0.5])
        b = ResourceVector([0.25, 0.1, 0.0])
        assert (a + b).as_dict() == pytest.approx({"cpu": 0.75, "memory": 0.6, "network": 0.5})
        assert (a - b).as_dict() == pytest.approx({"cpu": 0.25, "memory": 0.4, "network": 0.5})

    def test_scalar_multiplication(self):
        vector = 2 * ResourceVector([0.25, 0.25, 0.25])
        assert vector.l1() == pytest.approx(1.5)

    def test_mismatched_dimension_names_rejected(self):
        a = ResourceVector([1.0, 1.0], dimensions=("cpu", "memory"))
        b = ResourceVector([1.0, 1.0], dimensions=("cpu", "disk"))
        with pytest.raises(ResourceError):
            _ = a + b

    def test_fits_within(self):
        demand = ResourceVector([0.5, 0.5, 0.5])
        assert demand.fits_within(ResourceVector([1.0, 1.0, 1.0]))
        assert not demand.fits_within(ResourceVector([0.4, 1.0, 1.0]))

    def test_norms(self):
        vector = ResourceVector([0.3, 0.4, 0.0])
        assert vector.l1() == pytest.approx(0.7)
        assert vector.l2() == pytest.approx(0.5)
        assert vector.linf() == pytest.approx(0.4)

    def test_max_ratio_to_identifies_binding_dimension(self):
        demand = ResourceVector([0.9, 0.2, 0.1])
        assert demand.max_ratio_to(ResourceVector([1.0, 1.0, 1.0])) == pytest.approx(0.9)

    def test_clamp_nonnegative(self):
        vector = ResourceVector([1.0, 1.0, 1.0]) - ResourceVector([2.0, 0.5, 1.0])
        clamped = vector.clamp_nonnegative()
        assert clamped.is_nonnegative()
        assert clamped["memory"] == pytest.approx(0.5)

    def test_equality_and_hash(self):
        a = ResourceVector([0.1, 0.2, 0.3])
        b = ResourceVector([0.1, 0.2, 0.3])
        assert a == b
        assert hash(a) == hash(b)

    def test_division_by_zero_component_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector([1.0, 1.0, 1.0]) / ResourceVector([1.0, 0.0, 1.0])

    def test_values_are_read_only(self):
        vector = ResourceVector([1.0, 1.0, 1.0])
        with pytest.raises(ValueError):
            vector.values[0] = 5.0

    def test_demand_and_capacity_matrices(self):
        vms = [make_vm(0.1, 0.2, 0.3), make_vm(0.4, 0.5, 0.6)]
        nodes = [make_node("a"), make_node("b")]
        demands = demand_matrix(vms)
        capacities = capacity_matrix(nodes)
        assert demands.shape == (2, 3)
        assert capacities.shape == (2, 3)
        assert demands[1, 0] == pytest.approx(0.4)


class TestVirtualMachine:
    def test_initial_state_is_pending(self):
        vm = make_vm()
        assert vm.state is VMState.PENDING
        assert vm.host_id is None
        assert not vm.is_active

    def test_lifecycle_transitions(self):
        vm = make_vm()
        vm.mark_submitted(1.0)
        vm.mark_started(2.0, "node-1")
        assert vm.state is VMState.RUNNING
        assert vm.is_active
        vm.mark_finished(10.0)
        assert vm.state is VMState.FINISHED
        assert vm.host_id is None
        assert vm.finish_time == 10.0

    def test_failure_marks_failed(self):
        vm = make_vm()
        vm.mark_started(0.0, "node-1")
        vm.mark_failed(5.0)
        assert vm.state is VMState.FAILED

    def test_update_usage_follows_trace(self):
        vm = make_vm(cpu=0.8, trace=SpikeTrace(before=0.25, after=1.0, at=100.0))
        before = vm.update_usage(0.0)
        after = vm.update_usage(200.0)
        assert before["cpu"] == pytest.approx(0.2)
        assert after["cpu"] == pytest.approx(0.8)
        # Memory stays at the reservation.
        assert after["memory"] == pytest.approx(vm.requested["memory"])

    def test_update_usage_without_trace_keeps_reservation(self):
        vm = make_vm(cpu=0.5)
        assert vm.update_usage(100.0) == vm.requested

    def test_unique_ids_and_names(self):
        a, b = make_vm(), make_vm()
        assert a.vm_id != b.vm_id
        assert a.name != b.name

    def test_default_memory_footprint_positive(self):
        vm = make_vm(memory=0.5)
        assert vm.memory_mb > 0


class TestPowerModels:
    def test_linear_model_endpoints(self):
        model = LinearPowerModel(p_idle=100.0, p_max=200.0)
        assert model.power(0.0) == pytest.approx(100.0)
        assert model.power(1.0) == pytest.approx(200.0)
        assert model.power(0.5) == pytest.approx(150.0)

    def test_linear_model_clips_utilization(self):
        model = LinearPowerModel()
        assert model.power(2.0) == model.max_power()
        assert model.power(-1.0) == model.idle_power()

    def test_invalid_linear_model_rejected(self):
        with pytest.raises(ValueError):
            LinearPowerModel(p_idle=300.0, p_max=200.0)

    def test_cubic_model_below_linear_at_midrange(self):
        linear = LinearPowerModel(100.0, 200.0)
        cubic = CubicPowerModel(100.0, 200.0)
        assert cubic.power(0.5) < linear.power(0.5)
        assert cubic.power(1.0) == pytest.approx(linear.power(1.0))

    def test_constant_model(self):
        model = ConstantPowerModel(42.0)
        assert model.power(0.0) == model.power(1.0) == 42.0

    def test_power_state_round_trip_energy(self):
        spec = PowerStateSpec(suspend_energy=100.0, wakeup_energy=300.0)
        assert spec.round_trip_energy() == 400.0

    def test_break_even_seconds(self):
        spec = PowerStateSpec(sleep_power=10.0, suspend_energy=500.0, wakeup_energy=2000.0)
        model = LinearPowerModel(p_idle=110.0, p_max=200.0)
        assert spec.break_even_seconds(model) == pytest.approx(25.0)

    def test_break_even_infinite_when_sleep_draws_more(self):
        spec = PowerStateSpec(sleep_power=500.0)
        model = LinearPowerModel(p_idle=100.0, p_max=200.0)
        assert spec.break_even_seconds(model) == float("inf")

    def test_default_power_states_exist(self):
        assert "suspend" in DEFAULT_POWER_STATES
        assert "shutdown" in DEFAULT_POWER_STATES
        assert DEFAULT_POWER_STATES["shutdown"].sleep_power < DEFAULT_POWER_STATES["suspend"].sleep_power


class TestPhysicalNode:
    def test_place_and_remove_vm(self):
        node = make_node()
        vm = make_vm(0.5, 0.5, 0.5)
        node.place_vm(vm, now=1.0)
        assert node.vm_count == 1
        assert vm.state is VMState.RUNNING
        assert vm.host_id == node.node_id
        assert not node.is_idle
        node.remove_vm(vm, now=2.0)
        assert node.vm_count == 0
        assert node.is_idle
        assert node.idle_since == 2.0

    def test_placement_respects_capacity(self):
        node = make_node()
        node.place_vm(make_vm(0.7, 0.2, 0.2))
        with pytest.raises(ResourceError):
            node.place_vm(make_vm(0.5, 0.2, 0.2))

    def test_fits_is_reservation_based(self):
        node = make_node()
        big = make_vm(0.9, 0.1, 0.1)
        node.place_vm(big)
        assert not node.fits(make_vm(0.2, 0.1, 0.1))
        assert node.fits(make_vm(0.05, 0.1, 0.1))

    def test_double_placement_rejected(self):
        node = make_node()
        vm = make_vm()
        node.place_vm(vm)
        with pytest.raises(ResourceError):
            node.place_vm(vm)

    def test_cannot_place_on_suspended_node(self):
        node = make_node()
        node.state = NodeState.SUSPENDED
        with pytest.raises(ResourceError):
            node.place_vm(make_vm())

    def test_utilization_reflects_usage(self):
        node = make_node()
        vm = make_vm(cpu=0.6, trace=ConstantTrace(0.5))
        node.place_vm(vm)
        vm.update_usage(0.0)
        assert node.utilization() == pytest.approx(0.3)

    def test_available_capacity(self):
        node = make_node()
        node.place_vm(make_vm(0.25, 0.25, 0.25))
        available = node.available()
        assert available["cpu"] == pytest.approx(0.75)

    def test_current_power_by_state(self):
        node = make_node()
        on_power = node.current_power()
        node.state = NodeState.SUSPENDED
        assert node.current_power(sleep_power=5.0) == 5.0
        node.state = NodeState.FAILED
        assert node.current_power() == 0.0
        node.state = NodeState.WAKING
        assert node.current_power() == node.power_model.max_power()
        assert on_power >= node.power_model.idle_power()

    def test_idle_duration(self):
        node = make_node()
        assert node.idle_duration(50.0) == 50.0
        node.place_vm(make_vm())
        assert node.idle_duration(60.0) == 0.0

    def test_evict_all_returns_vms(self):
        node = make_node()
        vms = [make_vm(0.2, 0.2, 0.1) for _ in range(3)]
        for vm in vms:
            node.place_vm(vm)
        evicted = node.evict_all(now=5.0)
        assert len(evicted) == 3
        assert node.vm_count == 0

    def test_release_finished_vms_sweeper(self):
        node = make_node()
        vm = make_vm()
        node.place_vm(vm)
        vm.state = VMState.FINISHED
        released = release_finished_vms([node], now=1.0)
        assert released == [vm]
        assert node.vm_count == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ResourceError):
            PhysicalNode("bad", capacity=ResourceVector([0.0, 0.0, 0.0]))


class TestClusterTopology:
    def test_homogeneous_nodes_builder(self):
        nodes = homogeneous_nodes(5, capacity=(2.0, 4.0, 1.0))
        assert len(nodes) == 5
        assert all(node.capacity["memory"] == 4.0 for node in nodes)
        assert len({node.node_id for node in nodes}) == 5

    def test_build_cluster_counts_and_lookup(self):
        topology = build_cluster(ClusterSpec(node_count=10, nodes_per_rack=4))
        assert len(topology) == 10
        node = topology.nodes[3]
        assert topology.node(node.node_id) is node
        assert len(topology.node_ids()) == 10

    def test_rack_assignment_and_bandwidth(self):
        topology = build_cluster(ClusterSpec(node_count=10, nodes_per_rack=4))
        ids = topology.node_ids()
        assert topology.rack_of(ids[0]) == 0
        assert topology.rack_of(ids[5]) == 1
        intra = topology.bandwidth_mbps(ids[0], ids[1])
        inter = topology.bandwidth_mbps(ids[0], ids[5])
        assert intra == topology.spec.intra_rack_bandwidth_mbps
        assert inter == topology.spec.inter_rack_bandwidth_mbps
        assert topology.bandwidth_mbps(ids[0], ids[0]) == float("inf")

    def test_total_capacity(self):
        topology = build_cluster(ClusterSpec(node_count=4, node_capacity=(1.0, 2.0, 3.0)))
        total = topology.total_capacity()
        assert total["cpu"] == pytest.approx(4.0)
        assert total["memory"] == pytest.approx(8.0)

    def test_heterogeneous_cluster_requires_rng(self):
        with pytest.raises(ValueError):
            build_cluster(ClusterSpec(node_count=4, heterogeneity=0.2))

    def test_heterogeneous_cluster_varies_capacity(self, rng):
        topology = build_cluster(ClusterSpec(node_count=8, heterogeneity=0.3), rng=rng)
        cpus = {round(node.capacity["cpu"], 6) for node in topology}
        assert len(cpus) > 1

    def test_active_node_count(self):
        topology = build_cluster(ClusterSpec(node_count=3))
        assert topology.active_node_count() == 0
        topology.nodes[0].place_vm(make_vm())
        assert topology.active_node_count() == 1

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(node_count=0)
        with pytest.raises(ValueError):
            ClusterSpec(node_count=4, heterogeneity=1.5)
