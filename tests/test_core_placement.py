"""Tests for the Placement solution model and the migration planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import lower_bound_hosts, validate_instance
from repro.core.migration_plan import Migration, migration_churn, plan_migrations
from repro.core.placement import Placement, PlacementError, placement_from_nodes

from tests.conftest import make_node, make_vm


def simple_instance():
    demands = np.array([[0.5, 0.5], [0.4, 0.4], [0.3, 0.3], [0.2, 0.2]])
    capacities = np.tile([1.0, 1.0], (4, 1))
    return demands, capacities


class TestPlacement:
    def test_empty_placement(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        assert placement.hosts_used() == 0
        assert not placement.fully_assigned
        assert placement.is_feasible()
        assert list(placement.unassigned_vms()) == [0, 1, 2, 3]

    def test_assign_and_loads(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        placement.assign(0, 0)
        placement.assign(1, 0)
        placement.assign(2, 1)
        loads = placement.host_loads()
        assert loads[0, 0] == pytest.approx(0.9)
        assert loads[1, 0] == pytest.approx(0.3)
        assert placement.hosts_used() == 2
        assert set(placement.vms_on_host(0)) == {0, 1}

    def test_assign_overflow_rejected_with_check(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        placement.assign(0, 0)
        placement.assign(1, 0)
        with pytest.raises(PlacementError):
            placement.assign(2, 0)

    def test_assign_overflow_allowed_without_check_but_flagged(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        for vm in range(4):
            placement.assign(vm, 0, check=False)
        assert not placement.is_feasible()
        assert list(placement.violations()) == [0]

    def test_unassign(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        placement.assign(0, 0)
        placement.unassign(0)
        assert not placement.is_assigned(0)

    def test_average_utilization_over_used_hosts_only(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        placement.assign(0, 0)  # 0.5 utilization on host 0 only
        assert placement.average_utilization() == pytest.approx(0.5)
        per_dim = placement.average_utilization(per_dimension=True)
        assert per_dim.shape == (2,)

    def test_copy_is_independent(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities)
        placement.assign(0, 0)
        clone = placement.copy()
        clone.assign(1, 1)
        assert not placement.is_assigned(1)

    def test_invalid_construction(self):
        demands, capacities = simple_instance()
        with pytest.raises(PlacementError):
            Placement(demands, capacities, assignment=[0, 0, 0])  # wrong length
        with pytest.raises(PlacementError):
            Placement(demands, capacities, assignment=[9, 0, 0, 0])  # out of range
        with pytest.raises(PlacementError):
            Placement(demands[:, :1], capacities)  # dimension mismatch
        with pytest.raises(PlacementError):
            Placement(-demands, capacities)  # negative demand

    def test_describe_and_repr(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities, assignment=[0, 0, 1, 1])
        info = placement.describe()
        assert info["hosts_used"] == 2
        assert "Placement" in repr(placement)

    def test_packing_quality_at_least_one(self):
        demands, capacities = simple_instance()
        placement = Placement(demands, capacities, assignment=[0, 1, 2, 3])
        assert placement.packing_quality() >= 1.0

    def test_placement_from_nodes(self):
        nodes = [make_node("a"), make_node("b")]
        vms = [make_vm(0.3, 0.3, 0.1), make_vm(0.2, 0.2, 0.1)]
        nodes[0].place_vm(vms[0])
        nodes[1].place_vm(vms[1])
        placement, vm_list, node_list = placement_from_nodes(nodes, vms)
        assert placement.fully_assigned
        assert placement.hosts_used() == 2
        assert vm_list == vms
        assert node_list == nodes

    def test_placement_from_nodes_requires_nodes(self):
        with pytest.raises(PlacementError):
            placement_from_nodes([], [])


class TestInstanceValidation:
    def test_validate_rejects_oversized_vm(self):
        demands = np.array([[2.0, 0.5]])
        capacities = np.array([[1.0, 1.0]])
        with pytest.raises(PlacementError):
            validate_instance(demands, capacities)

    def test_validate_rejects_empty_hosts(self):
        with pytest.raises(PlacementError):
            validate_instance(np.empty((0, 2)), np.empty((0, 2)))

    def test_validate_accepts_empty_vms(self):
        demands, capacities = validate_instance(np.empty((0, 2)), np.array([[1.0, 1.0]]))
        assert demands.shape == (0, 2)

    def test_lower_bound_simple(self):
        demands = np.array([[0.6, 0.1], [0.6, 0.1], [0.6, 0.1]])
        capacities = np.tile([1.0, 1.0], (5, 1))
        # CPU total 1.8 -> ceil = 2 (the bound; true optimum is 3 but bounds may be loose).
        assert lower_bound_hosts(demands, capacities) == 2

    def test_lower_bound_zero_for_empty(self):
        assert lower_bound_hosts(np.empty((0, 2)), np.array([[1.0, 1.0]])) == 0

    def test_lower_bound_uses_binding_dimension(self):
        demands = np.array([[0.1, 0.9], [0.1, 0.9], [0.1, 0.9]])
        capacities = np.tile([1.0, 1.0], (5, 1))
        assert lower_bound_hosts(demands, capacities) == 3


class TestMigrationPlanning:
    def test_plan_moves_only_differences(self):
        demands = np.array([[0.4, 0.4], [0.4, 0.4], [0.4, 0.4]])
        capacities = np.tile([1.0, 1.0], (3, 1))
        current = Placement(demands, capacities, assignment=[0, 1, 2])
        target = Placement(demands, capacities, assignment=[0, 0, 2])
        plan = plan_migrations(current, target)
        assert plan.count == 1
        move = plan.migrations[0]
        assert (move.vm_index, move.source_host, move.target_host) == (1, 1, 0)
        assert plan.deferred == []

    def test_plan_orders_chained_moves(self):
        # VM1 must leave host1 before VM0 can move in (capacity 1.0 each dimension).
        demands = np.array([[0.8, 0.1], [0.8, 0.1]])
        capacities = np.tile([1.0, 1.0], (3, 1))
        current = Placement(demands, capacities, assignment=[0, 1])
        target = Placement(demands, capacities, assignment=[1, 2])
        plan = plan_migrations(current, target)
        assert [m.vm_index for m in plan.migrations] == [1, 0]
        assert plan.deferred == []

    def test_cyclic_swap_is_deferred_not_violated(self):
        demands = np.array([[0.9, 0.1], [0.9, 0.1]])
        capacities = np.tile([1.0, 1.0], (2, 1))
        current = Placement(demands, capacities, assignment=[0, 1])
        target = Placement(demands, capacities, assignment=[1, 0])
        plan = plan_migrations(current, target)
        assert plan.count == 0
        assert sorted(plan.deferred) == [0, 1]

    def test_max_migrations_cap(self):
        demands = np.tile([0.2, 0.2], (6, 1))
        capacities = np.tile([1.0, 1.0], (6, 1))
        current = Placement(demands, capacities, assignment=[0, 1, 2, 3, 4, 5])
        target = Placement(demands, capacities, assignment=[0, 0, 0, 0, 0, 0])
        plan = plan_migrations(current, target, max_migrations=2)
        assert plan.count == 2
        assert len(plan.deferred) == 3

    def test_mismatched_instances_rejected(self):
        demands = np.array([[0.4, 0.4]])
        capacities = np.tile([1.0, 1.0], (2, 1))
        current = Placement(demands, capacities, assignment=[0])
        other = Placement(np.array([[0.5, 0.5]]), capacities, assignment=[1])
        with pytest.raises(PlacementError):
            plan_migrations(current, other)

    def test_migration_validation(self):
        with pytest.raises(PlacementError):
            Migration(vm_index=0, source_host=1, target_host=1)

    def test_migration_churn(self):
        demands = np.array([[0.4, 0.4], [0.4, 0.4]])
        capacities = np.tile([1.0, 1.0], (2, 1))
        current = Placement(demands, capacities, assignment=[0, 1])
        target = Placement(demands, capacities, assignment=[0, 0])
        plan = plan_migrations(current, target)
        assert migration_churn(plan, memory_mb=[512.0, 1024.0]) == pytest.approx(1024.0)

    def test_moves_that_empty_hosts_go_first(self):
        # Host 2 is emptied by the target; its VM's move should be planned first.
        demands = np.array([[0.3, 0.3], [0.3, 0.3], [0.3, 0.3]])
        capacities = np.tile([1.0, 1.0], (3, 1))
        current = Placement(demands, capacities, assignment=[0, 1, 2])
        target = Placement(demands, capacities, assignment=[1, 1, 0])
        plan = plan_migrations(current, target)
        assert plan.migrations[0].vm_index in (0, 2)
