"""Tests for the vectorized ACO: batched kernels, colonies, warm start, bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOConsolidation, PheromoneSummary, VectorizedACOConsolidation
from repro.core.aco import ACOParameters
from repro.core.base import lower_bound_hosts
from repro.core.placement import PlacementError
from repro.workloads import UniformDemandDistribution, consolidation_instance


def make_instance(n_vms=60, seed=0):
    rng = np.random.default_rng(seed)
    return consolidation_instance(
        n_vms,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


class TestVectorizedACO:
    def test_produces_feasible_complete_placement(self):
        demands, capacities = make_instance()
        result = VectorizedACOConsolidation(rng=np.random.default_rng(0)).solve(
            demands, capacities
        )
        assert result.feasible
        assert result.placement.fully_assigned
        assert result.algorithm == "aco-vectorized"
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    def test_feasible_across_seeds_and_sizes(self):
        """Property sweep: every constructed plan respects every capacity."""
        for n_vms, seed in [(10, 0), (40, 1), (90, 2), (150, 3)]:
            demands, capacities = make_instance(n_vms, seed=seed)
            result = VectorizedACOConsolidation(
                ACOParameters(n_ants=4, n_cycles=6), rng=np.random.default_rng(seed)
            ).solve(demands, capacities)
            assert result.feasible
            loads = np.zeros_like(capacities)
            np.add.at(loads, result.placement.assignment, demands)
            assert np.all(loads <= capacities + 1e-9)

    def test_packs_no_worse_than_scalar_on_identical_seeds(self):
        """The batched kernels change the speed, not the packing quality."""
        params = ACOParameters(n_ants=6, n_cycles=15)
        for seed in range(5):
            demands, capacities = make_instance(50, seed=seed)
            scalar = ACOConsolidation(params, rng=np.random.default_rng(seed)).solve(
                demands, capacities
            )
            vectorized = VectorizedACOConsolidation(
                params, rng=np.random.default_rng(seed)
            ).solve(demands, capacities)
            assert vectorized.hosts_used <= scalar.hosts_used

    def test_deterministic_given_rng(self):
        demands, capacities = make_instance(40, seed=4)
        a = VectorizedACOConsolidation(rng=np.random.default_rng(7)).solve(demands, capacities)
        b = VectorizedACOConsolidation(rng=np.random.default_rng(7)).solve(demands, capacities)
        assert np.array_equal(a.placement.assignment, b.placement.assignment)

    def test_history_is_monotone_non_increasing(self):
        demands, capacities = make_instance(40, seed=5)
        result = VectorizedACOConsolidation(rng=np.random.default_rng(1)).solve(
            demands, capacities
        )
        assert result.history == sorted(result.history, reverse=True)

    def test_colonies_independent_of_jobs_count(self):
        """Seeds are spawned before the fan-out, so jobs=1 and jobs=2 agree."""
        demands, capacities = make_instance(40, seed=6)
        params = ACOParameters(n_ants=4, n_cycles=6)
        serial = VectorizedACOConsolidation(
            params, rng=np.random.default_rng(3), n_colonies=3, jobs=1
        ).solve(demands, capacities)
        parallel = VectorizedACOConsolidation(
            params, rng=np.random.default_rng(3), n_colonies=3, jobs=2
        ).solve(demands, capacities)
        assert np.array_equal(serial.placement.assignment, parallel.placement.assignment)
        assert serial.extra["colony_hosts_used"] == parallel.extra["colony_hosts_used"]
        assert serial.extra["best_colony"] == parallel.extra["best_colony"]

    def test_multiple_colonies_never_worse_than_their_best(self):
        demands, capacities = make_instance(50, seed=7)
        result = VectorizedACOConsolidation(
            ACOParameters(n_ants=4, n_cycles=8), rng=np.random.default_rng(9), n_colonies=4
        ).solve(demands, capacities)
        assert result.extra["n_colonies"] == 4
        assert len(result.extra["colony_hosts_used"]) == 4
        assert result.hosts_used == min(result.extra["colony_hosts_used"])

    def test_stops_at_lower_bound(self):
        demands = np.array([[0.5, 0.5], [0.5, 0.5]])
        capacities = np.tile([1.0, 1.0], (3, 1))
        result = VectorizedACOConsolidation(
            ACOParameters(n_ants=4, n_cycles=50), rng=np.random.default_rng(0)
        ).solve(demands, capacities)
        assert result.hosts_used == 1
        assert result.proved_optimal

    def test_empty_instance(self):
        capacities = np.tile([1.0, 1.0], (2, 1))
        result = VectorizedACOConsolidation(rng=np.random.default_rng(0)).solve(
            np.empty((0, 2)), capacities
        )
        assert result.hosts_used == 0

    def test_too_few_hosts_raises(self):
        demands = np.tile([0.9, 0.9], (3, 1))
        capacities = np.tile([1.0, 1.0], (2, 1))
        with pytest.raises(PlacementError):
            VectorizedACOConsolidation(rng=np.random.default_rng(0)).solve(demands, capacities)

    def test_invalid_colony_and_jobs_counts_rejected(self):
        with pytest.raises(ValueError):
            VectorizedACOConsolidation(n_colonies=0)
        with pytest.raises(ValueError):
            VectorizedACOConsolidation(jobs=0)

    def test_mismatched_initial_pheromone_shape_rejected(self):
        demands, capacities = make_instance(10, seed=8)
        with pytest.raises(PlacementError):
            VectorizedACOConsolidation(rng=np.random.default_rng(0)).solve(
                demands, capacities, initial_pheromone=np.ones((3, 3))
            )


class TestPheromoneBounds:
    """Regression for the deposit-scale bug: the reinforcement used to grow
    with the instance size (``delta ~ n_vms / hosts_used``), so at a few
    hundred VMs every reinforced entry slammed into ``tau_max`` and the
    Max-Min band collapsed.  The fixed deposit is size-independent, so on a
    large instance the trail must sit *strictly inside* ``(tau_min, tau_max)``."""

    # Few cycles and no early stop: unreinforced entries decay to
    # tau_initial * (1-rho)^cycles = 0.7^5 ~ 0.17, still above tau_min=0.05,
    # while reinforced entries approach rho-equilibrium (1+quality) < 2 < 5.
    PARAMS = ACOParameters(
        n_ants=2, n_cycles=5, stop_at_lower_bound=False, stagnation_cycles=None
    )

    @staticmethod
    def large_instance():
        rng = np.random.default_rng(12)
        return consolidation_instance(
            500,
            rng,
            demand_distribution=UniformDemandDistribution(0.05, 0.3, dimensions=("cpu", "memory")),
            host_capacity=(1.0, 1.0),
        )

    def test_vectorized_pheromone_strictly_inside_band_at_500_vms(self):
        demands, capacities = self.large_instance()
        result = VectorizedACOConsolidation(self.PARAMS, rng=np.random.default_rng(2)).solve(
            demands, capacities
        )
        assert result.extra["pheromone_max"] < self.PARAMS.tau_max
        assert result.extra["pheromone_min"] > self.PARAMS.tau_min

    def test_scalar_pheromone_strictly_inside_band_at_500_vms(self):
        demands, capacities = self.large_instance()
        result = ACOConsolidation(self.PARAMS, rng=np.random.default_rng(2)).solve(
            demands, capacities
        )
        assert result.extra["pheromone_max"] < self.PARAMS.tau_max
        assert result.extra["pheromone_min"] > self.PARAMS.tau_min


class TestWarmStart:
    def test_summary_matrix_boosts_remembered_pairs(self):
        params = ACOParameters()
        summary = PheromoneSummary(pairs={1: "node-b", 2: "node-a"}, strength=0.5)
        matrix = summary.matrix([1, 2, 3], ["node-a", "node-b"], params)
        boosted = params.tau_initial + 0.5 * (params.tau_max - params.tau_initial)
        assert matrix is not None
        assert matrix[0, 1] == pytest.approx(boosted)
        assert matrix[1, 0] == pytest.approx(boosted)
        # VM 3 has no remembered host: uniform initial trail.
        assert np.all(matrix[2] == params.tau_initial)

    def test_summary_matrix_none_without_surviving_pairs(self):
        params = ACOParameters()
        assert PheromoneSummary().matrix([1, 2], ["a"], params) is None
        stale = PheromoneSummary(pairs={99: "gone-host"})
        assert stale.matrix([1, 2], ["a"], params) is None

    def test_warm_start_reproduces_incumbent_via_greedy_anchor(self):
        """A strongly-boosted trail makes the greedy anchor rebuild the plan."""
        demands, capacities = make_instance(40, seed=10)
        params = ACOParameters(n_ants=4, n_cycles=10)
        cold = VectorizedACOConsolidation(params, rng=np.random.default_rng(5)).solve(
            demands, capacities
        )
        summary = PheromoneSummary(
            pairs={vm: int(host) for vm, host in enumerate(cold.placement.assignment)},
            strength=1.0,
        )
        initial = summary.matrix(
            list(range(demands.shape[0])), list(range(capacities.shape[0])), params
        )
        warm = VectorizedACOConsolidation(params, rng=np.random.default_rng(6)).solve(
            demands, capacities, initial_pheromone=initial
        )
        assert warm.extra["warm_started"]
        # The anchor bounds the warm run from below: never worse than the
        # remembered plan, regardless of what the stochastic cycles find.
        assert warm.hosts_used <= cold.hosts_used

    def test_warm_start_is_clipped_into_the_maxmin_band(self):
        demands, capacities = make_instance(20, seed=11)
        params = ACOParameters(n_ants=2, n_cycles=1, stop_at_lower_bound=False)
        hot = np.full((demands.shape[0], capacities.shape[0]), 50.0)
        result = VectorizedACOConsolidation(params, rng=np.random.default_rng(1)).solve(
            demands, capacities, initial_pheromone=hot
        )
        assert result.extra["pheromone_max"] <= params.tau_max + 1e-9
