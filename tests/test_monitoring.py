"""Tests for monitoring: estimators, collectors and GM summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.resources import ResourceVector
from repro.monitoring.collector import HostMonitor, VMMonitor
from repro.monitoring.estimators import (
    EwmaEstimator,
    MaxEstimator,
    MeanEstimator,
    PercentileEstimator,
    make_estimator,
)
from repro.monitoring.summary import GroupManagerSummary, aggregate_summaries
from repro.workloads.traces import ConstantTrace, SpikeTrace

from tests.conftest import make_node, make_vm


class TestEstimators:
    SAMPLES = np.array([[0.2, 0.3, 0.1], [0.4, 0.3, 0.1], [0.6, 0.3, 0.1]])

    def test_mean(self):
        estimate = MeanEstimator().estimate(self.SAMPLES)
        assert estimate[0] == pytest.approx(0.4)
        assert estimate[1] == pytest.approx(0.3)

    def test_max(self):
        estimate = MaxEstimator().estimate(self.SAMPLES)
        assert estimate[0] == pytest.approx(0.6)

    def test_ewma_weighs_recent_samples_more(self):
        estimate = EwmaEstimator(alpha=0.5).estimate(self.SAMPLES)
        assert estimate[0] > MeanEstimator().estimate(self.SAMPLES)[0]

    def test_ewma_alpha_one_returns_latest(self):
        estimate = EwmaEstimator(alpha=1.0).estimate(self.SAMPLES)
        assert estimate[0] == pytest.approx(0.6)

    def test_percentile(self):
        estimate = PercentileEstimator(percentile=50.0).estimate(self.SAMPLES)
        assert estimate[0] == pytest.approx(0.4)

    def test_single_sample_handled(self):
        estimate = MeanEstimator().estimate(np.array([0.5, 0.5, 0.5]))
        assert estimate.shape == (3,)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            MeanEstimator().estimate(np.empty((0, 3)))

    def test_estimates_bounded_by_sample_range(self):
        for estimator in (MeanEstimator(), MaxEstimator(), EwmaEstimator(), PercentileEstimator()):
            estimate = estimator.estimate(self.SAMPLES)
            assert np.all(estimate >= self.SAMPLES.min(axis=0) - 1e-12)
            assert np.all(estimate <= self.SAMPLES.max(axis=0) + 1e-12)

    def test_factory(self):
        assert isinstance(make_estimator("mean"), MeanEstimator)
        assert isinstance(make_estimator("ewma", alpha=0.5), EwmaEstimator)
        with pytest.raises(ValueError):
            make_estimator("nope")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            PercentileEstimator(percentile=0.0)


class TestEstimatorEdgeCases:
    ALL = [MeanEstimator(), MaxEstimator(), EwmaEstimator(), PercentileEstimator()]

    def test_single_sample_is_returned_verbatim(self):
        sample = np.array([[0.37, 0.21, 0.09]])
        for estimator in self.ALL:
            assert (estimator.estimate(sample) == sample[0]).all(), estimator.name

    def test_constant_window_estimates_the_constant(self):
        window = np.full((12, 3), 0.42)
        for estimator in self.ALL:
            assert estimator.estimate(window) == pytest.approx([0.42] * 3), estimator.name

    def test_one_dimensional_input_is_promoted_to_single_sample(self):
        for estimator in self.ALL:
            estimate = estimator.estimate(np.array([0.1, 0.2, 0.3]))
            assert estimate == pytest.approx([0.1, 0.2, 0.3]), estimator.name

    def test_empty_history_rejected_by_every_estimator(self):
        for estimator in self.ALL:
            with pytest.raises(ValueError):
                estimator.estimate(np.empty((0, 3)))

    def test_zero_utilization_window(self):
        window = np.zeros((5, 3))
        for estimator in self.ALL:
            assert (estimator.estimate(window) == 0.0).all(), estimator.name

    def test_out_of_order_sampling_keeps_append_order(self):
        """Monitors index the window by arrival, not timestamp: sampling at a
        past simulated time (e.g. around a clock rewind in tests) must not
        corrupt the window."""
        vm = make_vm(cpu=0.8, trace=SpikeTrace(before=0.25, after=0.75, at=50.0))
        monitor = VMMonitor(vm, window=4, estimator=MaxEstimator())
        for now in (100.0, 0.0, 60.0, 10.0):  # deliberately unsorted
            monitor.sample(now)
        timestamps = [sample.timestamp for sample in monitor.samples]
        assert timestamps == [100.0, 0.0, 60.0, 10.0]
        # Max over the window: the spike level times the reservation.
        assert monitor.estimate_demand()["cpu"] == pytest.approx(0.8 * 0.75)


class TestVMMonitor:
    def test_sampling_follows_trace(self):
        vm = make_vm(cpu=0.8, trace=SpikeTrace(before=0.5, after=1.0, at=50.0))
        monitor = VMMonitor(vm, window=10)
        monitor.sample(0.0)
        monitor.sample(100.0)
        samples = monitor.samples
        assert len(samples) == 2
        assert samples[0].usage["cpu"] == pytest.approx(0.4)
        assert samples[1].usage["cpu"] == pytest.approx(0.8)

    def test_window_is_bounded(self):
        vm = make_vm(trace=ConstantTrace(0.5))
        monitor = VMMonitor(vm, window=3)
        for t in range(10):
            monitor.sample(float(t))
        assert len(monitor.samples) == 3

    def test_estimate_falls_back_to_reservation_when_empty(self):
        vm = make_vm(cpu=0.6)
        monitor = VMMonitor(vm)
        assert monitor.estimate_demand() == vm.requested

    def test_estimate_capped_at_reservation(self):
        vm = make_vm(cpu=0.5, trace=ConstantTrace(1.0))
        monitor = VMMonitor(vm, estimator=MaxEstimator())
        monitor.sample(0.0)
        estimate = monitor.estimate_demand()
        assert estimate["cpu"] <= vm.requested["cpu"] + 1e-9

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            VMMonitor(make_vm(), window=0)


class TestHostMonitor:
    def test_report_structure(self):
        node = make_node()
        vm = make_vm(cpu=0.4, trace=ConstantTrace(1.0))
        node.place_vm(vm)
        monitor = HostMonitor(node)
        report = monitor.report(now=10.0)
        assert report["node_id"] == node.node_id
        assert report["vm_count"] == 1
        assert len(report["capacity"]) == 3
        assert report["utilization"] == pytest.approx(0.4, abs=1e-6)
        assert vm.vm_id in report["vm_usage"]

    def test_sample_all_tracks_new_and_removed_vms(self):
        node = make_node()
        monitor = HostMonitor(node)
        vm = make_vm()
        node.place_vm(vm)
        samples = monitor.sample_all(1.0)
        assert vm.vm_id in samples
        node.remove_vm(vm)
        samples = monitor.sample_all(2.0)
        assert vm.vm_id not in samples

    def test_estimated_used_sums_vms(self):
        node = make_node()
        for _ in range(2):
            node.place_vm(make_vm(cpu=0.3, trace=ConstantTrace(1.0)))
        monitor = HostMonitor(node)
        monitor.sample_all(0.0)
        assert monitor.estimated_used()["cpu"] == pytest.approx(0.6)

    def test_utilization_zero_for_idle_host(self):
        monitor = HostMonitor(make_node())
        assert monitor.utilization() == 0.0


class TestGroupManagerSummary:
    def _report(self, capacity, reserved, used, vms=1):
        return {
            "capacity": capacity,
            "reserved": reserved,
            "used": used,
            "vm_count": vms,
        }

    def test_from_reports_aggregates(self):
        reports = [
            self._report([1.0, 1.0, 1.0], [0.5, 0.5, 0.5], [0.4, 0.4, 0.4], vms=2),
            self._report([1.0, 1.0, 1.0], [0.2, 0.2, 0.2], [0.1, 0.1, 0.1], vms=1),
        ]
        summary = GroupManagerSummary.from_reports("gm-0", 10.0, reports)
        assert summary.local_controller_count == 2
        assert summary.active_vm_count == 3
        assert summary.total_capacity["cpu"] == pytest.approx(2.0)
        assert summary.reserved["cpu"] == pytest.approx(0.7)
        assert summary.largest_free_slot["cpu"] == pytest.approx(0.8)

    def test_free_capacity_and_utilization(self):
        summary = GroupManagerSummary.from_reports(
            "gm-0", 0.0, [self._report([1.0, 1.0, 1.0], [0.25, 0.25, 0.25], [0.2, 0.2, 0.2])]
        )
        assert summary.free_capacity()["cpu"] == pytest.approx(0.75)
        assert summary.utilization() == pytest.approx(0.25)

    def test_could_host_respects_fragmentation(self):
        # Two LCs each with 0.5 free: total free 1.0 but largest slot only 0.5.
        reports = [
            self._report([1.0, 1.0, 1.0], [0.5, 0.5, 0.5], [0.5, 0.5, 0.5]),
            self._report([1.0, 1.0, 1.0], [0.5, 0.5, 0.5], [0.5, 0.5, 0.5]),
        ]
        summary = GroupManagerSummary.from_reports("gm-0", 0.0, reports)
        small = ResourceVector([0.4, 0.4, 0.4])
        large = ResourceVector([0.8, 0.8, 0.8])
        assert summary.could_host(small)
        assert not summary.could_host(large)

    def test_payload_round_trip(self):
        summary = GroupManagerSummary.from_reports(
            "gm-1", 5.0, [self._report([1.0, 1.0, 1.0], [0.3, 0.3, 0.3], [0.2, 0.2, 0.2])]
        )
        clone = GroupManagerSummary.from_payload(summary.to_payload())
        assert clone.gm_id == "gm-1"
        assert clone.total_capacity == summary.total_capacity
        assert clone.largest_free_slot == summary.largest_free_slot

    def test_empty_reports(self):
        summary = GroupManagerSummary.from_reports("gm-0", 0.0, [])
        assert summary.local_controller_count == 0
        assert summary.utilization() == 0.0

    def test_aggregate_summaries(self):
        summaries = [
            GroupManagerSummary.from_reports(
                f"gm-{i}", 0.0, [self._report([1.0, 1.0, 1.0], [0.5, 0.5, 0.5], [0.4, 0.4, 0.4])]
            )
            for i in range(3)
        ]
        totals = aggregate_summaries(summaries)
        assert totals["group_managers"] == 3
        assert totals["local_controllers"] == 3
        assert totals["total_capacity"]["cpu"] == pytest.approx(3.0)

    def test_aggregate_empty_returns_none(self):
        assert aggregate_summaries([]) is None
