"""Tests for workload generation: demand distributions, traces, generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.distributions import (
    CorrelatedDemandDistribution,
    HeavyTailDemandDistribution,
    NormalDemandDistribution,
    UniformDemandDistribution,
    make_distribution,
)
from repro.workloads.generator import (
    BatchArrival,
    ExponentialLifetime,
    FixedLifetime,
    InfiniteLifetime,
    PoissonArrival,
    UniformArrival,
    UniformLifetime,
    VMRequest,
    WorkloadGenerator,
    consolidation_instance,
    make_arrival,
    make_lifetime,
)
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    RandomWalkTrace,
    SpikeTrace,
    TraceReplay,
)


class TestDemandDistributions:
    @pytest.mark.parametrize(
        "distribution",
        [
            UniformDemandDistribution(),
            NormalDemandDistribution(),
            CorrelatedDemandDistribution(),
            HeavyTailDemandDistribution(),
        ],
    )
    def test_samples_shape_and_bounds(self, distribution, rng):
        demands = distribution.sample(200, rng)
        assert demands.shape == (200, 3)
        assert np.all(demands > 0)
        assert np.all(demands <= 1.0)

    def test_uniform_respects_bounds(self, rng):
        demands = UniformDemandDistribution(low=0.2, high=0.4).sample(500, rng)
        assert demands.min() >= 0.2
        assert demands.max() <= 0.4

    def test_uniform_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformDemandDistribution(low=0.5, high=0.4)
        with pytest.raises(ValueError):
            UniformDemandDistribution(low=0.0, high=0.5)

    def test_normal_centred_on_mean(self, rng):
        demands = NormalDemandDistribution(mean=0.4, std=0.05).sample(2000, rng)
        assert abs(demands.mean() - 0.4) < 0.02

    def test_correlated_dimensions_are_correlated(self, rng):
        demands = CorrelatedDemandDistribution(rho=0.9).sample(2000, rng)
        correlation = np.corrcoef(demands[:, 0], demands[:, 1])[0, 1]
        assert correlation > 0.6

    def test_uncorrelated_when_rho_zero(self, rng):
        demands = CorrelatedDemandDistribution(rho=0.0).sample(2000, rng)
        correlation = np.corrcoef(demands[:, 0], demands[:, 1])[0, 1]
        assert abs(correlation) < 0.2

    def test_heavytail_has_large_outliers(self, rng):
        demands = HeavyTailDemandDistribution().sample(2000, rng)
        assert demands.max() > 3 * demands.mean()

    def test_factory_by_name(self):
        assert isinstance(make_distribution("uniform"), UniformDemandDistribution)
        assert isinstance(make_distribution("heavytail"), HeavyTailDemandDistribution)
        with pytest.raises(ValueError):
            make_distribution("bogus")

    def test_custom_dimensions(self, rng):
        distribution = UniformDemandDistribution(dimensions=("cpu", "memory"))
        assert distribution.sample(5, rng).shape == (5, 2)


class TestTraces:
    def test_constant_trace(self):
        trace = ConstantTrace(0.7)
        assert trace(0.0) == trace(1e6) == 0.7

    def test_constant_trace_bounds_checked(self):
        with pytest.raises(ValueError):
            ConstantTrace(1.5)

    def test_random_walk_stays_in_bounds(self, rng):
        trace = RandomWalkTrace(rng, low=0.1, high=0.9, horizon=3600.0, interval=60.0)
        values = [trace(t) for t in np.linspace(0, 3600, 200)]
        assert min(values) >= 0.1
        assert max(values) <= 0.9

    def test_random_walk_is_pure(self, rng):
        trace = RandomWalkTrace(rng)
        assert trace(1234.0) == trace(1234.0)

    def test_diurnal_peak_and_trough(self):
        trace = DiurnalTrace(base=0.2, peak=0.9, peak_time=12 * 3600.0)
        assert trace(12 * 3600.0) == pytest.approx(0.9, abs=1e-6)
        assert trace(0.0) == pytest.approx(0.2, abs=1e-6)

    def test_diurnal_periodicity(self):
        trace = DiurnalTrace()
        assert trace(3600.0) == pytest.approx(trace(3600.0 + 86400.0), abs=1e-9)

    def test_diurnal_noise_requires_rng(self):
        with pytest.raises(ValueError):
            DiurnalTrace(noise_std=0.1)

    def test_bursty_trace_reaches_burst_level(self, rng):
        trace = BurstyTrace(rng, baseline=0.1, burst_level=0.95, burst_rate_per_hour=20.0, horizon=3600.0)
        values = [trace(t) for t in np.linspace(0, 3600, 2000)]
        assert max(values) == pytest.approx(0.95)
        assert min(values) == pytest.approx(0.1)
        assert trace.burst_count > 0

    def test_spike_trace_steps_at_time(self):
        trace = SpikeTrace(before=0.2, after=0.9, at=100.0)
        assert trace(99.9) == 0.2
        assert trace(100.0) == 0.9

    def test_trace_replay_step_interpolation(self):
        trace = TraceReplay([0.0, 10.0, 20.0], [0.1, 0.5, 0.9])
        assert trace(5.0) == 0.1
        assert trace(10.0) == 0.5
        assert trace(25.0) == 0.9

    def test_trace_replay_loop(self):
        trace = TraceReplay([0.0, 10.0], [0.2, 0.8], loop=True)
        assert trace(25.0) == trace(5.0)

    def test_trace_replay_validation(self):
        with pytest.raises(ValueError):
            TraceReplay([0.0, 0.0], [0.1, 0.2])
        with pytest.raises(ValueError):
            TraceReplay([0.0, 1.0], [0.1, 1.5])

    def test_composite_trace_clips_to_one(self):
        trace = CompositeTrace([ConstantTrace(0.8), ConstantTrace(0.8)])
        assert trace(0.0) == 1.0

    def test_composite_trace_weights(self):
        trace = CompositeTrace([ConstantTrace(0.5), ConstantTrace(0.5)], weights=[0.5, 0.5])
        assert trace(0.0) == pytest.approx(0.5)

    def test_mean_over(self):
        assert ConstantTrace(0.4).mean_over(1000.0) == pytest.approx(0.4)


class TestWorkloadGenerator:
    def test_batch_arrival_all_at_same_time(self, rng):
        generator = WorkloadGenerator(arrival_process=BatchArrival(at=5.0))
        requests = generator.generate(10, rng)
        assert len(requests) == 10
        assert all(request.arrival_time == 5.0 for request in requests)

    def test_poisson_arrivals_are_increasing(self, rng):
        generator = WorkloadGenerator(arrival_process=PoissonArrival(rate_per_hour=120.0))
        requests = generator.generate(50, rng)
        times = [request.arrival_time for request in requests]
        assert times == sorted(times)
        assert times[0] > 0

    def test_runtime_mean_produces_runtimes(self, rng):
        generator = WorkloadGenerator(runtime_mean=600.0)
        requests = generator.generate(20, rng)
        assert all(request.vm.runtime is not None and request.vm.runtime > 0 for request in requests)

    def test_without_runtime_mean_vms_run_forever(self, rng):
        requests = WorkloadGenerator().generate(5, rng)
        assert all(request.vm.runtime is None for request in requests)

    def test_trace_factory_attached_to_vms(self, rng):
        generator = WorkloadGenerator(trace_factory=lambda stream: ConstantTrace(0.33))
        requests = generator.generate(3, rng)
        assert all(request.vm.trace(0.0) == 0.33 for request in requests)

    def test_zero_count(self, rng):
        assert WorkloadGenerator().generate(0, rng) == []

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ValueError):
            WorkloadGenerator().generate(-1, rng)

    def test_vm_request_validation(self):
        with pytest.raises(ValueError):
            VMRequest(-1.0, None)

    def test_reproducible_given_same_seed(self):
        generator = WorkloadGenerator()
        a = generator.generate(10, np.random.default_rng(5))
        b = generator.generate(10, np.random.default_rng(5))
        assert all(
            np.allclose(x.vm.requested.values, y.vm.requested.values) for x, y in zip(a, b)
        )


class TestLifetimeDistributions:
    def test_infinite_lifetime_yields_none(self, rng):
        assert InfiniteLifetime().sample(4, rng) == [None, None, None, None]

    def test_fixed_lifetime(self, rng):
        assert FixedLifetime(seconds=120.0).sample(3, rng) == [120.0, 120.0, 120.0]

    def test_exponential_lifetime_respects_minimum(self, rng):
        lifetimes = ExponentialLifetime(mean=10.0, minimum=60.0).sample(100, rng)
        assert all(value >= 60.0 for value in lifetimes)

    def test_uniform_lifetime_bounds(self, rng):
        lifetimes = UniformLifetime(low=100.0, high=200.0).sample(50, rng)
        assert all(100.0 <= value <= 200.0 for value in lifetimes)

    def test_generator_threads_lifetimes_onto_vms(self, rng):
        generator = WorkloadGenerator(lifetime_distribution=FixedLifetime(seconds=300.0))
        requests = generator.generate(5, rng)
        assert all(request.vm.runtime == 300.0 for request in requests)

    def test_runtime_mean_and_lifetime_distribution_exclusive(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(runtime_mean=10.0, lifetime_distribution=FixedLifetime())

    def test_make_lifetime_factory(self):
        assert isinstance(make_lifetime("exponential", mean=5.0), ExponentialLifetime)
        with pytest.raises(ValueError):
            make_lifetime("bogus")

    def test_uniform_arrival_within_window(self, rng):
        times = UniformArrival(start=10.0, window=50.0).arrival_times(30, rng)
        assert (times >= 10.0).all() and (times <= 60.0).all()
        assert (np.diff(times) >= 0).all()

    def test_make_arrival_factory(self):
        assert isinstance(make_arrival("uniform", window=5.0), UniformArrival)
        with pytest.raises(ValueError):
            make_arrival("teleport")


class TestFactoryRegistries:
    """Registry-backed ``make_arrival``/``make_lifetime`` error ergonomics."""

    def test_unknown_arrival_lists_available_kinds(self):
        from repro.workloads import arrival_kinds

        with pytest.raises(ValueError) as excinfo:
            make_arrival("teleport")
        message = str(excinfo.value)
        assert "available:" in message
        for kind in arrival_kinds():
            assert kind in message

    def test_unknown_lifetime_lists_available_kinds(self):
        from repro.workloads import lifetime_kinds

        with pytest.raises(ValueError) as excinfo:
            make_lifetime("immortal-ish")
        message = str(excinfo.value)
        assert "available:" in message
        for kind in lifetime_kinds():
            assert kind in message

    def test_registered_kinds_are_sorted_and_complete(self):
        from repro.workloads import arrival_kinds, lifetime_kinds

        assert arrival_kinds() == sorted(arrival_kinds())
        assert {"batch", "poisson", "uniform"} <= set(arrival_kinds())
        assert lifetime_kinds() == sorted(lifetime_kinds())
        assert {"infinite", "fixed", "exponential", "uniform"} <= set(lifetime_kinds())

    def test_register_arrival_extends_factory(self):
        from repro.workloads import arrival_kinds, register_arrival
        from repro.workloads.generator import _ARRIVAL_REGISTRY

        class _EveryMinute(BatchArrival):
            pass

        register_arrival("every-minute", lambda **kw: _EveryMinute(**kw))
        try:
            assert "every-minute" in arrival_kinds()
            assert isinstance(make_arrival("every-minute", at=3.0), _EveryMinute)
            with pytest.raises(ValueError, match="already registered"):
                register_arrival("every-minute", lambda **kw: _EveryMinute(**kw))
        finally:
            _ARRIVAL_REGISTRY.pop("every-minute")

    def test_register_lifetime_extends_factory(self):
        from repro.workloads import lifetime_kinds, register_lifetime
        from repro.workloads.generator import _LIFETIME_REGISTRY

        register_lifetime("blink", lambda **kw: FixedLifetime(seconds=0.001))
        try:
            assert "blink" in lifetime_kinds()
            assert isinstance(make_lifetime("blink"), FixedLifetime)
        finally:
            _LIFETIME_REGISTRY.pop("blink")


class TestWorkloadEdgeCases:
    """Boundary behaviour: empty batches, single events, seeded determinism."""

    @pytest.mark.parametrize("kind", ["batch", "poisson", "uniform"])
    def test_zero_count_yields_no_arrivals(self, kind, rng):
        times = make_arrival(kind).arrival_times(0, rng)
        assert times.shape == (0,)
        generator = WorkloadGenerator(arrival_process=make_arrival(kind))
        assert generator.generate(0, rng) == []

    @pytest.mark.parametrize("kind", ["batch", "poisson", "uniform"])
    def test_single_event_arrival(self, kind, rng):
        times = make_arrival(kind).arrival_times(1, rng)
        assert times.shape == (1,)
        assert times[0] >= 0.0

    def test_poisson_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrival(rate_per_hour=0.0)

    def test_exponential_lifetime_deterministic_under_seed_sequences(self):
        from repro.simulation.randomness import spawn_generator

        lifetime = ExponentialLifetime(mean=600.0, minimum=30.0)
        first = lifetime.sample(8, spawn_generator(99, index=4))
        second = lifetime.sample(8, spawn_generator(99, index=4))
        np.testing.assert_array_equal(first, second)
        other = lifetime.sample(8, spawn_generator(99, index=5))
        assert not np.array_equal(first, other)
        assert all(value >= 30.0 for value in first)

    @pytest.mark.parametrize(
        "arrival",
        [
            {"kind": "batch", "at": 5.0},
            {"kind": "poisson", "rate_per_hour": 120.0, "start": 10.0},
            {"kind": "uniform", "start": 0.0, "window": 60.0},
        ],
    )
    @pytest.mark.parametrize(
        "lifetime",
        [
            None,
            {"kind": "infinite"},
            {"kind": "fixed", "seconds": 300.0},
            {"kind": "exponential", "mean": 600.0, "minimum": 30.0},
            {"kind": "uniform", "low": 100.0, "high": 200.0},
        ],
    )
    def test_every_kind_round_trips_through_scenario_spec(self, arrival, lifetime):
        from repro.scenarios import ScenarioSpec, WorkloadPhase

        phase = WorkloadPhase(name="p", vm_count=3, arrival=dict(arrival))
        if lifetime is not None:
            phase = WorkloadPhase(
                name="p", vm_count=3, arrival=dict(arrival), lifetime=dict(lifetime)
            )
        spec = ScenarioSpec(name="round-trip", duration=100.0, phases=[phase])
        import json

        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        restored.phases[0].build_generator()  # kinds resolve after the trip


class TestConsolidationInstance:
    def test_shapes_and_feasibility(self, rng):
        demands, capacities = consolidation_instance(30, rng, host_capacity=(1.0, 1.0))
        assert demands.shape[1] == 2
        assert capacities.shape[1] == 2
        # Every VM fits on some host individually.
        assert np.all(demands <= capacities[0] + 1e-9)

    def test_host_pool_suffices_for_ffd(self, rng):
        from repro.core import FirstFitDecreasing

        demands, capacities = consolidation_instance(80, rng)
        result = FirstFitDecreasing().solve(demands, capacities)
        assert result.feasible

    def test_explicit_host_count(self, rng):
        demands, capacities = consolidation_instance(10, rng, n_hosts=42)
        assert capacities.shape[0] == 42

    def test_dimension_mismatch_rejected(self, rng):
        from repro.workloads.distributions import UniformDemandDistribution

        with pytest.raises(ValueError):
            consolidation_instance(
                5,
                rng,
                demand_distribution=UniformDemandDistribution(dimensions=("cpu",)),
                host_capacity=(1.0, 1.0),
            )

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            consolidation_instance(0, rng)
        with pytest.raises(ValueError):
            consolidation_instance(5, rng, slack=0.5)
