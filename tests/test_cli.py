"""Tests for the ``repro-sim`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.scenarios.runner import NONDETERMINISTIC_SECTIONS


class TestScenarioRunPerfFields:
    def test_run_json_reports_wall_clock_and_event_throughput(self, capsys):
        assert (
            main(["scenario", "run", "steady-churn", "--seed", "1", "--duration", "300", "--json"])
            == 0
        )
        result = json.loads(capsys.readouterr().out)
        perf = result["perf"]
        assert perf["wall_clock_seconds"] > 0.0
        assert perf["events_per_second"] > 0.0

    def test_perf_varies_but_simulated_result_does_not(self, capsys):
        """Two CLI runs agree on everything except the wall-clock sections."""
        payloads = []
        for _ in range(2):
            assert (
                main(
                    ["scenario", "run", "flash-crowd", "--seed", "2", "--duration", "300", "--json"]
                )
                == 0
            )
            payloads.append(json.loads(capsys.readouterr().out))
        first, second = payloads
        for section in NONDETERMINISTIC_SECTIONS:
            first.pop(section)
            second.pop(section)
        assert first == second


class TestConsolidateCommand:
    def test_basic_run_prints_table(self, capsys):
        assert main(["consolidate", "--vms", "15", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ffd" in output
        assert "aco" in output
        assert "hosts_used" in output

    def test_with_optimal_solver(self, capsys):
        assert main(["consolidate", "--vms", "8", "--seed", "1", "--optimal"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_distribution_choice(self, capsys):
        assert main(["consolidate", "--vms", "10", "--distribution", "correlated"]) == 0

    def test_invalid_distribution_rejected(self):
        with pytest.raises(SystemExit):
            main(["consolidate", "--distribution", "bogus"])


class TestSimulateCommand:
    def test_basic_simulation(self, capsys):
        assert main(["simulate", "--lcs", "4", "--gms", "1", "--vms", "6", "--duration", "120"]) == 0
        output = capsys.readouterr().out
        assert "Deployment statistics" in output
        assert "Energy" in output

    def test_with_leader_kill(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--lcs",
                    "4",
                    "--gms",
                    "2",
                    "--vms",
                    "4",
                    "--duration",
                    "200",
                    "--kill-leader",
                ]
            )
            == 0
        )
        assert "injected Group Leader failure" in capsys.readouterr().out

    def test_with_energy_management(self, capsys):
        assert (
            main(["simulate", "--lcs", "4", "--gms", "1", "--vms", "2", "--duration", "300", "--energy"])
            == 0
        )


class TestHierarchyCommand:
    def test_prints_hierarchy(self, capsys):
        assert main(["hierarchy", "--lcs", "4", "--gms", "2"]) == 0
        output = capsys.readouterr().out
        assert "Group Leader" in output
        assert "LC lc-000" in output

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCommand:
    #: smoke-2x2 trimmed further so every CLI run stays sub-second.
    RUN_ARGS = ["sweep", "run", "smoke-2x2", "--duration", "300"]

    def test_list_prints_catalog(self, capsys):
        assert main(["sweep", "list"]) == 0
        output = capsys.readouterr().out
        assert "smoke-2x2" in output
        assert "policy-matrix" in output
        assert "paper-e5-grid" in output

    def test_list_json_is_parseable(self, capsys):
        assert main(["sweep", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in entries}
        assert "smoke-2x2" in names
        assert all(entry["runs"] > 0 for entry in entries)

    def test_describe_emits_spec_and_run_count(self, capsys):
        assert main(["sweep", "describe", "smoke-2x2", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "smoke-2x2"
        assert data["runs"] == 4
        assert data["scenarios"] == ["flash-crowd", "steady-churn"]

    def test_describe_requires_a_name(self):
        with pytest.raises(SystemExit):
            main(["sweep", "describe"])

    def test_unknown_sweep_name_lists_alternatives(self, capsys):
        assert main(["sweep", "run", "no-such-sweep"]) == 1
        err = capsys.readouterr().err
        assert "unknown sweep" in err
        assert "smoke-2x2" in err

    def test_run_json_report(self, capsys):
        assert main(self.RUN_ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["sweep"] == "smoke-2x2"
        assert report["total_runs"] == 4
        assert report["failed_runs"] == 0
        assert all(run["status"] == "ok" for run in report["runs"])

    def test_run_human_output_has_aggregates_and_timing(self, capsys):
        assert main(self.RUN_ARGS) == 0
        output = capsys.readouterr().out
        assert "aggregates" in output
        assert "Wall clock" in output

    def test_run_parallel_matches_serial(self, capsys):
        assert main(self.RUN_ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        assert main(self.RUN_ARGS + ["--json", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_policy_override_forces_every_cell(self, capsys):
        assert main(self.RUN_ARGS + ["--json", "--policy", "placement=worst-fit"]) == 0
        report = json.loads(capsys.readouterr().out)
        # Forcing one placement collapses the 2x2 grid to one cell per scenario.
        assert report["total_runs"] == 2
        for run in report["runs"]:
            assert run["resolved_policies"]["placement"] == "worst-fit"

    def test_policy_override_rejects_unknown_policy(self, capsys):
        assert main(self.RUN_ARGS + ["--policy", "placement=bogus"]) == 1
        assert "unknown placement policy" in capsys.readouterr().err

    def test_policy_override_rejects_bad_format(self, capsys):
        assert main(self.RUN_ARGS + ["--policy", "placement"]) == 1
        assert "KIND=NAME" in capsys.readouterr().err

    def test_policy_flag_invalid_for_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "list", "--policy", "placement=best-fit"])

    def test_run_only_flags_rejected_for_list_and_describe(self):
        with pytest.raises(SystemExit):
            main(["sweep", "list", "--csv", "catalog.csv"])
        with pytest.raises(SystemExit):
            main(["sweep", "describe", "smoke-2x2", "--output", "spec.json"])
        with pytest.raises(SystemExit):
            main(["sweep", "list", "--duration", "100"])
        with pytest.raises(SystemExit):
            main(["sweep", "describe", "smoke-2x2", "--jobs", "2"])

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["sweep", "run", "smoke-2x2", "--jobs", "0"])

    def test_unwritable_output_path_still_prints_report(self, tmp_path, capsys):
        bad = tmp_path / "missing-dir" / "report.json"
        assert main(self.RUN_ARGS + ["--json", "--output", str(bad)]) == 1
        captured = capsys.readouterr()
        # The computed report reaches stdout even though the write failed.
        assert json.loads(captured.out)["total_runs"] == 4
        assert "cannot write" in captured.err

    def test_output_and_csv_files_written(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        csv_path = tmp_path / "report.csv"
        assert main(self.RUN_ARGS + ["--output", str(out), "--csv", str(csv_path)]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert report["total_runs"] == 4
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("index,scenario,policies")
        assert len(lines) == 5
