"""Tests for the ``repro-sim`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli.main import main


class TestConsolidateCommand:
    def test_basic_run_prints_table(self, capsys):
        assert main(["consolidate", "--vms", "15", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "ffd" in output
        assert "aco" in output
        assert "hosts_used" in output

    def test_with_optimal_solver(self, capsys):
        assert main(["consolidate", "--vms", "8", "--seed", "1", "--optimal"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_distribution_choice(self, capsys):
        assert main(["consolidate", "--vms", "10", "--distribution", "correlated"]) == 0

    def test_invalid_distribution_rejected(self):
        with pytest.raises(SystemExit):
            main(["consolidate", "--distribution", "bogus"])


class TestSimulateCommand:
    def test_basic_simulation(self, capsys):
        assert main(["simulate", "--lcs", "4", "--gms", "1", "--vms", "6", "--duration", "120"]) == 0
        output = capsys.readouterr().out
        assert "Deployment statistics" in output
        assert "Energy" in output

    def test_with_leader_kill(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--lcs",
                    "4",
                    "--gms",
                    "2",
                    "--vms",
                    "4",
                    "--duration",
                    "200",
                    "--kill-leader",
                ]
            )
            == 0
        )
        assert "injected Group Leader failure" in capsys.readouterr().out

    def test_with_energy_management(self, capsys):
        assert (
            main(["simulate", "--lcs", "4", "--gms", "1", "--vms", "2", "--duration", "300", "--energy"])
            == 0
        )


class TestHierarchyCommand:
    def test_prints_hierarchy(self, capsys):
        assert main(["hierarchy", "--lcs", "4", "--gms", "2"]) == 0
        output = capsys.readouterr().out
        assert "Group Leader" in output
        assert "LC lc-000" in output

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
