"""Paused multicast members: the GL-heartbeat fan-out fix at fleet scale.

An assigned Local Controller only consults the Group Leader channel while
rejoining, so on deterministic networks it *pauses* its subscription (keeping
its fan-out slot) and recovers the missed heartbeat value from the channel
latch when its GM fails.  These tests pin the mechanism's contract:

* paused members receive nothing, and the latch replays exactly what the last
  delivered publish would have said;
* resuming restores the member's original fan-out position, so same-instant
  delivery order is indistinguishable from an uninterrupted subscription;
* the LC rejoin path survives a leader change that happened while paused.
"""

from __future__ import annotations

import pytest

from repro.hierarchy import SnoozeSystem
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.local_controller import GL_HEARTBEAT_GROUP
from repro.hierarchy.system import SystemSpec
from repro.network.message import MessageType
from repro.network.multicast import MulticastRegistry
from repro.network.transport import Network, NetworkConfig
from repro.simulation.engine import Simulator


@pytest.fixture()
def det_system() -> SnoozeSystem:
    """A started deployment on a deterministic (zero jitter/loss) network."""
    system = SnoozeSystem(
        SystemSpec(local_controllers=6, group_managers=2, entry_points=1),
        config=HierarchyConfig(
            seed=7, network=NetworkConfig(base_latency=0.001, jitter=0.0)
        ),
        seed=7,
    )
    system.start()
    return system


class TestGroupPauseResume:
    def _channel(self):
        sim = Simulator()
        network = Network(sim, NetworkConfig(base_latency=0.001, jitter=0.0))
        registry = MulticastRegistry(network)
        group = registry.group("chan")
        received = []
        for name in ("a", "b", "c"):
            network.register(name, lambda m, n=name: received.append((n, m.payload)))
            group.subscribe(name)
        return sim, group, received

    def test_paused_member_receives_nothing(self):
        sim, group, received = self._channel()
        group.pause("b")
        group.publish("a", MessageType.GL_HEARTBEAT, payload={"gl": "a"})
        sim.run(1.0)
        assert {n for n, _ in received} == {"c"}  # sender excluded, b paused

    def test_resume_restores_original_fanout_position(self):
        sim, group, received = self._channel()
        group.pause("a")
        group.publish("c", MessageType.GL_HEARTBEAT, payload=1)
        group.resume("a")
        group.publish("c", MessageType.GL_HEARTBEAT, payload=2)
        sim.run(1.0)
        # "a" resumed into its original slot: it precedes "b" again.
        assert [n for n, _ in received] == ["b", "a", "b"]

    def test_unsubscribe_clears_pause(self):
        _, group, _ = self._channel()
        group.pause("b")
        group.unsubscribe("b")
        assert not group.is_paused("b")
        group.subscribe("b")
        assert not group.is_paused("b")

    def test_pause_ignores_non_members(self):
        _, group, _ = self._channel()
        group.pause("ghost")
        assert not group.is_paused("ghost")

    def test_latch_replays_only_delivered_publishes(self):
        sim, group, _ = self._channel()
        group.publish("a", MessageType.GL_HEARTBEAT, payload={"gl": "old"})
        sim.run(0.5)
        group.publish("a", MessageType.GL_HEARTBEAT, payload={"gl": "new"})
        # The second publish has not been delivered yet (latency 1 ms), so a
        # catch-up read at this instant must still see the first value --
        # exactly what a subscribed member's handler would have seen.
        sender, payload = group.last_delivered(sim.now, 0.001)
        assert payload == {"gl": "old"}
        sim.run(0.6)  # run() takes an absolute time: past the second delivery
        sender, payload = group.last_delivered(sim.now, 0.001)
        assert payload == {"gl": "new"}

    def test_latch_empty_before_any_publish(self):
        _, group, _ = self._channel()
        assert group.last_delivered(10.0, 0.001) is None


class TestAssignedLcPausesGlChannel:
    def test_assigned_lcs_are_paused_on_deterministic_network(self, det_system):
        group = det_system.multicast.group(GL_HEARTBEAT_GROUP)
        assigned = [
            name
            for name, lc in det_system.local_controllers.items()
            if lc.assigned_gm is not None
        ]
        assert assigned, "expected LCs to be assigned after start"
        for name in assigned:
            assert group.is_paused(name)
            assert name in group  # still a member: fan-out slot retained

    def test_jittery_network_keeps_full_subscription(self, small_system):
        group = small_system.multicast.group(GL_HEARTBEAT_GROUP)
        for name, lc in small_system.local_controllers.items():
            if lc.assigned_gm is not None:
                assert not group.is_paused(name)

    def test_rejoin_after_leader_change_while_paused(self):
        """A GM dies after a leader change: the latch hands the LC the new GL."""
        system = SnoozeSystem(
            SystemSpec(local_controllers=9, group_managers=3, entry_points=1),
            config=HierarchyConfig(
                seed=11, network=NetworkConfig(base_latency=0.001, jitter=0.0)
            ),
            seed=11,
        )
        system.start()
        system.run(30.0)
        old_leader = system.current_leader()
        system.kill_group_leader()
        system.run(120.0)
        new_leader = system.current_leader()
        assert new_leader is not None and new_leader != old_leader
        # Kill a surviving *non-leader* GM that manages some LC, forcing that
        # LC through the latch catch-up path while a leader change already
        # happened during its pause.
        victim_gm = next(
            name
            for name, gm in system.group_managers.items()
            if gm.is_running and name != new_leader and gm.local_controllers
        )
        victim_lc = next(iter(system.group_managers[victim_gm].local_controllers))
        lc = system.local_controllers[victim_lc]
        assert system.multicast.group(GL_HEARTBEAT_GROUP).is_paused(victim_lc)
        system.kill_group_manager(victim_gm)
        rejoined = system.run_until(
            lambda: lc.assigned_gm is not None and lc.assigned_gm != victim_gm,
            timeout=240.0,
        )
        assert rejoined
        # The latch catch-up gave the LC a leader that actually exists now.
        assert lc.current_gl == system.current_leader()


class TestDeadlineSinksAndLeases:
    """Heartbeats as vectorized detector restarts (no per-member messages)."""

    def test_publish_rearms_sink_to_delivery_time_deadline(self):
        sim = Simulator()
        network = Network(sim, NetworkConfig(base_latency=0.001, jitter=0.0))
        registry = MulticastRegistry(network)
        group = registry.group("hb")
        from repro.simulation.batch import DeadlineTable

        table = DeadlineTable(sim)
        fired = []
        network.register("gm", lambda m: None)
        network.register("lc", lambda m: fired.append("delivered"))
        group.subscribe("lc")
        handle = table.arm(8.0, lambda: fired.append(("expired", sim.now)))
        group.pause("lc", deadline=handle)
        sim.run(until=2.0)
        group.publish("gm", MessageType.GM_HEARTBEAT, payload={"gm": "gm"})
        sim.run(until=9.9)
        # No message was delivered; the detector was re-armed to
        # publish (2.0) + latency (0.001) + timeout (8.0) = 10.001.
        assert fired == []
        sim.run(until=10.001)
        assert fired == [("expired", 10.001)]

    def test_disconnected_sink_is_skipped_like_its_dropped_delivery(self):
        sim = Simulator()
        network = Network(sim, NetworkConfig(base_latency=0.001, jitter=0.0))
        registry = MulticastRegistry(network)
        group = registry.group("hb")
        from repro.simulation.batch import DeadlineTable

        table = DeadlineTable(sim)
        fired = []
        network.register("gm", lambda m: None)
        network.register("lc", lambda m: None)
        group.subscribe("lc")
        handle = table.arm(8.0, lambda: fired.append(sim.now))
        group.pause("lc", deadline=handle)
        network.disconnect("lc")  # partitioned: deliveries would be dropped
        sim.run(until=2.0)
        group.publish("gm", MessageType.GM_HEARTBEAT, payload={"gm": "gm"})
        sim.run(until=20.0)
        # The original deadline (armed at 0.0) fired untouched at 8.0.
        assert fired == [8.0]

    def test_assigned_lc_holds_heartbeat_lease_and_sends_no_heartbeats(self, det_system):
        lc = next(
            lc
            for lc in det_system.local_controllers.values()
            if lc.assigned_gm is not None
        )
        assert lc._gm_lease is not None
        gm = det_system.group_managers[lc.assigned_gm]
        # The GM's detector for this LC is re-armed by the lease: advance far
        # beyond the heartbeat timeout and the LC must still be a member,
        # with its leased detector armed the whole time.
        det_system.run(60.0)
        assert lc.name in gm.local_controllers
        _gm_endpoint, handle = lc._gm_lease
        assert handle.armed

    def test_lease_stops_with_the_lc_so_the_gm_detects_the_failure(self, det_system):
        lc = next(
            lc
            for lc in det_system.local_controllers.values()
            if lc.assigned_gm is not None
        )
        gm_name = lc.assigned_gm
        det_system.kill_local_controller(lc.name)
        det_system.run(3 * det_system.config.heartbeat_timeout)
        gm = det_system.group_managers[gm_name]
        assert lc.name not in gm.local_controllers  # failure detected
