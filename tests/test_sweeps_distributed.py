"""Tests for the distributed sweep plane: wire framing, coordinator, runners.

The determinism contract under test everywhere: the final report is
byte-identical to the serial executor's for any runner count, any outcome
arrival order, and any injected runner failure (kill, wedge, dropped
connection mid-upload).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.sweeps import (
    DistributedExecutor,
    SweepAborted,
    SweepCoordinator,
    SweepRunner,
    SweepSpec,
    run_sweep,
)
from repro.sweeps.distributed import CoordinatorThread, synthesize_lease_failure
from repro.sweeps.runner import parse_address
from repro.sweeps.wire import (
    FrameError,
    encode_frame,
    read_frame_sync,
    send_frame_sync,
)


def _tiny_sweep(**overrides) -> SweepSpec:
    """The same 2x2 grid the in-process executor tests use."""
    base = dict(
        name="tiny",
        scenarios=["steady-churn", "flash-crowd"],
        policies=[{}, {"placement": {"name": "best-fit"}}],
        seeds=[7],
        duration=300.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


def _fake_payloads(count: int, scenario: str = "s") -> list:
    return [{"index": i, "scenario": scenario} for i in range(count)]


def _fake_ok(payload: dict) -> dict:
    """A deterministic stand-in for ``execute_run`` (coordinator-level tests)."""
    return {
        "run": payload,
        "status": "ok",
        "result": {"echo": payload["index"]},
        "error": None,
        "traceback": None,
        "wall_seconds": 0.01,
    }


def _rpc(sock: socket.socket, message: dict) -> dict:
    send_frame_sync(sock, message)
    reply = read_frame_sync(sock)
    assert reply is not None
    return reply


def _connect(address) -> socket.socket:
    sock = socket.create_connection(address, timeout=5.0)
    _rpc(sock, {"type": "hello", "runner": f"raw-{sock.fileno()}"})
    return sock


def _pull_lease(sock: socket.socket, runner: str, timeout: float = 5.0) -> dict:
    """Pull until a lease is granted (skipping idle replies)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        reply = _rpc(sock, {"type": "pull", "runner": runner})
        if reply["type"] == "lease":
            return reply
        assert reply["type"] == "idle", reply
        time.sleep(reply.get("retry_seconds", 0.05))
    raise AssertionError("no lease granted before timeout")


# ----------------------------------------------------------------------- wire
class TestWireFraming:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        with a, b:
            message = {"type": "outcome", "nested": {"x": [1, 2, 3]}, "s": "héllo"}
            send_frame_sync(a, message)
            assert read_frame_sync(b) == message

    def test_clean_eof_reads_as_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert read_frame_sync(b) is None

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        with b:
            frame = encode_frame({"type": "pull"})
            a.sendall(frame[: len(frame) - 3])  # header + partial body
            a.close()
            with pytest.raises(FrameError):
                read_frame_sync(b)

    def test_oversized_header_rejected_without_allocation(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack(">I", 2**31))
            with pytest.raises(FrameError, match="MAX_FRAME_BYTES"):
                read_frame_sync(b)

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        with a, b:
            body = json.dumps([1, 2]).encode()
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(FrameError, match="object"):
                read_frame_sync(b)

    def test_parse_address(self):
        assert parse_address("10.0.0.1:9999") == ("10.0.0.1", 9999)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("nonsense")


# ---------------------------------------------------------------- coordinator
class TestCoordinator:
    def test_in_process_runner_completes_sweep_in_order(self):
        payloads = _fake_payloads(6)
        with CoordinatorThread(SweepCoordinator(payloads)) as thread:
            runner = SweepRunner(*thread.address, runner_id="r0", fn=_fake_ok)
            assert runner.run() == 6
            outcomes = thread.result(timeout=10.0)
        assert [o["run"]["index"] for o in outcomes] == list(range(6))
        assert all(o["status"] == "ok" for o in outcomes)

    def test_straggler_aware_dispatch_grants_longest_expected_first(self):
        payloads = _fake_payloads(3)
        coordinator = SweepCoordinator(
            payloads, expected_seconds=[0.1, 5.0, 1.0], speculate=False
        )
        with CoordinatorThread(coordinator) as thread:
            with socket.create_connection(thread.address, timeout=5.0) as sock:
                _rpc(sock, {"type": "hello", "runner": "probe"})
                order = [
                    _pull_lease(sock, "probe")["run_id"] for _ in range(3)
                ]
        assert order == [1, 2, 0]

    def test_lease_expiry_reclaims_and_retries_on_another_runner(self):
        payloads = _fake_payloads(1)
        coordinator = SweepCoordinator(payloads, lease_seconds=0.2, speculate=False)
        with CoordinatorThread(coordinator) as thread:
            wedged = _connect(thread.address)  # pulls, never heartbeats, never posts
            with wedged:
                lease = _pull_lease(wedged, "wedged")
                assert lease["run_id"] == 0
                healthy = SweepRunner(*thread.address, runner_id="healthy", fn=_fake_ok)
                assert healthy.run() == 1
                outcomes = thread.result(timeout=10.0)
        assert outcomes[0]["status"] == "ok"
        assert coordinator.stats["reclaimed_expired"] == 1
        assert coordinator.stats["retries"] == 1

    def test_retry_cap_synthesizes_deterministic_failure(self):
        payloads = _fake_payloads(1)
        coordinator = SweepCoordinator(payloads, max_attempts=2, speculate=False)
        with CoordinatorThread(coordinator) as thread:
            for _ in range(2):  # two crash-and-burn runners
                sock = _connect(thread.address)
                _pull_lease(sock, f"crasher-{sock.fileno()}")
                sock.close()  # dropped connection -> disconnect reclaim
                deadline = time.monotonic() + 5.0
                while coordinator.stats["reclaimed_disconnect"] == 0 and not coordinator.done:
                    if time.monotonic() > deadline:
                        raise AssertionError("reclaim never happened")
                    time.sleep(0.01)
            outcomes = thread.result(timeout=10.0)
        assert coordinator.stats["synthesized_failures"] == 1
        assert outcomes[0] == synthesize_lease_failure(payloads[0], 2)
        assert "LeaseExpired" in outcomes[0]["error"]

    def test_connection_dropped_mid_upload_is_reclaimed_and_retried(self):
        payloads = _fake_payloads(2)
        coordinator = SweepCoordinator(payloads, speculate=False)
        with CoordinatorThread(coordinator) as thread:
            sock = _connect(thread.address)
            lease = _pull_lease(sock, "half-uploader")
            frame = encode_frame(
                {
                    "type": "outcome",
                    "lease_id": lease["lease_id"],
                    "run_id": lease["run_id"],
                    "outcome": _fake_ok(lease["run"]),
                }
            )
            sock.sendall(frame[: len(frame) // 2])  # half an outcome, then gone
            sock.close()
            runner = SweepRunner(*thread.address, runner_id="healthy", fn=_fake_ok)
            assert runner.run() >= 1
            outcomes = thread.result(timeout=10.0)
        assert [o["run"]["index"] for o in outcomes] == [0, 1]
        assert all(o["status"] == "ok" for o in outcomes)
        assert coordinator.stats["reclaimed_disconnect"] == 1
        assert coordinator.stats["retries"] == 1

    def test_speculative_twin_is_discarded_first_result_wins(self):
        payloads = _fake_payloads(2)
        coordinator = SweepCoordinator(payloads, speculate=True)

        def post(sock, lease, outcome):
            return _rpc(
                sock,
                {
                    "type": "outcome",
                    "lease_id": lease["lease_id"],
                    "run_id": lease["run_id"],
                    "outcome": outcome,
                },
            )

        with CoordinatorThread(coordinator) as thread:
            first = socket.create_connection(thread.address, timeout=5.0)
            second = socket.create_connection(thread.address, timeout=5.0)
            with first, second:
                _rpc(first, {"type": "hello", "runner": "a"})
                _rpc(second, {"type": "hello", "runner": "b"})
                lease_a0 = _pull_lease(first, "a")  # drains the queue onto runner a
                lease_a1 = _pull_lease(first, "a")
                lease_b = _pull_lease(second, "b")  # speculative twin of a held cell
                assert not lease_a0["speculative"] and not lease_a1["speculative"]
                assert lease_b["speculative"]
                twin = lease_a0 if lease_b["run_id"] == lease_a0["run_id"] else lease_a1
                other = lease_a1 if twin is lease_a0 else lease_a0
                outcome = _fake_ok(payloads[twin["run_id"]])
                winner = post(second, lease_b, outcome)
                loser = post(first, twin, {**outcome, "wall_seconds": 9.9})
                final = post(first, other, _fake_ok(payloads[other["run_id"]]))
            outcomes = thread.result(timeout=10.0)
        assert winner["accepted"] and final["accepted"] and not loser["accepted"]
        assert outcomes[twin["run_id"]]["wall_seconds"] == 0.01  # first post won
        assert coordinator.stats["speculative_leases"] == 1
        assert coordinator.stats["duplicates_discarded"] == 1
        # The discarded twin is a duplicate, never a reclaim/retry.
        assert coordinator.stats["retries"] == 0

    def test_third_lease_on_a_cell_is_never_granted(self):
        coordinator = SweepCoordinator(_fake_payloads(1), speculate=True)
        with CoordinatorThread(coordinator) as thread:
            socks = [socket.create_connection(thread.address, timeout=5.0) for _ in range(3)]
            try:
                for i, sock in enumerate(socks):
                    _rpc(sock, {"type": "hello", "runner": f"r{i}"})
                _pull_lease(socks[0], "r0")
                _pull_lease(socks[1], "r1")
                reply = _rpc(socks[2], {"type": "pull", "runner": "r2"})
                assert reply["type"] == "idle"
            finally:
                for sock in socks:
                    sock.close()

    def test_heartbeats_keep_a_slow_run_leased(self):
        payloads = _fake_payloads(2)
        coordinator = SweepCoordinator(payloads, lease_seconds=0.5, speculate=False)

        def slow_ok(payload: dict) -> dict:
            time.sleep(0.8)  # longer than the lease; heartbeats must cover it
            return _fake_ok(payload)

        with CoordinatorThread(coordinator) as thread:
            runner = SweepRunner(*thread.address, runner_id="slow", fn=slow_ok)
            assert runner.run() == 2
            outcomes = thread.result(timeout=10.0)
        assert all(o["status"] == "ok" for o in outcomes)
        assert coordinator.stats["reclaimed_expired"] == 0
        assert coordinator.stats["heartbeats"] >= 1

    def test_abort_fails_waiters_and_shuts_runners_down(self):
        coordinator = SweepCoordinator(_fake_payloads(4))
        with CoordinatorThread(coordinator) as thread:
            thread.address  # wait for bind
            coordinator.abort("test abort")
            with pytest.raises(SweepAborted, match="test abort"):
                thread.result(timeout=10.0)

    def test_empty_payload_list_is_immediately_done(self):
        coordinator = SweepCoordinator([])
        assert coordinator.done
        with CoordinatorThread(coordinator) as thread:
            assert thread.result(timeout=10.0) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="lease_seconds"):
            SweepCoordinator(_fake_payloads(1), lease_seconds=0.0)
        with pytest.raises(ValueError, match="max_attempts"):
            SweepCoordinator(_fake_payloads(1), max_attempts=0)
        with pytest.raises(ValueError, match="expected_seconds"):
            SweepCoordinator(_fake_payloads(2), expected_seconds=[1.0])


# -------------------------------------------------------- distributed executor
class TestDistributedExecutor:
    @pytest.fixture(scope="class")
    def serial_json(self) -> str:
        return run_sweep(_tiny_sweep(), jobs=1).to_json()

    @pytest.mark.parametrize("runners", [1, 2, 4])
    def test_report_is_byte_identical_to_serial(self, runners, serial_json):
        report = run_sweep(_tiny_sweep(), runners=runners)
        assert report.failed == 0
        assert report.to_json() == serial_json
        assert report.timing["jobs"] == runners

    def test_killed_runner_mid_sweep_keeps_report_identical(self, serial_json):
        executor = DistributedExecutor(
            runners=2,
            lease_seconds=1.0,
            runner_env=[{"REPRO_SWEEP_RUNNER_FAULT": "die-after-pulls:1"}, None],
        )
        report = run_sweep(_tiny_sweep(), executor=executor)
        assert report.to_json() == serial_json
        assert executor.last_stats["reclaimed_disconnect"] >= 1
        assert executor.last_stats["retries"] >= 1

    def test_wedged_runner_mid_sweep_keeps_report_identical(self, serial_json):
        # Speculation off: recovery must come from the lease *deadline*, not
        # from a speculative twin racing the wedged runner.
        executor = DistributedExecutor(
            runners=2,
            lease_seconds=0.5,
            speculate=False,
            runner_env=[{"REPRO_SWEEP_RUNNER_FAULT": "wedge-after-pulls:1"}, None],
        )
        report = run_sweep(_tiny_sweep(), executor=executor)
        assert report.to_json() == serial_json
        assert executor.last_stats["reclaimed_expired"] >= 1

    def test_whole_fleet_dying_aborts_instead_of_hanging(self):
        executor = DistributedExecutor(
            runners=1,
            runner_env=[{"REPRO_SWEEP_RUNNER_FAULT": "die-after-pulls:1"}],
        )
        with pytest.raises(SweepAborted, match="exit codes"):
            run_sweep(_tiny_sweep(), executor=executor)

    def test_engine_rejects_jobs_and_runners_together(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep(_tiny_sweep(), jobs=2, runners=2)

    def test_executor_validation(self):
        with pytest.raises(ValueError, match="runners"):
            DistributedExecutor(runners=0)
        with pytest.raises(ValueError, match="runner_env"):
            DistributedExecutor(runners=2, runner_env=[None])

    def test_empty_payload_list_short_circuits(self):
        assert DistributedExecutor(runners=2).map([]) == []


# ------------------------------------------------------------------------ CLI
class TestSweepDistributedCLI:
    RUN_ARGS = ["sweep", "run", "smoke-2x2", "--duration", "300"]

    def test_run_with_runners_matches_serial_bytes(self, capsys):
        from repro.cli.main import main

        assert main(self.RUN_ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        assert main(self.RUN_ARGS + ["--json", "--runners", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_serve_and_work_round_trip_matches_serial(self, tmp_path, capsys):
        from repro.cli.main import main

        assert main(self.RUN_ARGS + ["--json"]) == 0
        serial = capsys.readouterr().out
        port_file = tmp_path / "port"
        out_file = tmp_path / "report.json"
        serve_rc: list = []

        def serve() -> None:
            serve_rc.append(
                main(
                    [
                        "sweep",
                        "serve",
                        "smoke-2x2",
                        "--duration",
                        "300",
                        "--host",
                        "127.0.0.1",
                        "--port-file",
                        str(port_file),
                        "--output",
                        str(out_file),
                    ]
                )
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        port = int(port_file.read_text().strip())
        assert main(["sweep", "work", "--connect", f"127.0.0.1:{port}"]) == 0
        thread.join(timeout=30.0)
        assert serve_rc == [0]
        capsys.readouterr()
        assert out_file.read_text().strip() == serial.strip()

    def test_work_requires_connect(self):
        from repro.cli.main import main

        with pytest.raises(SystemExit):
            main(["sweep", "work"])

    def test_work_reports_unreachable_coordinator(self, capsys):
        from repro.cli.main import main

        assert main(["sweep", "work", "--connect", "127.0.0.1:1"]) == 1
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_flag_action_mismatches_rejected(self):
        from repro.cli.main import main

        with pytest.raises(SystemExit):
            main(["sweep", "list", "--runners", "2"])
        with pytest.raises(SystemExit):
            main(["sweep", "run", "smoke-2x2", "--connect", "h:1"])
        with pytest.raises(SystemExit):
            main(["sweep", "run", "smoke-2x2", "--jobs", "2", "--runners", "2"])
        with pytest.raises(SystemExit):
            main(["sweep", "run", "smoke-2x2", "--objectives", "energy_kwh"])
        with pytest.raises(SystemExit):
            main(["sweep", "run", "smoke-2x2", "--port-file", "p"])
