"""Tests for the unified policy subsystem: registry, ClusterView, decisions,
declarative selection through HierarchyConfig / ScenarioSpec / CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli.main import main
from repro.cluster.node import NodeState
from repro.hierarchy.config import HierarchyConfig
from repro.policies import (
    AssignmentPolicy,
    BestFitPlacement,
    ClusterView,
    DispatchingPolicy,
    FirstFitPlacement,
    LeastLoadedAssignment,
    MigrationPlan,
    PlacementPolicy,
    ReconfigurationPolicy,
    RoundRobinAssignment,
    WorstFitPlacement,
    get_policy_spec,
    iter_policy_specs,
    make_policy,
    policy_kinds,
    policy_names,
    register_policy,
)
from repro.policies.registry import validate_policy_selection
from repro.scenarios import ScenarioSpec, WorkloadPhase, run_scenario
from repro.scheduling import (
    RelocationDecision,
    ReconfigurationPlan,
    make_dispatching_policy,
    make_placement_policy,
)

from tests.conftest import make_node, make_vm

EXPECTED_KINDS = {
    "assignment",
    "dispatching",
    "overload-relocation",
    "placement",
    "reconfiguration",
    "underload-relocation",
}


class TestRegistry:
    def test_all_kinds_registered(self):
        assert EXPECTED_KINDS <= set(policy_kinds())

    def test_every_policy_constructs_from_spec_defaults(self):
        for spec in iter_policy_specs():
            policy = make_policy(spec.kind, spec.name, **spec.defaults())
            assert policy is not None
            # And again with no parameters at all: every registered policy
            # must be constructible out of the box.
            assert make_policy(spec.kind, spec.name) is not None

    def test_registry_backs_the_cli_with_no_hand_maintained_tables(self):
        assert set(policy_names("placement")) == {
            "first-fit",
            "best-fit",
            "worst-fit",
            "round-robin",
        }
        assert set(policy_names("reconfiguration")) == {
            "aco",
            "aco-vectorized",
            "distributed-aco",
            "ffd",
            "bfd",
            "wfd",
        }

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match=r"best-fit.*first-fit"):
            make_policy("placement", "nope")

    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(ValueError, match="placement"):
            make_policy("teleportation", "magic")

    def test_unknown_parameter_rejected_with_schema(self):
        with pytest.raises(ValueError, match="n_ants"):
            make_policy("reconfiguration", "aco", colony_size=3)

    def test_legacy_factories_list_valid_names_on_unknown(self):
        with pytest.raises(ValueError, match=r"round-robin.*worst-fit"):
            make_placement_policy("nope")
        with pytest.raises(ValueError, match=r"first-fit.*least-loaded.*round-robin"):
            make_dispatching_policy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy("placement", name="first-fit")
            class Impostor:
                name = "first-fit"

    def test_validate_selection(self):
        spec = validate_policy_selection("placement", {"name": "best-fit"})
        assert spec.name == "best-fit"
        with pytest.raises(ValueError, match="dictionary"):
            validate_policy_selection("placement", "best-fit")
        with pytest.raises(ValueError, match="choose from"):
            validate_policy_selection("placement", {"name": "bogus"})


class TestClusterView:
    def make_cluster(self):
        nodes = [make_node(f"node-{i}") for i in range(4)]
        nodes[0].place_vm(make_vm(0.5, 0.5, 0.5))
        nodes[1].place_vm(make_vm(0.8, 0.8, 0.8))
        nodes[3].state = NodeState.SUSPENDED
        return nodes

    def test_view_is_sorted_by_node_id(self):
        nodes = self.make_cluster()
        view = ClusterView.from_nodes(reversed(nodes))
        assert list(view.node_ids) == sorted(node.node_id for node in nodes)

    def test_feasible_mask_excludes_full_and_suspended(self):
        view = ClusterView.from_nodes(self.make_cluster())
        mask = view.feasible_mask(np.array([0.3, 0.3, 0.3]))
        assert list(mask) == [True, False, True, False]

    def test_reserved_and_used_match_nodes(self):
        nodes = self.make_cluster()
        view = ClusterView.from_nodes(nodes)
        for node in nodes:
            index = view.index_of(node.node_id)
            assert np.allclose(view.reserved[index], node.reserved().values)
            assert np.allclose(view.capacities[index], node.capacity.values)

    def test_node_lookup(self):
        nodes = self.make_cluster()
        view = ClusterView.from_nodes(nodes)
        assert view.node_by_id("node-2") is nodes[2]
        assert view.node_by_id("missing") is None
        assert view.index_of("missing") is None

    def test_empty_view(self):
        view = ClusterView.from_nodes([])
        assert len(view) == 0
        assert view.feasible_mask(np.array([0.1, 0.1, 0.1])).size == 0

    def test_zero_capacity_dimension_yields_finite_scores(self):
        """Regression: a node advertising 0 capacity in some dimension (e.g. a
        diskless or NIC-less tier) used to make ``residual_after`` and
        ``headroom_fractions`` divide by zero and poison best/worst-fit scoring
        with NaN/inf.  Zero-capacity dimensions now contribute 0 headroom."""
        nodes = [make_node("node-0"), make_node("node-1", network=0.0)]
        nodes[0].place_vm(make_vm(0.4, 0.4, 0.1))
        view = ClusterView.from_nodes(nodes)
        residual = view.residual_after(np.array([0.2, 0.2, 0.0]))
        headroom = view.headroom_fractions()
        assert np.all(np.isfinite(residual))
        assert np.all(np.isfinite(headroom))
        # The degenerate dimension contributes nothing, the others still count.
        index = view.index_of("node-1")
        assert headroom[index] == pytest.approx(2.0)


def _reference_select(policy_name, vm, nodes):
    """The historical pure-Python policy semantics, as a parity oracle."""
    feasible = [n for n in nodes if n.is_available_for_placement and n.fits(vm)]
    if not feasible:
        return None
    if policy_name == "first-fit":
        return min(feasible, key=lambda n: n.node_id)
    if policy_name == "best-fit":
        def residual_after(n):
            return float(np.sum((n.available().values - vm.requested.values) / n.capacity.values))

        return min(feasible, key=lambda n: (residual_after(n), n.node_id))
    if policy_name == "worst-fit":
        def residual(n):
            return float(np.sum(n.available().values / n.capacity.values))

        return max(feasible, key=lambda n: (residual(n), n.node_id))
    raise AssertionError(policy_name)


class TestVectorizedPlacementParity:
    @pytest.mark.parametrize("policy_name", ["first-fit", "best-fit", "worst-fit"])
    def test_matches_reference_on_random_clusters(self, policy_name):
        rng = np.random.default_rng(42)
        policy = make_policy("placement", policy_name)
        for _ in range(25):
            nodes = [make_node(f"node-{i:02d}") for i in range(8)]
            for node in nodes:
                for _ in range(int(rng.integers(0, 4))):
                    size = float(rng.uniform(0.05, 0.3))
                    node.place_vm(make_vm(size, size, size))
                if rng.random() < 0.2:
                    node.state = NodeState.SUSPENDED
            size = float(rng.uniform(0.05, 0.6))
            vm = make_vm(size, size, size)
            expected = _reference_select(policy_name, vm, nodes)
            chosen = policy.select(vm, nodes)
            if expected is None:
                assert chosen is None
            else:
                assert chosen is expected

    def test_decision_object_carries_reason_when_nothing_fits(self):
        node = make_node("full")
        node.place_vm(make_vm(0.9, 0.9, 0.9))
        view = ClusterView.from_nodes([node])
        decision = BestFitPlacement().decide(make_vm(0.5, 0.5, 0.5), view)
        assert not decision.placed
        assert decision.reason


class TestDecisionVocabulary:
    def test_relocation_and_reconfiguration_share_migration_plan(self):
        assert RelocationDecision is MigrationPlan
        assert ReconfigurationPlan is MigrationPlan

    def test_migration_plan_defaults(self):
        plan = MigrationPlan()
        assert plan.empty
        assert plan.hosts_saved == 0
        assert len(plan) == 0


class TestAssignmentPolicies:
    def test_round_robin_rotates(self):
        policy = RoundRobinAssignment()
        gm_ids = ["gm-00", "gm-01", "gm-02"]
        chosen = [policy.choose(gm_ids, {}) for _ in range(3)]
        assert chosen == gm_ids

    def test_least_loaded_picks_fewest_lcs(self):
        policy = LeastLoadedAssignment()
        counts = {"gm-00": 5, "gm-01": 1, "gm-02": 3}
        assert policy.choose(sorted(counts), counts) == "gm-01"

    def test_empty_gm_list(self):
        assert RoundRobinAssignment().choose([], {}) is None
        assert LeastLoadedAssignment().choose([], {}) is None


class TestHierarchyConfigPolicies:
    def test_legacy_string_fields_drive_resolved_selection(self):
        config = HierarchyConfig(placement_policy="best-fit", assignment_policy="least-loaded")
        resolved = config.resolved_policies()
        assert resolved["placement"] == {"name": "best-fit"}
        assert resolved["assignment"] == {"name": "least-loaded"}
        assert resolved["reconfiguration"] == {"name": "aco"}
        # The authored block stays as written (empty here), so replace()
        # and serialization carry intent, not derived state.
        assert config.policies == {}

    def test_policy_block_wins_and_syncs_legacy_fields(self):
        config = HierarchyConfig(
            placement_policy="first-fit",
            policies={"placement": {"name": "worst-fit"}},
        )
        assert config.placement_policy == "worst-fit"
        assert config.policy_name("placement") == "worst-fit"

    def test_unknown_policy_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="choose from"):
            HierarchyConfig(placement_policy="bogus")
        with pytest.raises(ValueError, match="choose from"):
            HierarchyConfig(policies={"reconfiguration": {"name": "simulated-annealing"}})
        with pytest.raises(ValueError, match="dictionary"):
            HierarchyConfig(policies={"placement": "best-fit"})

    def test_build_policy_returns_registered_instances(self):
        config = HierarchyConfig(
            policies={
                "placement": {"name": "worst-fit"},
                "reconfiguration": {"name": "ffd"},
            }
        )
        assert isinstance(config.build_policy("placement"), WorstFitPlacement)
        reconfiguration = config.build_policy("reconfiguration")
        assert isinstance(reconfiguration, ReconfigurationPolicy)
        assert reconfiguration.algorithm.name == "ffd"

    def test_build_policy_entry_params_override_runtime_extras(self):
        config = HierarchyConfig(
            policies={"reconfiguration": {"name": "aco", "n_cycles": 3}},
            max_migrations_per_round=2,
        )
        policy = config.build_policy(
            "reconfiguration", max_migrations=config.max_migrations_per_round
        )
        assert policy.max_migrations == 2
        assert policy.algorithm.parameters.n_cycles == 3

    def test_legacy_field_mutation_after_construction_is_honored(self):
        config = HierarchyConfig()
        config.placement_policy = "best-fit"
        assert config.policy_name("placement") == "best-fit"
        assert isinstance(config.build_policy("placement"), BestFitPlacement)
        config.placement_policy = "bogus"
        with pytest.raises(ValueError, match="choose from"):
            config.build_policy("placement")

    def test_dataclasses_replace_with_legacy_field_is_honored(self):
        import dataclasses

        replaced = dataclasses.replace(HierarchyConfig(), placement_policy="best-fit")
        assert replaced.placement_policy == "best-fit"
        assert replaced.policy_name("placement") == "best-fit"

    def test_policy_block_mutation_after_construction_is_honored(self):
        config = HierarchyConfig()
        config.policies["placement"] = {"name": "best-fit"}
        assert config.policy_name("placement") == "best-fit"
        assert isinstance(config.build_policy("placement"), BestFitPlacement)
        # Reading through the policy API re-syncs the back-compat string.
        assert config.placement_policy == "best-fit"

    def test_defaults_are_backward_compatible(self):
        config = HierarchyConfig()
        assert config.policy_name("placement") == "first-fit"
        assert config.policy_name("dispatching") == "first-fit"
        assert config.policy_name("assignment") == "round-robin"
        assert config.policy_name("overload-relocation") == "greedy"
        assert config.policy_name("underload-relocation") == "all-or-nothing"


def _policy_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="policy-test",
        duration=600.0,
        local_controllers=4,
        group_managers=2,
        config={"reconfiguration_interval": 300.0},
        policies={
            "placement": {"name": "best-fit"},
            "reconfiguration": {"name": "aco", "n_ants": 4, "n_cycles": 5},
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=12,
                arrival={"kind": "poisson", "rate_per_hour": 360.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.6},
                lifetime={"kind": "exponential", "mean": 200.0, "minimum": 30.0},
            )
        ],
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestScenarioPolicies:
    def test_round_trip_through_json(self):
        spec = _policy_spec()
        decoded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert decoded == spec
        assert decoded.policies["reconfiguration"]["n_ants"] == 4

    def test_every_registered_policy_round_trips_through_scenario_json(self):
        for registered in iter_policy_specs():
            spec = _policy_spec(policies={registered.kind: {"name": registered.name}})
            decoded = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert decoded == spec
            assert decoded.policies[registered.kind]["name"] == registered.name

    def test_unknown_policy_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            _policy_spec(policies={"teleportation": {"name": "magic"}})

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError, match="choose from"):
            _policy_spec(policies={"placement": {"name": "bogus"}})

    def test_unknown_policy_parameter_rejected(self):
        with pytest.raises(ValueError, match="colony_size"):
            _policy_spec(policies={"reconfiguration": {"name": "aco", "colony_size": 9}})

    def test_runtime_parameters_rejected_declaratively(self):
        # thresholds/rng carry live runtime objects; JSON cannot express them.
        with pytest.raises(ValueError, match="runtime"):
            _policy_spec(policies={"reconfiguration": {"name": "aco", "rng": 7}})
        with pytest.raises(ValueError, match="runtime"):
            _policy_spec(
                policies={
                    "overload-relocation": {"name": "greedy", "thresholds": {"overload": 0.9}}
                }
            )
        with pytest.raises(ValueError, match="runtime"):
            HierarchyConfig(
                policies={"underload-relocation": {"name": "all-or-nothing", "thresholds": {}}}
            )

    def test_policies_not_allowed_inside_config_block(self):
        with pytest.raises(ValueError, match="top-level 'policies' section"):
            _policy_spec(config={"policies": {"placement": {"name": "best-fit"}}})

    def test_policies_reach_hierarchy_config(self):
        config = _policy_spec().hierarchy_config(seed=5)
        assert config.policy_name("placement") == "best-fit"
        assert config.policy_name("reconfiguration") == "aco"
        assert config.placement_policy == "best-fit"

    def test_same_seed_runs_with_policy_block_are_byte_identical(self):
        first = run_scenario(_policy_spec(), seed=11).canonical_json()
        second = run_scenario(_policy_spec(), seed=11).canonical_json()
        assert first == second
        decoded = json.loads(first)
        assert decoded["policies"]["placement"] == "best-fit"
        assert decoded["policies"]["reconfiguration"] == "aco"

    def test_legacy_config_strings_still_work_in_scenarios(self):
        spec = _policy_spec(
            policies={},
            config={"placement_policy": "worst-fit", "reconfiguration_interval": 300.0},
        )
        config = spec.hierarchy_config(seed=0)
        assert config.policy_name("placement") == "worst-fit"


class TestPolicyCli:
    def test_policy_list_enumerates_the_whole_registry(self, capsys):
        assert main(["policy", "list"]) == 0
        output = capsys.readouterr().out
        for spec in iter_policy_specs():
            assert spec.name in output
            assert spec.kind in output

    def test_policy_list_kind_filter(self, capsys):
        assert main(["policy", "list", "placement", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {e["kind"] for e in entries} == {"placement"}
        assert main(["policy", "list", "teleportation"]) == 1
        assert "unknown policy kind" in capsys.readouterr().err

    def test_policy_list_json(self, capsys):
        assert main(["policy", "list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {(e["kind"], e["name"]) for e in entries} == {
            (s.kind, s.name) for s in iter_policy_specs()
        }

    def test_policy_describe_json_matches_registry(self, capsys):
        assert main(["policy", "describe", "reconfiguration", "aco", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data == get_policy_spec("reconfiguration", "aco").describe()

    def test_policy_describe_table_without_json(self, capsys):
        assert main(["policy", "describe", "reconfiguration", "aco"]) == 0
        output = capsys.readouterr().out
        assert "reconfiguration / aco" in output
        assert "n_ants" in output

    def test_policy_list_rejects_trailing_name(self):
        with pytest.raises(SystemExit):
            main(["policy", "list", "placement", "best-fit"])

    def test_policy_describe_unknown_fails_cleanly(self, capsys):
        assert main(["policy", "describe", "placement", "bogus"]) == 1
        assert "choose from" in capsys.readouterr().err

    def test_scenario_run_with_policy_override(self, capsys):
        assert (
            main(
                [
                    "scenario",
                    "run",
                    "steady-churn",
                    "--seed",
                    "0",
                    "--duration",
                    "300",
                    "--policy",
                    "placement=worst-fit",
                    "--json",
                ]
            )
            == 0
        )
        result = json.loads(capsys.readouterr().out)
        assert result["policies"]["placement"] == "worst-fit"

    def test_same_name_override_preserves_tuned_parameters(self):
        from repro.cli.main import _apply_policy_overrides
        from repro.scenarios import get_scenario

        spec = get_scenario("aco-consolidation-cycle")
        same = _apply_policy_overrides(spec, {"reconfiguration": {"name": "aco"}})
        assert same.policies["reconfiguration"]["n_cycles"] == 12
        different = _apply_policy_overrides(spec, {"reconfiguration": {"name": "ffd"}})
        assert different.policies["reconfiguration"] == {"name": "ffd"}
        assert different.policies["placement"] == {"name": "best-fit"}

    def test_scenario_describe_previews_policy_overrides(self, capsys):
        assert (
            main(["scenario", "describe", "steady-churn", "--policy", "placement=best-fit"])
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["policies"]["placement"] == {"name": "best-fit"}
        assert main(["scenario", "describe", "steady-churn", "--policy", "placement=bogus"]) == 1
        assert "choose from" in capsys.readouterr().err

    def test_scenario_list_rejects_policy_overrides(self):
        with pytest.raises(SystemExit):
            main(["scenario", "list", "--policy", "placement=best-fit"])

    def test_scenario_run_with_bad_policy_override_fails_cleanly(self, capsys):
        assert (
            main(["scenario", "run", "steady-churn", "--policy", "placement=bogus"]) == 1
        )
        assert "choose from" in capsys.readouterr().err
        assert (
            main(["scenario", "run", "steady-churn", "--policy", "malformed"]) == 1
        )
        assert "KIND=NAME" in capsys.readouterr().err


class TestNoStringComparisonOutsidePolicies:
    def test_base_classes_expose_kind(self):
        assert PlacementPolicy.kind == "placement"
        assert DispatchingPolicy.kind == "dispatching"
        assert AssignmentPolicy.kind == "assignment"

    def test_group_manager_uses_registered_policies(self):
        from repro.hierarchy.system import SnoozeSystem, SystemSpec

        system = SnoozeSystem(
            SystemSpec(local_controllers=2, group_managers=1),
            config=HierarchyConfig(assignment_policy="least-loaded"),
        )
        gm = next(iter(system.group_managers.values()))
        assert isinstance(gm.assignment_policy, LeastLoadedAssignment)
        assert isinstance(gm.placement_policy, FirstFitPlacement)
