"""Property-based tests (hypothesis) for the unified policy API.

Two families of invariants:

* **Vectorized == scalar**: every decision the numpy-backed
  :class:`~repro.policies.view.ClusterView` math takes (placement scoring,
  relocation destination selection, reconfiguration eligibility) must match a
  straightforward per-node Python reference on randomized clusters.  The
  references below deliberately re-derive the math with plain loops -- they
  share no code with the vectorized implementations.
* **Feasibility**: no registered policy ever produces a decision that violates
  node capacities -- placements fit, relocation plans apply cleanly through
  ``place_vm``/``remove_vm`` (which raise on violation), reconfiguration plans
  execute move-by-move without overshooting any host.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.node import NodeState, PhysicalNode
from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.policies import (
    ClusterView,
    OverloadRelocationPolicy,
    ReconfigurationPolicy,
    UnderloadRelocationPolicy,
    UtilizationThresholds,
    make_policy,
    policy_names,
)
from repro.policies.view import FIT_TOLERANCE

DIMS = len(DEFAULT_DIMENSIONS)
THRESHOLDS = UtilizationThresholds(underload=0.25, overload=0.8)


# --------------------------------------------------------------------- builders
@st.composite
def clusters(draw, max_nodes: int = 7, max_vms: int = 14):
    """Randomized clusters: mixed capacities, partial packing, varied usage.

    VMs are placed only where they fit (so the cluster starts feasible) and
    each gets an independent usage fraction, decoupling the monitoring view
    from the reservation view the way live traces do.
    """
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    nodes = []
    for index in range(n_nodes):
        capacity = draw(
            st.lists(
                st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
                min_size=DIMS,
                max_size=DIMS,
            )
        )
        nodes.append(
            PhysicalNode(f"n{index:02d}", ResourceVector(capacity, DEFAULT_DIMENSIONS))
        )
    n_vms = draw(st.integers(min_value=0, max_value=max_vms))
    for _ in range(n_vms):
        demand = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=0.6, allow_nan=False),
                min_size=DIMS,
                max_size=DIMS,
            )
        )
        vm = VirtualMachine(ResourceVector(demand, DEFAULT_DIMENSIONS))
        target = nodes[draw(st.integers(min_value=0, max_value=n_nodes - 1))]
        if target.state is NodeState.ON and target.fits(vm):
            target.place_vm(vm)
            fraction = draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
            vm.used = vm.requested * fraction
    # Occasionally suspend a node so placeability filtering is exercised.
    if n_nodes > 2 and draw(st.booleans()):
        victim = nodes[draw(st.integers(min_value=0, max_value=n_nodes - 1))]
        if victim.vm_count == 0:
            victim.state = NodeState.SUSPENDED
    return nodes


@st.composite
def demands(draw):
    values = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=0.8, allow_nan=False),
            min_size=DIMS,
            max_size=DIMS,
        )
    )
    return VirtualMachine(ResourceVector(values, DEFAULT_DIMENSIONS))


# ----------------------------------------------------------- scalar references
def _fits_scalar(node: PhysicalNode, vm: VirtualMachine, extra=None) -> bool:
    reserved = node.reserved().values.copy()
    if extra is not None:
        reserved = reserved + extra
    return node.is_available_for_placement and bool(
        np.all(reserved + vm.requested.values <= node.capacity.values + FIT_TOLERANCE)
    )


def _residual_scalar(node: PhysicalNode, vm: VirtualMachine) -> float:
    remaining = node.capacity.values - node.reserved().values - vm.requested.values
    return float(sum(remaining[d] / node.capacity.values[d] for d in range(DIMS)))


def _headroom_scalar(node: PhysicalNode) -> float:
    free = np.clip(node.capacity.values - node.reserved().values, 0.0, None)
    return float(sum(free[d] / node.capacity.values[d] for d in range(DIMS)))


def _cpu(node: PhysicalNode) -> int:
    dims = node.capacity.dimensions
    return dims.index("cpu") if "cpu" in dims else 0


def _overload_reference(source, destinations, thresholds):
    """Plain-Python re-derivation of the greedy overload relocation policy."""
    cpu = _cpu(source)
    capacity = source.capacity.values[cpu]
    moves = []
    if capacity <= 0:
        return moves
    usage = source.used().values[cpu]
    target = thresholds.overload * capacity
    if usage <= target:
        return moves
    candidates = [
        node
        for node in destinations
        if node.node_id != source.node_id and node.is_available_for_placement
    ]
    added = {node.node_id: np.zeros(DIMS) for node in candidates}
    for vm in sorted(source.vms, key=lambda vm: vm.used.values[cpu], reverse=True):
        if usage <= target:
            break
        best, best_headroom = None, -np.inf
        for node in candidates:
            if not _fits_scalar(node, vm, extra=added[node.node_id]):
                continue
            cpu_cap = node.capacity.values[cpu]
            usage_after = node.used().values[cpu] + added[node.node_id][cpu] + vm.used.values[cpu]
            if usage_after > thresholds.overload * cpu_cap:
                continue
            headroom = cpu_cap - node.used().values[cpu] - added[node.node_id][cpu]
            if headroom > best_headroom:  # strict: first occurrence wins ties
                best, best_headroom = node, headroom
        if best is None:
            continue
        moves.append((vm.vm_id, source.node_id, best.node_id))
        added[best.node_id] += vm.requested.values
        usage -= vm.used.values[cpu]
    return moves


# ------------------------------------------------------------- view == scalar
class TestClusterViewMatchesScalar:
    @given(nodes=clusters(), vm=demands())
    @settings(max_examples=40, deadline=None)
    def test_feasible_mask_matches_per_node_checks(self, nodes, vm):
        view = ClusterView.from_nodes(nodes)
        mask = view.feasible_mask(vm.requested.values)
        for index, node in enumerate(view.nodes):
            assert bool(mask[index]) == _fits_scalar(node, vm)

    @given(nodes=clusters(), vm=demands())
    @settings(max_examples=40, deadline=None)
    def test_residual_and_headroom_scores_match(self, nodes, vm):
        view = ClusterView.from_nodes(nodes)
        residual = view.residual_after(vm.requested.values)
        headroom = view.headroom_fractions()
        for index, node in enumerate(view.nodes):
            assert residual[index] == pytest.approx(_residual_scalar(node, vm), abs=1e-12)
            assert headroom[index] == pytest.approx(_headroom_scalar(node), abs=1e-12)

    @given(nodes=clusters())
    @settings(max_examples=40, deadline=None)
    def test_cpu_utilization_matches_node_utilization(self, nodes):
        view = ClusterView.from_nodes(nodes)
        utilization = view.cpu_utilization()
        for index, node in enumerate(view.nodes):
            assert min(float(utilization[index]), 1.0) == pytest.approx(
                node.utilization(), abs=1e-12
            )


class TestPlacementMatchesScalar:
    @given(nodes=clusters(), vm=demands())
    @settings(max_examples=40, deadline=None)
    def test_first_fit_picks_first_feasible_in_id_order(self, nodes, vm):
        decision = make_policy("placement", "first-fit").decide(
            vm, ClusterView.from_nodes(nodes)
        )
        expected = next(
            (n.node_id for n in sorted(nodes, key=lambda n: n.node_id) if _fits_scalar(n, vm)),
            None,
        )
        assert decision.node_id == expected

    @given(nodes=clusters(), vm=demands())
    @settings(max_examples=40, deadline=None)
    def test_best_fit_minimizes_residual(self, nodes, vm):
        decision = make_policy("placement", "best-fit").decide(
            vm, ClusterView.from_nodes(nodes)
        )
        feasible = [n for n in sorted(nodes, key=lambda n: n.node_id) if _fits_scalar(n, vm)]
        if not feasible:
            assert not decision.placed
            return
        scores = {n.node_id: _residual_scalar(n, vm) for n in feasible}
        assert decision.placed
        assert scores[decision.node_id] == pytest.approx(min(scores.values()), abs=1e-12)

    @given(nodes=clusters(), vm=demands())
    @settings(max_examples=40, deadline=None)
    def test_worst_fit_maximizes_headroom(self, nodes, vm):
        decision = make_policy("placement", "worst-fit").decide(
            vm, ClusterView.from_nodes(nodes)
        )
        feasible = [n for n in sorted(nodes, key=lambda n: n.node_id) if _fits_scalar(n, vm)]
        if not feasible:
            assert not decision.placed
            return
        scores = {n.node_id: _headroom_scalar(n) for n in feasible}
        assert decision.placed
        assert scores[decision.node_id] == pytest.approx(max(scores.values()), abs=1e-12)


class TestRelocationMatchesScalar:
    @given(nodes=clusters())
    @settings(max_examples=30, deadline=None)
    def test_overload_plan_matches_reference(self, nodes):
        source = max(nodes, key=lambda n: n.utilization())
        plan = OverloadRelocationPolicy(THRESHOLDS).decide(source, nodes)
        got = [(vm.vm_id, src.node_id, dst.node_id) for vm, src, dst in plan.moves]
        assert got == _overload_reference(source, nodes, THRESHOLDS)

    @given(nodes=clusters())
    @settings(max_examples=30, deadline=None)
    def test_reconfiguration_eligibility_matches_scalar_filter(self, nodes):
        policy = ReconfigurationPolicy(thresholds=THRESHOLDS)
        eligible = {node.node_id for node in policy._eligible_nodes(nodes)}
        expected = {
            node.node_id
            for node in nodes
            if node.is_available_for_placement
            and min(node.used().values[_cpu(node)] / node.capacity.values[_cpu(node)], 1.0)
            <= THRESHOLDS.overload
        }
        assert eligible == expected


# ---------------------------------------------------------------- feasibility
class TestNoRegisteredPolicyViolatesCapacity:
    @given(nodes=clusters(), vm=demands(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_every_registered_placement_policy_places_feasibly(self, nodes, vm, data):
        name = data.draw(st.sampled_from(policy_names("placement")))
        decision = make_policy("placement", name).decide(vm, ClusterView.from_nodes(nodes))
        if not decision.placed:
            return
        chosen = next(node for node in nodes if node.node_id == decision.node_id)
        assert chosen.is_available_for_placement
        chosen.place_vm(vm)  # raises ResourceError on a capacity violation
        reserved = chosen.reserved().values
        assert np.all(reserved <= chosen.capacity.values + FIT_TOLERANCE)

    @given(nodes=clusters())
    @settings(max_examples=30, deadline=None)
    def test_overload_plan_applies_without_violations(self, nodes):
        source = max(nodes, key=lambda n: n.utilization())
        plan = OverloadRelocationPolicy(THRESHOLDS).decide(source, nodes)
        for vm, src, dst in plan.moves:
            assert src is source
            src.remove_vm(vm)
            dst.place_vm(vm)  # raises on violation
        for node in nodes:
            assert np.all(node.reserved().values <= node.capacity.values + FIT_TOLERANCE)

    @given(nodes=clusters())
    @settings(max_examples=30, deadline=None)
    def test_underload_plan_is_all_or_nothing_and_feasible(self, nodes):
        occupied = [n for n in nodes if n.vm_count > 0]
        if not occupied:
            return
        source = min(occupied, key=lambda n: n.utilization())
        before = source.vm_count
        plan = UnderloadRelocationPolicy(THRESHOLDS).decide(source, nodes)
        assert plan.empty or len(plan.moves) == before
        for vm, src, dst in plan.moves:
            assert src is source
            src.remove_vm(vm)
            dst.place_vm(vm)
        if not plan.empty:
            assert source.vm_count == 0
        for node in nodes:
            assert np.all(node.reserved().values <= node.capacity.values + FIT_TOLERANCE)

    @given(nodes=clusters(max_nodes=5, max_vms=10), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_every_registered_reconfiguration_policy_plans_feasibly(self, nodes, data):
        name = data.draw(st.sampled_from(policy_names("reconfiguration")))
        small = {"n_ants": 2, "n_cycles": 3}
        params = {
            "aco": {**small, "rng": np.random.default_rng(0)},
            "distributed-aco": {**small, "n_partitions": 2, "rng": np.random.default_rng(0)},
        }.get(name, {})
        policy = make_policy("reconfiguration", name, thresholds=THRESHOLDS, **params)
        plan = policy.plan(nodes)
        # Consolidation packs by *used* vectors; execution re-checks the
        # reservation fit per move exactly like MigrationExecutor.migrate and
        # skips moves the destination cannot reserve.  Whatever subset applies,
        # no node may ever exceed its capacity.
        for vm, src, dst in plan.moves:
            if not dst.is_available_for_placement or not dst.fits(vm):
                continue
            src.remove_vm(vm)
            dst.place_vm(vm)  # raises on a capacity violation
        for node in nodes:
            assert np.all(node.reserved().values <= node.capacity.values + FIT_TOLERANCE)
