"""Unit tests for the observability plane (metrics, tracing, profiling)."""

from __future__ import annotations

import json
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.recorder import EventLog
from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    EventLoopProfiler,
    MetricsRegistry,
    ObservabilityConfig,
    ObservabilityPlane,
    Tracer,
    deterministic_observability,
    handler_key,
)
from repro.policies.registry import instrument_policy
from repro.simulation.engine import Simulator


class TestCounters:
    def test_increment_and_value(self):
        registry = MetricsRegistry()
        handle = registry.counter("requests_total").labels(kind="submit")
        handle.inc()
        handle.inc(3)
        assert handle.value == 4.0

    def test_label_sets_get_independent_slots(self):
        registry = MetricsRegistry()
        family = registry.counter("events_total")
        family.labels(category="a").inc()
        family.labels(category="b").inc(5)
        assert family.labels(category="a").value == 1.0
        assert family.labels(category="b").value == 5.0

    def test_labels_returns_cached_handle(self):
        family = MetricsRegistry().counter("hits_total")
        assert family.labels(x="1") is family.labels(x="1")

    def test_slot_growth_beyond_initial_capacity(self):
        family = MetricsRegistry().counter("wide_total")
        handles = [family.labels(index=i) for i in range(200)]
        for i, handle in enumerate(handles):
            handle.inc(i)
        assert [h.value for h in handles] == [float(i) for i in range(200)]

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x_total")


class TestGauges:
    def test_set_and_overwrite(self):
        handle = MetricsRegistry().gauge("endpoints").labels()
        handle.set(12)
        handle.set(7)
        assert handle.value == 7.0


class TestHistograms:
    def test_observe_counts_and_sum(self):
        handle = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0)).labels()
        for value in (0.05, 0.5, 5.0):
            handle.observe(value)
        assert handle.count == 3
        assert handle.sum == pytest.approx(5.55)
        assert handle.bucket_counts() == [1, 1, 1]  # <=0.1, <=1.0, +Inf

    def test_bucket_bounds_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad_seconds", buckets=(1.0, 0.1))
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("empty_seconds", buckets=())

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="other buckets"):
            registry.histogram("h_seconds", buckets=(0.5, 1.0))

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=50))
    def test_bucket_math_matches_scalar_reference(self, values):
        """Array-backed bucketing agrees with a scalar first-bound->= scan."""
        handle = MetricsRegistry().histogram("ref_seconds").labels()
        bounds = list(DEFAULT_SECONDS_BUCKETS)
        reference = [0] * (len(bounds) + 1)
        for value in values:
            handle.observe(value)
            index = next((i for i, bound in enumerate(bounds) if value <= bound), len(bounds))
            assert index == bisect_left(bounds, value) or value in bounds
            reference[bisect_left(bounds, value)] += 1
        assert handle.bucket_counts() == reference
        assert handle.count == len(values)
        assert handle.sum == pytest.approx(sum(values))


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("messages_total", help="All messages.").labels(kind="rpc").inc(3)
        registry.gauge("endpoints").labels().set(4)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).labels(op="x").observe(0.5)
        return registry

    def test_prometheus_text_format(self):
        text = self._populated().to_text()
        assert "# HELP repro_messages_total All messages." in text
        assert "# TYPE repro_messages_total counter" in text
        assert 'repro_messages_total{kind="rpc"} 3' in text
        assert "repro_endpoints 4" in text
        assert 'repro_lat_seconds_bucket{op="x",le="0.1"} 0' in text
        assert 'repro_lat_seconds_bucket{op="x",le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{op="x",le="+Inf"} 1' in text
        assert 'repro_lat_seconds_sum{op="x"} 0.5' in text
        assert 'repro_lat_seconds_count{op="x"} 1' in text

    def test_dict_dump_is_json_safe_and_sorted(self):
        dump = self._populated().to_dict()
        assert json.loads(json.dumps(dump)) == dump
        assert dump["counters"]["messages_total"] == {'kind="rpc"': 3.0}
        assert dump["histograms"]["lat_seconds"]['op="x"']["count"] == 1

    def test_collectors_run_at_exposition_time(self):
        registry = MetricsRegistry()
        source = {"value": 0}
        handle = registry.counter("mirrored_total").labels()
        registry.add_collector(lambda: handle.set(source["value"]))
        source["value"] = 42
        assert 'repro_mirrored_total 42' in registry.to_text()


class TestTracer:
    def _tracer(self, now=0.0):
        state = {"now": now}
        tracer = Tracer(clock=lambda: state["now"])
        return tracer, state

    def test_root_spans_get_fresh_traces(self):
        tracer, _ = self._tracer()
        first = tracer.begin("a", "c1")
        second = tracer.begin("b", "c2", root=True)
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None

    def test_parent_defaults_to_active_context(self):
        tracer, _ = self._tracer()
        parent = tracer.begin("parent", "c1")
        tracer.activate(parent.ctx)
        child = tracer.begin("child", "c2")
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_span_contextmanager_restores_context(self):
        tracer, _ = self._tracer()
        with tracer.span("outer", "c") as outer:
            assert tracer.current == outer.ctx
            with tracer.span("inner", "c") as inner:
                assert inner.parent_id == outer.span_id
            assert tracer.current == outer.ctx
        assert tracer.current is None

    def test_end_is_idempotent_and_durations_use_sim_time(self):
        tracer, state = self._tracer()
        span = tracer.begin("op", "c")
        state["now"] = 2.5
        tracer.end(span)
        state["now"] = 9.0
        tracer.end(span)
        assert span.duration == 2.5

    def test_end_on_event(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)
        span = tracer.begin("deferred", "c")
        event = sim.event()
        tracer.end_on(span, event)
        sim.schedule(4.0, lambda: sim.trigger(event, "done"))
        sim.run(until=10.0)
        assert span.end == 4.0

    def test_max_spans_drops_but_keeps_ids(self):
        tracer, _ = self._tracer()
        tracer.max_spans = 2
        spans = [tracer.begin(f"s{i}", "c") for i in range(4)]
        assert len(tracer.spans) == 2
        assert tracer.dropped == 2
        assert len({span.span_id for span in spans}) == 4
        assert tracer.summary()["dropped"] == 2

    def test_chrome_trace_structure(self):
        tracer, state = self._tracer()
        with tracer.span("parent", "gm-00"):
            tracer.instant("marker", "lc-00")
        state["now"] = 1.0
        trace = tracer.chrome_trace()
        assert sorted(trace) == ["displayTimeUnit", "traceEvents"]
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
        assert names == {"gm-00", "lc-00"}
        assert len(spans) == 2
        for event in spans:
            assert set(event) >= {"name", "cat", "pid", "tid", "ts", "dur", "args"}
            assert "trace_id" in event["args"] and "span_id" in event["args"]
        child = next(e for e in spans if e["name"] == "marker")
        parent = next(e for e in spans if e["name"] == "parent")
        assert child["args"]["parent_id"] == parent["args"]["span_id"]


class TestProfiler:
    def test_handler_key_shapes(self):
        class Widget:
            def tick(self):
                pass

        def free_function():
            pass

        from functools import partial

        assert handler_key(Widget().tick) == "Widget.tick"
        assert handler_key(free_function).endswith("free_function")
        assert "0x" not in handler_key(partial(free_function))
        assert handler_key(None) == "<none>"

    def test_record_aggregates_and_ranks(self):
        profiler = EventLoopProfiler()

        class A:
            def run(self):
                pass

        handler = A().run
        profiler.record(handler, 0.2)
        profiler.record(handler, 0.1)
        summary = profiler.summary()
        stats = summary["handlers"]["A.run"]
        assert stats["calls"] == 2
        assert stats["seconds"] == pytest.approx(0.3)
        assert stats["max_seconds"] == pytest.approx(0.2)
        assert stats["share"] == pytest.approx(1.0)
        assert summary["components"]["A"]["calls"] == 2

    def test_feeds_histogram_when_registry_given(self):
        registry = MetricsRegistry()
        profiler = EventLoopProfiler(registry=registry)

        class B:
            def go(self):
                pass

        profiler.record(B().go, 0.001)
        dump = registry.to_dict()
        assert dump["histograms"]["handler_wall_seconds"]['handler="B.go"']["count"] == 1

    def test_simulator_step_records_when_profiler_attached(self):
        sim = Simulator()
        profiler = EventLoopProfiler()
        sim.profiler = profiler
        sim.schedule(1.0, lambda: None)
        sim.run(until=2.0)
        assert profiler.total_calls == 1


class TestEventLogCounts:
    def test_count_is_exact_and_categories_sorted(self):
        log = EventLog()
        for _ in range(3):
            log.record(0.0, "b_event")
        log.record(1.0, "a_event", detail=1)
        assert log.count("b_event") == 3
        assert log.count("a_event") == 1
        assert log.count("missing") == 0
        assert log.categories() == ["a_event", "b_event"]
        assert [r.category for r in log.events("b_event")] == ["b_event"] * 3
        assert len(log.events()) == 4

    def test_bind_metrics_backfills_and_tracks(self):
        log = EventLog()
        log.record(0.0, "early")
        registry = MetricsRegistry()
        log.bind_metrics(registry)
        log.record(1.0, "late")
        log.record(2.0, "late")
        counters = registry.to_dict()["counters"]["events_total"]
        assert counters['category="early"'] == 1.0
        assert counters['category="late"'] == 2.0


class TestInstrumentPolicy:
    class FakePolicy:
        def __init__(self):
            self.thresholds = "initial"

        def decide(self, value):
            if value < 0:
                raise ValueError("bad")
            return value * 2

    def test_times_calls_and_preserves_results(self):
        observed = []
        policy = instrument_policy(self.FakePolicy(), lambda m, s: observed.append((m, s)))
        assert policy.decide(21) == 42
        assert observed and observed[0][0] == "decide" and observed[0][1] >= 0.0

    def test_observes_even_when_decision_raises(self):
        observed = []
        policy = instrument_policy(self.FakePolicy(), lambda m, s: observed.append(m))
        with pytest.raises(ValueError):
            policy.decide(-1)
        assert observed == ["decide"]

    def test_instance_attributes_still_mutable(self):
        policy = instrument_policy(self.FakePolicy(), lambda m, s: None)
        policy.thresholds = "updated"
        assert policy.thresholds == "updated"

    def test_other_instances_untouched(self):
        instrumented = instrument_policy(self.FakePolicy(), lambda m, s: None)
        plain = self.FakePolicy()
        assert instrumented.decide.__name__ == "decide"
        assert plain.decide(1) == 2
        assert "decide" not in vars(plain)


class TestPlane:
    def test_build_returns_none_when_all_off(self):
        sim = Simulator()
        config = ObservabilityConfig(metrics=False, tracing=False, profiling=False)
        assert not config.enabled
        assert ObservabilityPlane.build(sim, config) is None
        assert ObservabilityPlane.of(sim) is None

    def test_build_registers_service_and_pillars(self):
        sim = Simulator()
        plane = ObservabilityPlane.build(
            sim, ObservabilityConfig(metrics=True, tracing=True, profiling=True)
        )
        assert ObservabilityPlane.of(sim) is plane
        assert plane.registry is not None
        assert plane.tracer is not None
        assert plane.profiler is not None

    def test_result_section_separates_wallclock_keys(self):
        sim = Simulator()
        plane = ObservabilityPlane.build(
            sim, ObservabilityConfig(metrics=True, tracing=True, profiling=True)
        )
        plane.observe_decision("placement", "gm-00", "decide", 0.001)
        section = plane.result_section()
        assert "histogram_seconds" in section and "profiling" in section
        clean = deterministic_observability(section)
        assert "histogram_seconds" not in clean and "profiling" not in clean
        assert clean["histogram_counts"]["policy_decision_seconds"] == {
            'component="gm-00",kind="placement"': 1
        }

    def test_exports_empty_when_pillars_off(self):
        sim = Simulator()
        plane = ObservabilityPlane.build(
            sim, ObservabilityConfig(metrics=False, tracing=False, profiling=True)
        )
        assert plane.metrics_text() == ""
        assert plane.metrics_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert plane.chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ms"}
