"""Tests for the simulated messaging substrate: transport, multicast, RPC."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.message import Message, MessageType
from repro.network.multicast import MulticastGroup, MulticastRegistry
from repro.network.rpc import RpcChannel, RpcError
from repro.network.transport import Network, NetworkConfig


@pytest.fixture
def network(sim):
    return Network(sim, NetworkConfig(base_latency=0.001, jitter=0.0), rng=np.random.default_rng(0))


class TestNetworkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(base_latency=-1.0)
        with pytest.raises(ValueError):
            NetworkConfig(loss_probability=1.0)


class TestTransport:
    def test_message_delivered_to_registered_endpoint(self, sim, network):
        received = []
        network.register("bob", received.append)
        network.register("alice", lambda m: None)
        message = Message(MessageType.VM_SUBMIT, sender="alice", recipient="bob", payload=42)
        assert network.send(message)
        sim.run()
        assert len(received) == 1
        assert received[0].payload == 42
        assert received[0].latency == pytest.approx(0.001)

    def test_message_to_unknown_recipient_is_dropped(self, sim, network):
        network.register("alice", lambda m: None)
        network.send(Message(MessageType.VM_SUBMIT, sender="alice", recipient="ghost"))
        sim.run()
        assert network.messages_dropped == 1
        assert network.messages_delivered == 0

    def test_disconnected_recipient_drops_message(self, sim, network):
        received = []
        network.register("bob", received.append)
        network.disconnect("bob")
        network.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"))
        sim.run()
        assert received == []
        assert network.messages_dropped == 1

    def test_disconnected_sender_cannot_send(self, sim, network):
        received = []
        network.register("bob", received.append)
        network.register("alice", lambda m: None)
        network.disconnect("alice")
        assert not network.send(Message(MessageType.VM_SUBMIT, sender="alice", recipient="bob"))
        sim.run()
        assert received == []

    def test_reconnect_restores_delivery(self, sim, network):
        received = []
        network.register("bob", received.append)
        network.disconnect("bob")
        network.reconnect("bob")
        network.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"))
        sim.run()
        assert len(received) == 1

    def test_loss_probability_drops_messages(self, sim):
        lossy = Network(
            sim, NetworkConfig(loss_probability=0.5), rng=np.random.default_rng(1)
        )
        received = []
        lossy.register("bob", received.append)
        for _ in range(200):
            lossy.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"))
        sim.run()
        assert 40 < len(received) < 160  # roughly half, not all, not none

    def test_jitter_varies_latency(self, sim):
        jittery = Network(
            sim, NetworkConfig(base_latency=0.001, jitter=0.01), rng=np.random.default_rng(2)
        )
        latencies = []
        jittery.register("bob", lambda m: latencies.append(m.latency))
        for _ in range(20):
            jittery.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"))
        sim.run()
        assert len(set(np.round(latencies, 9))) > 1
        assert all(lat >= 0.001 for lat in latencies)

    def test_stats_counters(self, sim, network):
        network.register("bob", lambda m: None)
        network.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"), size_bytes=100)
        sim.run()
        stats = network.stats()
        assert stats["messages_sent"] == 1
        assert stats["messages_delivered"] == 1
        assert stats["bytes_sent"] == 100

    def test_re_registration_replaces_handler(self, sim, network):
        first, second = [], []
        network.register("bob", first.append)
        network.register("bob", second.append)
        network.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="bob"))
        sim.run()
        assert first == []
        assert len(second) == 1

    def test_message_reply_addresses_sender(self):
        message = Message(MessageType.RPC_REQUEST, sender="a", recipient="b", correlation_id=9)
        reply = message.reply(MessageType.RPC_REPLY, payload="ok")
        assert reply.sender == "b"
        assert reply.recipient == "a"
        assert reply.correlation_id == 9


class TestMulticast:
    def test_publish_reaches_all_subscribers_except_sender(self, sim, network):
        inboxes = {name: [] for name in ("a", "b", "c")}
        for name in inboxes:
            network.register(name, inboxes[name].append)
        group = MulticastGroup(network, "heartbeats")
        for name in inboxes:
            group.subscribe(name)
        fanout = group.publish("a", MessageType.GL_HEARTBEAT, payload={"gl": "a"})
        sim.run()
        assert fanout == 2
        assert len(inboxes["a"]) == 0
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1

    def test_subscribe_unsubscribe_idempotent(self, network):
        group = MulticastGroup(network, "g")
        group.subscribe("x")
        group.subscribe("x")
        assert len(group) == 1
        group.unsubscribe("x")
        group.unsubscribe("x")
        assert len(group) == 0

    def test_unsubscribed_endpoint_not_reached(self, sim, network):
        inbox = []
        network.register("a", lambda m: None)
        network.register("b", inbox.append)
        group = MulticastGroup(network, "g")
        group.subscribe("b")
        group.unsubscribe("b")
        group.publish("a", MessageType.GL_HEARTBEAT)
        sim.run()
        assert inbox == []

    def test_registry_caches_groups(self, sim, network):
        registry = MulticastRegistry(network)
        assert registry.group("x") is registry.group("x")
        assert "x" in registry.groups()

    def test_contains(self, network):
        group = MulticastGroup(network, "g")
        group.subscribe("member")
        assert "member" in group
        assert "stranger" not in group


class TestRpc:
    def test_round_trip_call(self, sim, network):
        server = RpcChannel(network, "server")
        client = RpcChannel(network, "client")
        network.register("server", server.handle_message)
        network.register("client", client.handle_message)
        server.register_operation("add", lambda a, b: a + b)

        results = []
        client.call("server", "add", kwargs={"a": 2, "b": 3}, on_reply=results.append)
        sim.run()
        assert results == [5]

    def test_unknown_operation_reports_error(self, sim, network):
        server = RpcChannel(network, "server")
        client = RpcChannel(network, "client")
        network.register("server", server.handle_message)
        network.register("client", client.handle_message)
        errors = []
        client.call("server", "nope", on_error=errors.append)
        sim.run()
        assert len(errors) == 1
        assert "unknown operation" in errors[0]

    def test_handler_exception_travels_back_as_error(self, sim, network):
        server = RpcChannel(network, "server")
        client = RpcChannel(network, "client")
        network.register("server", server.handle_message)
        network.register("client", client.handle_message)

        def explode():
            raise RuntimeError("boom")

        server.register_operation("explode", explode)
        errors = []
        client.call("server", "explode", on_error=errors.append)
        sim.run()
        assert errors and "boom" in errors[0]

    def test_timeout_fires_when_server_unreachable(self, sim, network):
        client = RpcChannel(network, "client")
        network.register("client", client.handle_message)
        timeouts = []
        client.call("ghost", "op", on_timeout=lambda: timeouts.append(True), timeout=2.0)
        sim.run()
        assert timeouts == [True]
        assert client.pending_calls == 0

    def test_deferred_reply_via_event(self, sim, network):
        server = RpcChannel(network, "server")
        client = RpcChannel(network, "client")
        network.register("server", server.handle_message)
        network.register("client", client.handle_message)

        def slow_operation():
            event = sim.event()
            sim.schedule(5.0, lambda: sim.trigger(event, "late-result"))
            return event

        server.register_operation("slow", slow_operation)
        results = []
        client.call("server", "slow", on_reply=results.append, timeout=10.0)
        sim.run()
        assert results == ["late-result"]

    def test_duplicate_operation_registration_rejected(self, network):
        server = RpcChannel(network, "server")
        server.register_operation("op", lambda: 1)
        with pytest.raises(RpcError):
            server.register_operation("op", lambda: 2)

    def test_cancel_all_drops_pending_calls(self, sim, network):
        client = RpcChannel(network, "client")
        network.register("client", client.handle_message)
        outcomes = []
        client.call("ghost", "op", on_timeout=lambda: outcomes.append("timeout"), timeout=5.0)
        client.cancel_all()
        sim.run()
        assert outcomes == []
        assert client.pending_calls == 0

    def test_exactly_one_callback_per_call(self, sim, network):
        server = RpcChannel(network, "server")
        client = RpcChannel(network, "client")
        network.register("server", server.handle_message)
        network.register("client", client.handle_message)
        server.register_operation("ping", lambda: "pong")
        outcomes = []
        client.call(
            "server",
            "ping",
            on_reply=lambda r: outcomes.append(("reply", r)),
            on_error=lambda e: outcomes.append(("error", e)),
            on_timeout=lambda: outcomes.append(("timeout", None)),
            timeout=30.0,
        )
        sim.run()
        assert outcomes == [("reply", "pong")]
