"""Integration tests for the Snooze hierarchy: self-organization, submission path,
scheduling behaviour and energy management inside a full deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import NodeState
from repro.cluster.resources import ResourceVector
from repro.cluster.vm import VirtualMachine, VMState
from repro.energy.power_manager import PowerManagerConfig
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.workloads import (
    BatchArrival,
    PoissonArrival,
    SpikeTrace,
    UniformDemandDistribution,
    WorkloadGenerator,
)

from tests.conftest import make_vm


class TestSelfOrganization:
    def test_leader_elected_and_lcs_assigned(self, small_system):
        assert small_system.current_leader() is not None
        assert small_system.assigned_lc_count() == 6

    def test_lcs_distributed_across_gms(self, small_system):
        per_gm = [
            len(gm.local_controllers)
            for gm in small_system.group_managers.values()
            if gm.is_running
        ]
        assert sum(per_gm) == 6
        assert all(count > 0 for count in per_gm)

    def test_entry_points_know_the_leader(self, small_system):
        for entry_point in small_system.entry_points.values():
            assert entry_point.current_gl == small_system.current_leader()

    def test_hierarchy_snapshot_structure(self, small_system):
        snapshot = small_system.hierarchy_snapshot()
        assert snapshot["leader"] in snapshot["group_managers"]
        assert (
            sum(len(info.get("local_controllers", [])) for info in snapshot["group_managers"].values())
            == 6
        )

    def test_stats_shape(self, small_system):
        stats = small_system.stats()
        for key in ("leader", "running_vms", "active_hosts", "placed", "network"):
            assert key in stats

    def test_mismatched_cluster_spec_rejected(self):
        from repro.cluster.topology import ClusterSpec

        with pytest.raises(ValueError):
            SnoozeSystem(
                SystemSpec(local_controllers=4, cluster=ClusterSpec(node_count=8)),
            )


class TestSubmissionPath:
    def test_batch_submission_places_all_vms(self, small_system):
        generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.3), BatchArrival(0.0))
        requests = generator.generate(12, np.random.default_rng(0))
        small_system.submit_requests(requests)
        small_system.run(60.0)
        assert small_system.client.placed_count() == 12
        assert small_system.running_vm_count() == 12
        assert small_system.client.pending_count() == 0

    def test_submission_latency_is_small_and_positive(self, small_system):
        generator = WorkloadGenerator(UniformDemandDistribution(0.05, 0.15), BatchArrival(0.0))
        small_system.submit_requests(generator.generate(6, np.random.default_rng(1)))
        small_system.run(30.0)
        latencies = small_system.client.latencies()
        assert len(latencies) == 6
        assert all(0.0 < latency < 1.0 for latency in latencies)

    def test_poisson_arrivals_processed_over_time(self, small_system):
        generator = WorkloadGenerator(
            UniformDemandDistribution(0.1, 0.2),
            PoissonArrival(rate_per_hour=600.0),
        )
        small_system.submit_requests(generator.generate(10, np.random.default_rng(2)))
        small_system.run(300.0)
        assert small_system.client.placed_count() == 10

    def test_oversized_cluster_rejects_excess_vms(self):
        system = SnoozeSystem(
            SystemSpec(local_controllers=2, group_managers=1),
            config=HierarchyConfig(seed=3),
            seed=3,
        )
        system.start()
        # Each VM needs 0.6 CPU: only 2 fit (one per host).
        vms = [make_vm(0.6, 0.3, 0.1) for _ in range(4)]
        for vm in vms:
            system.client.submit(vm)
        system.run(120.0)
        assert system.client.placed_count() == 2
        assert system.client.rejected_count() == 2

    def test_finished_vms_release_capacity(self):
        system = SnoozeSystem(
            SystemSpec(local_controllers=2, group_managers=1),
            config=HierarchyConfig(seed=4),
            seed=4,
        )
        system.start()
        vm = make_vm(0.5, 0.3, 0.1, runtime=30.0)
        system.client.submit(vm)
        system.run(120.0)
        assert vm.state is VMState.FINISHED
        assert system.running_vm_count() == 0

    def test_vm_placement_respects_capacity_everywhere(self, small_system):
        generator = WorkloadGenerator(UniformDemandDistribution(0.2, 0.5), BatchArrival(0.0))
        small_system.submit_requests(generator.generate(15, np.random.default_rng(5)))
        small_system.run(120.0)
        for node in small_system.topology:
            assert node.reserved().fits_within(node.capacity)


class TestRelocationBehaviour:
    def test_overload_triggers_migration(self):
        config = HierarchyConfig(seed=9, monitoring_interval=5.0)
        system = SnoozeSystem(
            SystemSpec(local_controllers=4, group_managers=1), config=config, seed=9
        )
        system.start()
        # Three VMs that will spike to near-full CPU usage on the same host.
        vms = []
        for _ in range(3):
            vm = VirtualMachine(
                ResourceVector([0.32, 0.2, 0.1]),
                trace=SpikeTrace(before=0.3, after=1.0, at=60.0),
            )
            vms.append(vm)
        # Force them all onto the first LC by submitting while others are excluded:
        # easier: place them via the client (first-fit packs them together).
        for vm in vms:
            system.client.submit(vm)
        system.run(50.0)
        host_ids = {vm.host_id for vm in vms}
        assert len(host_ids) == 1  # packed on one host
        system.run(300.0)
        # After the spike the overload relocation should have spread them out.
        assert system.migration_executor.stats.completed >= 1
        host_ids_after = {vm.host_id for vm in vms if vm.host_id is not None}
        assert len(host_ids_after) > 1

    def test_relocation_can_be_disabled(self):
        config = HierarchyConfig(seed=9, monitoring_interval=5.0, relocation_enabled=False)
        system = SnoozeSystem(
            SystemSpec(local_controllers=4, group_managers=1), config=config, seed=9
        )
        system.start()
        for _ in range(3):
            system.client.submit(
                VirtualMachine(
                    ResourceVector([0.32, 0.2, 0.1]),
                    trace=SpikeTrace(before=0.3, after=1.0, at=60.0),
                )
            )
        system.run(300.0)
        assert system.migration_executor.stats.completed == 0


class TestReconfiguration:
    def test_periodic_consolidation_frees_hosts(self):
        config = HierarchyConfig(
            seed=21,
            monitoring_interval=10.0,
            relocation_enabled=False,
            reconfiguration_interval=200.0,
            reconfiguration_algorithm="ffd",
            placement_policy="round-robin",  # spread VMs so consolidation has work to do
        )
        system = SnoozeSystem(
            SystemSpec(local_controllers=6, group_managers=1), config=config, seed=21
        )
        system.start()
        generator = WorkloadGenerator(UniformDemandDistribution(0.15, 0.25), BatchArrival(0.0))
        system.submit_requests(generator.generate(6, np.random.default_rng(0)))
        system.run(60.0)
        hosts_before = system.active_host_count()
        system.run(400.0)
        hosts_after = system.active_host_count()
        assert hosts_before == 6
        assert hosts_after < hosts_before
        assert system.migration_executor.stats.completed >= 1
        leader = system.leader()
        assert leader.reconfiguration_rounds >= 1


class TestEnergyManagement:
    def test_idle_hosts_suspended_and_woken_on_demand(self):
        config = HierarchyConfig(
            seed=13,
            power_manager=PowerManagerConfig(
                enabled=True,
                idle_time_threshold=60.0,
                check_interval=30.0,
                min_powered_on_hosts=1,
            ),
        )
        system = SnoozeSystem(
            SystemSpec(local_controllers=4, group_managers=1), config=config, seed=13
        )
        system.start()
        system.run(300.0)
        assert system.powered_on_count() < 4  # idle hosts went to sleep
        suspended_before = sum(
            1 for node in system.topology if node.state is NodeState.SUSPENDED
        )
        assert suspended_before >= 1
        # A burst of submissions requires waking hosts up.
        generator = WorkloadGenerator(UniformDemandDistribution(0.4, 0.6), BatchArrival(0.0))
        system.submit_requests(generator.generate(4, np.random.default_rng(1)))
        system.run(300.0)
        assert system.client.placed_count() >= 3

    def test_energy_report_accumulates(self, small_system):
        small_system.run(600.0)
        report = small_system.energy_report()
        assert report.total_energy_joules > 0
        assert report.horizon_seconds >= 600.0

    def test_power_management_saves_energy_on_idle_cluster(self):
        def build(enabled: bool) -> float:
            config = HierarchyConfig(
                seed=2,
                power_manager=PowerManagerConfig(
                    enabled=enabled,
                    idle_time_threshold=60.0,
                    check_interval=30.0,
                    min_powered_on_hosts=1,
                ),
            )
            system = SnoozeSystem(
                SystemSpec(local_controllers=6, group_managers=1), config=config, seed=2
            )
            system.start()
            system.run(2 * 3600.0)
            return system.energy_report().total_energy_joules

        assert build(True) < 0.75 * build(False)


class TestRecording:
    def test_enable_recording_probes(self, small_system):
        recorder = small_system.enable_recording(interval=30.0)
        small_system.run(120.0)
        series = recorder.series("powered_on_hosts")
        assert len(series) >= 4
        assert series.latest() == 6.0
