"""Tests for the resident DecisionPlane and the view-backed hot paths.

The plane must be indistinguishable from rebuilding ``ClusterView.from_nodes``
per event -- parity is asserted against the snapshot path for values, ordering,
exclusion masking (every registered placement policy), the join-order view
consumed by reconfiguration, and the ``placement_from_view`` bridge into the
consolidation kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import NodeState
from repro.core.aco_vectorized import VectorizedACOConsolidation
from repro.core.aco import ACOParameters
from repro.core.placement import placement_from_nodes, placement_from_view
from repro.policies.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    RoundRobinPlacement,
    WorstFitPlacement,
)
from repro.policies.plane import DecisionPlane
from repro.policies.reconfiguration import ReconfigurationPolicy
from repro.policies.view import ClusterView

from tests.conftest import make_node, make_vm


def build_plane(n=6):
    """A plane over ``n`` nodes joined in a deliberately non-sorted order."""
    plane = DecisionPlane()
    # Join order differs from node-id order to exercise both orderings.
    order = list(reversed(range(n)))
    nodes = {}
    for i in order:
        node = make_node(f"node-{i:02d}")
        nodes[f"lc-{i:02d}"] = node
        plane.add(f"lc-{i:02d}", node)
    return plane, nodes


def assert_views_equal(actual: ClusterView, expected: ClusterView):
    assert list(actual.node_ids) == list(expected.node_ids)
    np.testing.assert_array_equal(actual.capacities, expected.capacities)
    np.testing.assert_array_equal(actual.reserved, expected.reserved)
    np.testing.assert_array_equal(actual.used, expected.used)
    np.testing.assert_array_equal(actual.placeable, expected.placeable)
    np.testing.assert_array_equal(actual.vm_counts, expected.vm_counts)
    assert actual.cpu_index == expected.cpu_index
    for node_id in actual.node_ids:
        assert actual.index_of(node_id) == expected.index_of(node_id)


class TestDecisionPlaneParity:
    def test_view_matches_from_nodes(self):
        plane, nodes = build_plane()
        nodes["lc-02"].place_vm(make_vm(0.4, 0.3, 0.2))
        nodes["lc-04"].place_vm(make_vm(0.2, 0.2, 0.1))
        assert_views_equal(plane.view(), ClusterView.from_nodes(list(nodes.values())))

    def test_incremental_updates_track_vm_lifecycle(self):
        plane, nodes = build_plane()
        plane.view()  # materialize the resident arrays first
        vm = make_vm(0.5, 0.4, 0.3)
        nodes["lc-03"].place_vm(vm)
        assert_views_equal(plane.view(), ClusterView.from_nodes(list(nodes.values())))
        nodes["lc-03"].remove_vm(vm)
        assert_views_equal(plane.view(), ClusterView.from_nodes(list(nodes.values())))

    def test_incremental_updates_track_usage_writes(self):
        plane, nodes = build_plane()
        vm = make_vm(0.5, 0.4, 0.3)
        nodes["lc-01"].place_vm(vm)
        plane.view()
        vm.used = vm.requested * 0.5  # a monitoring write on a hosted VM
        assert_views_equal(plane.view(), ClusterView.from_nodes(list(nodes.values())))

    def test_incremental_updates_track_power_state(self):
        plane, nodes = build_plane()
        plane.view()
        nodes["lc-05"].state = NodeState.SUSPENDED
        view = plane.view()
        assert_views_equal(view, ClusterView.from_nodes(list(nodes.values())))
        assert not view.placeable[view.index_of("node-05")]
        nodes["lc-05"].state = NodeState.ON
        assert_views_equal(plane.view(), ClusterView.from_nodes(list(nodes.values())))

    def test_membership_changes_rebuild(self):
        plane, nodes = build_plane()
        plane.view()
        plane.remove("lc-02")
        survivors = [node for lc, node in nodes.items() if lc != "lc-02"]
        assert_views_equal(plane.view(), ClusterView.from_nodes(survivors))
        # Changes on a removed node must not leak back into the plane.
        nodes["lc-02"].place_vm(make_vm())
        assert_views_equal(plane.view(), ClusterView.from_nodes(survivors))
        late = make_node("node-99")
        plane.add("lc-99", late)
        assert_views_equal(plane.view(), ClusterView.from_nodes(survivors + [late]))

    def test_join_order_view_matches_unsorted_from_nodes(self):
        plane, nodes = build_plane()
        nodes["lc-00"].place_vm(make_vm(0.3, 0.3, 0.1))
        join_order = plane.nodes_in_join_order()
        assert [n.node_id for n in join_order] == [
            f"node-{i:02d}" for i in reversed(range(6))
        ]
        assert_views_equal(
            plane.join_order_view(),
            ClusterView.from_nodes(join_order, sort_by_id=False),
        )


class TestExclusionMaskingParity:
    """Masked ``placeable`` rows must yield the exact decisions of removal."""

    POLICIES = [FirstFitPlacement, RoundRobinPlacement, BestFitPlacement, WorstFitPlacement]

    @pytest.mark.parametrize("policy_cls", POLICIES, ids=lambda cls: cls.name)
    def test_exclusion_equals_removal(self, policy_cls):
        plane, nodes = build_plane(8)
        rng = np.random.default_rng(42)
        # Uneven pre-load so best/worst-fit have real gradients to rank.
        for lc_name in ("lc-01", "lc-03", "lc-04", "lc-06"):
            nodes[lc_name].place_vm(make_vm(*rng.uniform(0.1, 0.6, 3)))
        excluded = {"lc-02", "lc-04"}
        survivors = [node for lc, node in nodes.items() if lc not in excluded]
        masked_policy, removed_policy = policy_cls(), policy_cls()
        for _ in range(10):
            vm = make_vm(*rng.uniform(0.05, 0.5, 3))
            masked = masked_policy.decide(vm, plane.view(exclude_lcs=excluded))
            removed = removed_policy.decide(vm, ClusterView.from_nodes(survivors))
            assert masked.placed == removed.placed
            assert masked.node_id == removed.node_id
            assert masked.node_id not in ("node-02", "node-04")

    def test_exclusion_copy_does_not_corrupt_resident_arrays(self):
        plane, nodes = build_plane(4)
        plane.view(exclude_lcs={"lc-01"})
        view = plane.view()
        assert view.placeable[view.index_of("node-01")]


class TestLcIndex:
    """Satellite 1: the node -> LC index across failure and rejoin."""

    def test_lc_of_resolves_and_identity_checks(self):
        plane, nodes = build_plane(3)
        assert plane.lc_of(nodes["lc-01"]) == "lc-01"
        impostor = make_node("node-01")  # same id, different object
        assert plane.lc_of(impostor) is None

    def test_lc_of_across_failure_and_rejoin(self):
        plane, nodes = build_plane(3)
        node = nodes["lc-01"]
        plane.remove("lc-01")
        assert plane.lc_of(node) is None
        plane.add("lc-01", node)  # the LC recovered and rejoined
        assert plane.lc_of(node) == "lc-01"
        # Rejoin lands at the back of the join order, like dict reinsertion.
        assert plane.nodes_in_join_order()[-1] is node


class TestPlacementFromView:
    """Satellite 4: consolidation instances built off resident arrays."""

    def _loaded_nodes(self):
        rng = np.random.default_rng(7)
        nodes = [make_node(f"node-{i:02d}") for i in range(5)]
        vms = []
        for i, node in enumerate(nodes[:4]):
            for _ in range(i % 3 + 1):
                vm = make_vm(*rng.uniform(0.05, 0.3, 3))
                vm.used = vm.requested * float(rng.uniform(0.3, 0.9))
                node.place_vm(vm)
                vms.append(vm)
        return nodes, vms

    def test_parity_with_placement_from_nodes(self):
        nodes, vms = self._loaded_nodes()
        view = ClusterView.from_nodes(nodes, sort_by_id=False)
        expected, evms, enodes = placement_from_nodes(nodes, vms)
        actual, avms, anodes = placement_from_view(view, vms)
        assert avms == evms and anodes == enodes
        np.testing.assert_array_equal(actual.capacities, expected.capacities)
        np.testing.assert_array_equal(actual.demands, expected.demands)
        np.testing.assert_array_equal(actual.assignment, expected.assignment)

    def test_row_subset_gather(self):
        nodes, vms = self._loaded_nodes()
        view = ClusterView.from_nodes(nodes)
        subset = [nodes[3], nodes[1]]
        subset_vms = [vm for node in subset for vm in node.vms]
        rows = [view.index_of(node.node_id) for node in subset]
        expected, _, _ = placement_from_nodes(subset, subset_vms)
        actual, _, anodes = placement_from_view(view, subset_vms, rows=rows)
        assert anodes == subset
        np.testing.assert_array_equal(actual.capacities, expected.capacities)
        np.testing.assert_array_equal(actual.assignment, expected.assignment)

    def test_reconfiguration_plan_parity_on_identical_seeds(self):
        """The view-backed ACO path plans the same moves as the copying path."""

        nodes, _ = self._loaded_nodes()

        def make_policy():
            return ReconfigurationPolicy(
                algorithm=VectorizedACOConsolidation(
                    ACOParameters(n_ants=4, n_cycles=6),
                    rng=np.random.default_rng(123),
                )
            )

        copying = make_policy().plan(nodes)  # plan() only computes, never executes
        plane = DecisionPlane()
        for i, node in enumerate(nodes):
            plane.add(f"lc-{i:02d}", node)
        resident = make_policy().plan(
            plane.nodes_in_join_order(), view=plane.join_order_view()
        )
        assert copying.hosts_before == resident.hosts_before
        assert copying.hosts_after == resident.hosts_after
        assert [
            (vm.vm_id, src.node_id, dst.node_id) for vm, src, dst in copying.moves
        ] == [(vm.vm_id, src.node_id, dst.node_id) for vm, src, dst in resident.moves]
