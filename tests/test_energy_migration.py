"""Tests for energy accounting, the power-state manager and the live-migration model."""

from __future__ import annotations

import pytest

from repro.cluster.node import NodeState
from repro.cluster.power import PowerStateSpec
from repro.energy.accounting import EnergyMeter, static_placement_energy
from repro.energy.power_manager import PowerManagerConfig, PowerStateManager
from repro.migration.model import MigrationCostModel, MigrationExecutor
from repro.workloads.traces import ConstantTrace

from tests.conftest import make_node, make_vm


class TestEnergyMeter:
    def test_idle_node_energy_integration(self, sim):
        node = make_node()
        meter = EnergyMeter(sim, [node], sample_interval=10.0)
        sim.run(until=100.0)
        report = meter.report()
        expected = node.power_model.idle_power() * 100.0
        assert report.node_energy_joules[node.node_id] == pytest.approx(expected, rel=1e-6)
        assert report.horizon_seconds == pytest.approx(100.0)

    def test_busy_node_draws_more_than_idle(self, sim):
        idle_node = make_node("idle")
        busy_node = make_node("busy")
        vm = make_vm(cpu=0.8, trace=ConstantTrace(1.0))
        busy_node.place_vm(vm)
        vm.update_usage(0.0)
        meter = EnergyMeter(sim, [idle_node, busy_node], sample_interval=10.0)
        sim.run(until=100.0)
        report = meter.report()
        assert report.node_energy_joules["busy"] > report.node_energy_joules["idle"]

    def test_power_change_mid_run_is_captured(self, sim):
        node = make_node()
        meter = EnergyMeter(sim, [node], sample_interval=1000.0)

        def load_node():
            vm = make_vm(cpu=1.0, trace=ConstantTrace(1.0))
            node.place_vm(vm, now=sim.now)
            vm.update_usage(sim.now)
            meter.update()  # explicit update at the discontinuity

        sim.schedule(50.0, load_node)
        sim.run(until=100.0)
        report = meter.report()
        expected = node.power_model.idle_power() * 50.0 + node.power_model.max_power() * 50.0
        assert report.node_energy_joules[node.node_id] == pytest.approx(expected, rel=1e-3)

    def test_transition_and_computation_energy_buckets(self, sim):
        node = make_node()
        meter = EnergyMeter(sim, [node], sample_interval=10.0, computation_power_watts=100.0)
        meter.add_transition_energy(500.0)
        joules = meter.charge_computation_runtime(2.0)
        assert joules == pytest.approx(200.0)
        report = meter.report()
        assert report.transition_energy_joules == pytest.approx(500.0)
        assert report.computation_energy_joules == pytest.approx(200.0)
        assert report.total_energy_joules > report.infrastructure_energy_joules

    def test_negative_values_rejected(self, sim):
        meter = EnergyMeter(sim, [make_node()], sample_interval=10.0)
        with pytest.raises(ValueError):
            meter.add_transition_energy(-1.0)
        with pytest.raises(ValueError):
            meter.charge_computation_runtime(-1.0)

    def test_kwh_conversion(self, sim):
        meter = EnergyMeter(sim, [], sample_interval=10.0)
        meter.add_computation_energy(3.6e6)
        assert meter.report().total_energy_kwh == pytest.approx(1.0)

    def test_static_placement_energy(self):
        energy = static_placement_energy(10, 0.5, 3600.0, p_idle=100.0, p_max=200.0)
        assert energy == pytest.approx(10 * 150.0 * 3600.0)
        with pytest.raises(ValueError):
            static_placement_energy(-1, 0.5, 10.0)
        with pytest.raises(ValueError):
            static_placement_energy(1, 1.5, 10.0)


class TestPowerStateManager:
    def make_manager(self, sim, node_count=3, **config_kwargs):
        nodes = [make_node(f"node-{i}") for i in range(node_count)]
        settings = {
            "enabled": True,
            "idle_time_threshold": 60.0,
            "check_interval": 30.0,
            "min_powered_on_hosts": 1,
        }
        settings.update(config_kwargs)
        manager = PowerStateManager(sim, nodes, config=PowerManagerConfig(**settings))
        return manager, nodes

    def test_idle_hosts_suspended_after_threshold(self, sim):
        manager, nodes = self.make_manager(sim)
        sim.run(until=300.0)
        suspended = [node for node in nodes if node.state is NodeState.SUSPENDED]
        powered_on = [node for node in nodes if node.state is NodeState.ON]
        assert len(suspended) == 2  # one host kept as reserve
        assert len(powered_on) == 1
        assert manager.suspend_count == 2

    def test_busy_hosts_never_suspended(self, sim):
        manager, nodes = self.make_manager(sim)
        vm = make_vm()
        nodes[0].place_vm(vm)
        sim.run(until=300.0)
        assert nodes[0].state is NodeState.ON

    def test_reserve_hosts_respected(self, sim):
        manager, nodes = self.make_manager(sim, min_powered_on_hosts=3)
        sim.run(until=300.0)
        assert all(node.state is NodeState.ON for node in nodes)

    def test_wakeup_brings_host_back(self, sim):
        manager, nodes = self.make_manager(sim)
        sim.run(until=300.0)
        victim = next(node for node in nodes if node.state is NodeState.SUSPENDED)
        ready = []
        manager.wakeup(victim, on_ready=lambda node: ready.append(node.node_id))
        sim.run(until=400.0)
        assert victim.state is NodeState.ON
        assert ready == [victim.node_id]
        assert manager.wakeup_count == 1

    def test_ensure_capacity_wakes_enough_hosts(self, sim):
        manager, nodes = self.make_manager(sim)
        sim.run(until=300.0)
        assert manager.powered_on_count() == 1
        woken = manager.ensure_capacity(3)
        assert woken == 2
        # Check right after the wake-up latency but before the idle-time
        # threshold would legitimately re-suspend the still-idle hosts.
        sim.run(until=340.0)
        assert manager.powered_on_count() == 3

    def test_transition_energy_charged_to_meter(self, sim):
        nodes = [make_node(f"node-{i}") for i in range(2)]
        meter = EnergyMeter(sim, nodes, sample_interval=10.0)
        config = PowerManagerConfig(enabled=True, idle_time_threshold=10.0, check_interval=10.0, min_powered_on_hosts=0)
        spec = PowerStateSpec(suspend_energy=123.0, wakeup_energy=0.0)
        PowerStateManager(sim, nodes, config=config, spec=spec, energy_meter=meter)
        sim.run(until=100.0)
        assert meter.report().transition_energy_joules == pytest.approx(2 * 123.0)

    def test_disabled_manager_does_nothing(self, sim):
        nodes = [make_node()]
        manager = PowerStateManager(sim, nodes, config=PowerManagerConfig(enabled=False))
        sim.run(until=500.0)
        assert nodes[0].state is NodeState.ON
        assert manager.check_idle_hosts() == []

    def test_suspended_hosts_save_energy(self, sim):
        # Two identical idle clusters, one with power management.
        plain = [make_node(f"plain-{i}") for i in range(4)]
        managed = [make_node(f"managed-{i}") for i in range(4)]
        meter_plain = EnergyMeter(sim, plain, sample_interval=60.0)
        meter_managed = EnergyMeter(sim, managed, sample_interval=60.0)
        config = PowerManagerConfig(enabled=True, idle_time_threshold=60.0, check_interval=30.0, min_powered_on_hosts=0)
        PowerStateManager(sim, managed, config=config, energy_meter=meter_managed)
        sim.run(until=4 * 3600.0)
        assert meter_managed.report().total_energy_joules < 0.5 * meter_plain.report().total_energy_joules

    def test_callbacks_invoked(self, sim):
        events = []
        nodes = [make_node(f"node-{i}") for i in range(2)]
        config = PowerManagerConfig(enabled=True, idle_time_threshold=10.0, check_interval=10.0, min_powered_on_hosts=0)
        manager = PowerStateManager(
            sim,
            nodes,
            config=config,
            on_suspend=lambda node: events.append(("suspend", node.node_id)),
            on_wakeup=lambda node: events.append(("wakeup", node.node_id)),
        )
        sim.run(until=100.0)
        manager.wakeup(nodes[0])
        sim.run(until=200.0)
        kinds = [kind for kind, _ in events]
        assert "suspend" in kinds and "wakeup" in kinds

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PowerManagerConfig(idle_time_threshold=-1.0)
        with pytest.raises(ValueError):
            PowerManagerConfig(check_interval=0.0)


class TestMigrationModel:
    def test_duration_scales_with_memory(self):
        model = MigrationCostModel()
        small = model.duration_seconds(memory_mb=512.0, bandwidth_mbps=1000.0)
        large = model.duration_seconds(memory_mb=4096.0, bandwidth_mbps=1000.0)
        assert large > small

    def test_duration_decreases_with_bandwidth(self):
        model = MigrationCostModel()
        slow = model.duration_seconds(memory_mb=1024.0, bandwidth_mbps=100.0)
        fast = model.duration_seconds(memory_mb=1024.0, bandwidth_mbps=1000.0)
        assert fast < slow

    def test_transferred_exceeds_memory_due_to_dirtying(self):
        model = MigrationCostModel(dirty_rate_mbps=100.0)
        assert model.transferred_mb(1024.0, 1000.0) > 1024.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MigrationCostModel(downtime_seconds=-1.0)
        with pytest.raises(ValueError):
            MigrationCostModel().duration_seconds(1024.0, 0.0)

    def test_successful_migration_moves_vm(self, sim):
        source, destination = make_node("src"), make_node("dst")
        vm = make_vm(0.4, 0.4, 0.2)
        source.place_vm(vm)
        executor = MigrationExecutor(sim)
        completions = []
        assert executor.migrate(vm, source, destination, on_complete=lambda v: completions.append(v))
        # During migration the VM is reserved on both hosts.
        assert source.hosts_vm(vm) and destination.hosts_vm(vm)
        assert executor.is_migrating(vm)
        sim.run()
        assert not source.hosts_vm(vm)
        assert destination.hosts_vm(vm)
        assert vm.host_id == "dst"
        assert vm.migrations == 1
        assert completions == [vm]
        assert executor.stats.completed == 1

    def test_migration_rejected_if_destination_full(self, sim):
        source, destination = make_node("src"), make_node("dst")
        destination.place_vm(make_vm(0.9, 0.9, 0.9))
        vm = make_vm(0.4, 0.4, 0.2)
        source.place_vm(vm)
        failures = []
        executor = MigrationExecutor(sim)
        assert not executor.migrate(vm, source, destination, on_failed=lambda v, r: failures.append(r))
        assert failures and "destination" in failures[0]

    def test_migration_rejected_if_vm_not_on_source(self, sim):
        executor = MigrationExecutor(sim)
        vm = make_vm()
        assert not executor.migrate(vm, make_node("a"), make_node("b"))

    def test_double_migration_rejected(self, sim):
        source, destination = make_node("src"), make_node("dst")
        vm = make_vm(0.2, 0.2, 0.2)
        source.place_vm(vm)
        executor = MigrationExecutor(sim)
        assert executor.migrate(vm, source, destination)
        assert not executor.migrate(vm, source, destination)

    def test_source_failure_during_migration_aborts_it(self, sim):
        source, destination = make_node("src"), make_node("dst")
        vm = make_vm(0.2, 0.2, 0.2)
        source.place_vm(vm)
        executor = MigrationExecutor(sim)
        failures = []
        executor.migrate(vm, source, destination, on_failed=lambda v, r: failures.append(r))
        # The source host crashes mid-migration, killing the VM.
        def crash():
            source.evict_all(sim.now)
            vm.mark_failed(sim.now)

        sim.schedule(0.5, crash)
        sim.run()
        assert executor.stats.failed == 1
        assert not destination.hosts_vm(vm)
        assert failures

    def test_bandwidth_lookup_used(self, sim):
        lookups = []

        def lookup(src, dst):
            lookups.append((src, dst))
            return 500.0

        executor = MigrationExecutor(sim, bandwidth_lookup=lookup)
        source, destination = make_node("src"), make_node("dst")
        vm = make_vm(0.2, 0.2, 0.2)
        source.place_vm(vm)
        executor.migrate(vm, source, destination)
        assert lookups == [("src", "dst")]
