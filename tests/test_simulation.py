"""Tests for the discrete-event simulation kernel (engine, processes, timers, randomness)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulation.engine import Simulator, SimulationError
from repro.simulation.process import Process, ProcessKilled
from repro.simulation.randomness import RandomRouter
from repro.simulation.timers import PeriodicTimer, Timeout


class TestSimulatorScheduling:
    def test_schedule_runs_callback_at_correct_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_fifo_order(self, sim):
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_priority_overrides_fifo_at_same_time(self, sim):
        order = []
        sim.schedule(1.0, order.append, "normal")
        sim.schedule(1.0, order.append, "high", priority=Simulator.PRIORITY_HIGH)
        sim.run()
        assert order == ["high", "normal"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_the_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_advances_clock_to_until(self, sim):
        sim.schedule(1.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 10.0
        assert sim.now == 10.0

    def test_run_until_does_not_execute_later_events(self, sim):
        seen = []
        sim.schedule(5.0, seen.append, "early")
        sim.schedule(15.0, seen.append, "late")
        sim.run(until=10.0)
        assert seen == ["early"]
        sim.run()
        assert seen == ["early", "late"]

    def test_cancelled_event_does_not_run(self, sim):
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []
        assert not event.pending

    def test_step_executes_single_event(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        sim.step()
        assert seen == [1]
        assert sim.now == 1.0

    def test_peek_returns_next_event_time(self, sim):
        assert sim.peek() == math.inf
        sim.schedule(4.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_max_events_limits_processing(self, sim):
        seen = []
        for i in range(10):
            sim.schedule(float(i), seen.append, i)
        sim.run(max_events=3)
        assert len(seen) == 3

    def test_processed_events_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_len_counts_pending_events(self, sim):
        events = [sim.schedule(1.0, lambda: None) for _ in range(4)]
        events[0].cancel()
        assert len(sim) == 3


class TestManualEvents:
    def test_trigger_delivers_value_to_listener(self, sim):
        event = sim.event()
        seen = []
        event.add_listener(lambda ev, ok: seen.append((ev.value, ok)))
        sim.trigger(event, value=42)
        assert seen == [(42, True)]

    def test_trigger_twice_raises(self, sim):
        event = sim.event()
        sim.trigger(event, value=1)
        with pytest.raises(SimulationError):
            sim.trigger(event, value=2)

    def test_listener_added_after_fire_is_called_immediately(self, sim):
        event = sim.event()
        sim.trigger(event, "done")
        seen = []
        event.add_listener(lambda ev, ok: seen.append(ok))
        assert seen == [True]

    def test_cancel_notifies_listeners_with_not_ok(self, sim):
        event = sim.schedule(5.0, lambda: None)
        seen = []
        event.add_listener(lambda ev, ok: seen.append(ok))
        event.cancel()
        assert seen == [False]


class TestServices:
    def test_register_and_get_service(self, sim):
        marker = object()
        sim.register_service("thing", marker)
        assert sim.get_service("thing") is marker
        assert sim.has_service("thing")

    def test_duplicate_registration_rejected(self, sim):
        sim.register_service("thing", 1)
        with pytest.raises(SimulationError):
            sim.register_service("thing", 2)

    def test_missing_service_raises_keyerror(self, sim):
        with pytest.raises(KeyError):
            sim.get_service("nope")


class TestProcess:
    def test_process_sleeps_for_yielded_delay(self, sim):
        trace = []

        def body():
            trace.append(sim.now)
            yield 5.0
            trace.append(sim.now)

        Process(sim, body())
        sim.run()
        assert trace == [0.0, 5.0]

    def test_process_waits_for_event_and_receives_value(self, sim):
        event = sim.event()
        results = []

        def body():
            value = yield event
            results.append(value)

        Process(sim, body())
        sim.schedule(3.0, lambda: sim.trigger(event, "payload"))
        sim.run()
        assert results == ["payload"]

    def test_process_return_value_recorded(self, sim):
        def body():
            yield 1.0
            return "done"

        process = Process(sim, body())
        sim.run()
        assert not process.alive
        assert process.value == "done"

    def test_process_waits_for_other_process(self, sim):
        def child():
            yield 2.0
            return 99

        results = []

        def parent():
            value = yield Process(sim, child(), name="child")
            results.append((sim.now, value))

        Process(sim, parent(), name="parent")
        sim.run()
        assert results == [(2.0, 99)]

    def test_kill_terminates_process(self, sim):
        progress = []

        def body():
            progress.append("start")
            try:
                yield 100.0
            except ProcessKilled:
                progress.append("killed")
                raise

        process = Process(sim, body())
        sim.run(until=1.0)
        process.kill()
        assert not process.alive
        assert progress == ["start", "killed"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(SimulationError):
            Process(sim, lambda: None)  # type: ignore[arg-type]

    def test_terminated_event_fires(self, sim):
        def body():
            yield 1.0
            return 7

        process = Process(sim, body())
        seen = []
        process.terminated.add_listener(lambda ev, ok: seen.append(ev.value))
        sim.run()
        assert seen == [7]


class TestPeriodicTimer:
    def test_timer_fires_repeatedly(self, sim):
        hits = []
        PeriodicTimer(sim, 2.0, lambda: hits.append(sim.now))
        sim.run(until=10.0)
        assert hits == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_timer_stop_prevents_future_fires(self, sim):
        hits = []
        timer = PeriodicTimer(sim, 1.0, lambda: hits.append(sim.now))
        sim.schedule(3.5, timer.stop)
        sim.run(until=10.0)
        assert hits == [1.0, 2.0, 3.0]
        assert not timer.running

    def test_start_immediately_fires_at_time_zero(self, sim):
        hits = []
        PeriodicTimer(sim, 5.0, lambda: hits.append(sim.now), start_immediately=True)
        sim.run(until=6.0)
        assert hits[0] == 0.0

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 1.0, lambda: None, jitter=0.1)

    def test_jitter_varies_intervals_but_keeps_firing(self, sim):
        rng = np.random.default_rng(0)
        hits = []
        PeriodicTimer(sim, 2.0, lambda: hits.append(sim.now), jitter=0.5, rng=rng)
        sim.run(until=20.0)
        gaps = np.diff(hits)
        assert len(hits) >= 8
        assert np.all(gaps >= 1.5 - 1e-9)
        assert np.all(gaps <= 2.5 + 1e-9)
        assert len(set(np.round(gaps, 6))) > 1

    def test_fired_count_tracks_invocations(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        sim.run(until=5.0)
        assert timer.fired_count == 5


class TestTimeout:
    def test_timeout_fires_after_duration(self, sim):
        fired = []
        Timeout(sim, 5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_restart_pushes_deadline_back(self, sim):
        fired = []
        timeout = Timeout(sim, 5.0, lambda: fired.append(sim.now))
        sim.schedule(3.0, timeout.restart)
        sim.run()
        assert fired == [8.0]

    def test_cancel_prevents_firing(self, sim):
        fired = []
        timeout = Timeout(sim, 5.0, lambda: fired.append(True))
        sim.schedule(1.0, timeout.cancel)
        sim.run()
        assert fired == []
        assert not timeout.armed

    def test_restart_with_new_duration(self, sim):
        fired = []
        timeout = Timeout(sim, 5.0, lambda: fired.append(sim.now), auto_start=False)
        timeout.restart(duration=2.0)
        sim.run()
        assert fired == [2.0]

    def test_expired_flag(self, sim):
        timeout = Timeout(sim, 1.0, lambda: None)
        sim.run()
        assert timeout.expired


class TestRandomRouter:
    def test_same_seed_same_stream_reproducible(self):
        a = RandomRouter(1).stream("workload")
        b = RandomRouter(1).stream("workload")
        assert np.allclose(a.random(10), b.random(10))

    def test_different_names_give_independent_streams(self):
        router = RandomRouter(1)
        x = router.stream("x").random(5)
        y = router.stream("y").random(5)
        assert not np.allclose(x, y)

    def test_stream_is_cached(self):
        router = RandomRouter(1)
        assert router.stream("a") is router.stream("a")

    def test_creation_order_does_not_matter(self):
        first = RandomRouter(3)
        first.stream("alpha")
        alpha_then_beta = first.stream("beta").random(4)
        second = RandomRouter(3)
        beta_only = second.stream("beta").random(4)
        assert np.allclose(alpha_then_beta, beta_only)

    def test_reseed_resets_streams(self):
        router = RandomRouter(1)
        before = router.stream("s").random(3)
        router.reseed(2)
        after = router.stream("s").random(3)
        assert not np.allclose(before, after)

    def test_contains(self):
        router = RandomRouter(0)
        assert "x" not in router
        router.stream("x")
        assert "x" in router
