"""Component-level tests for the hierarchy: config validation, Component base
behaviour, Entry Points, clients and the GM/LC protocol details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.hierarchy.common import Component, ComponentState
from repro.hierarchy.config import HierarchyConfig as ConfigClass
from repro.network.message import Message, MessageType
from repro.network.multicast import MulticastRegistry
from repro.network.transport import Network
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator

from tests.conftest import make_vm


class TestHierarchyConfig:
    def test_defaults_are_valid(self):
        config = HierarchyConfig()
        assert config.heartbeat_timeout > config.gl_heartbeat_interval

    def test_heartbeat_timeout_must_exceed_intervals(self):
        with pytest.raises(ValueError):
            HierarchyConfig(gl_heartbeat_interval=5.0, heartbeat_timeout=4.0)

    def test_negative_intervals_rejected(self):
        with pytest.raises(ValueError):
            HierarchyConfig(monitoring_interval=0.0)
        with pytest.raises(ValueError):
            HierarchyConfig(reconfiguration_interval=-1.0)
        with pytest.raises(ValueError):
            HierarchyConfig(entry_points=0)

    def test_config_is_shared_not_copied(self):
        config = ConfigClass(seed=5)
        system = SnoozeSystem(SystemSpec(local_controllers=2, group_managers=1), config=config)
        assert system.config is config


class TestComponentBase:
    def make_component(self, sim):
        network = Network(sim)
        MulticastRegistry(network)
        return Component("comp-0", sim, network), network

    def test_start_fail_recover_cycle(self, sim):
        component, network = self.make_component(sim)
        assert component.state is ComponentState.CREATED
        component.start()
        assert component.is_running
        component.fail()
        assert component.state is ComponentState.FAILED
        assert not network.is_connected("comp-0")
        component.recover()
        assert component.is_running
        assert network.is_connected("comp-0")

    def test_fail_stops_timers(self, sim):
        component, _ = self.make_component(sim)
        component.start()
        hits = []
        component.add_timer(1.0, lambda: hits.append(sim.now))
        sim.run(until=3.0)
        component.fail()
        sim.run(until=10.0)
        assert len(hits) == 3

    def test_failed_component_ignores_messages(self, sim):
        component, network = self.make_component(sim)
        received = []
        component.handle_message = received.append  # type: ignore[assignment]
        component.start()
        component.fail()
        network.reconnect("comp-0")  # even if traffic reaches it...
        network.send(Message(MessageType.VM_SUBMIT, sender="x", recipient="comp-0"))
        sim.run()
        assert received == []

    def test_stop_is_terminal_for_timers(self, sim):
        component, _ = self.make_component(sim)
        component.start()
        hits = []
        component.add_timer(1.0, lambda: hits.append(1))
        component.stop()
        sim.run(until=5.0)
        assert hits == []
        assert component.state is ComponentState.STOPPED

    def test_double_start_is_idempotent(self, sim):
        component, _ = self.make_component(sim)
        component.start()
        component.start()
        assert component.is_running

    def test_log_event_goes_to_event_log(self, sim):
        component, _ = self.make_component(sim)
        component.start()
        component.log_event("custom", detail=1)
        assert component.event_log.count("custom") == 1


class TestEntryPoint:
    def test_get_leader_operation(self, small_system):
        # Exercised through the client RPC channel.
        results = []
        small_system.client.rpc.call(
            "ep-00", "get_leader", on_reply=results.append, timeout=5.0
        )
        small_system.run(5.0)
        assert results and results[0]["leader"] == small_system.current_leader()

    def test_submission_without_leader_is_rejected(self, sim):
        from repro.hierarchy.entry_point import EntryPoint
        from repro.network.rpc import RpcChannel

        network = Network(sim)
        MulticastRegistry(network)
        entry_point = EntryPoint("ep-x", sim, network)
        entry_point.start()
        caller = RpcChannel(network, "tester")
        network.register("tester", caller.handle_message)
        outcomes = []
        caller.call("ep-x", "submit_vm", kwargs={"vm": make_vm()}, on_reply=outcomes.append)
        sim.run(until=5.0)
        assert outcomes and outcomes[0]["placed"] is False

    def test_failed_entry_point_does_not_break_client(self, small_system):
        # Two entry points are not configured here (only ep-00); the client
        # retries through the same list and eventually reports failure instead
        # of hanging.
        small_system.entry_points["ep-00"].fail()
        record = small_system.client.submit(make_vm(0.1, 0.1, 0.1))
        small_system.run(200.0)
        assert not record.pending
        assert not record.placed


class TestClientWithMultipleEntryPoints:
    def test_client_fails_over_to_second_entry_point(self):
        system = SnoozeSystem(
            SystemSpec(local_controllers=4, group_managers=2, entry_points=2),
            config=HierarchyConfig(seed=17),
            seed=17,
        )
        system.start()
        system.entry_points["ep-00"].fail()
        generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.2), BatchArrival(0.0))
        system.submit_requests(generator.generate(4, np.random.default_rng(0)))
        system.run(240.0)
        assert system.client.placed_count() == 4

    def test_client_requires_entry_points(self, small_system):
        from repro.hierarchy.client import SnoozeClient

        with pytest.raises(ValueError):
            SnoozeClient("c", small_system.sim, small_system.network, entry_points=[])


class TestGroupManagerProtocol:
    def test_leader_tracks_gm_summaries(self, small_system):
        small_system.run(30.0)
        leader = small_system.leader()
        assert set(leader.gm_summaries) == {
            name for name, gm in small_system.group_managers.items() if gm.is_running
        }

    def test_gm_summary_reflects_lc_count(self, small_system):
        small_system.run(30.0)
        leader = small_system.leader()
        total_lcs = sum(
            summary.local_controller_count for summary in leader.gm_summaries.values()
        )
        assert total_lcs == 6

    def test_describe_operations(self, small_system):
        leader = small_system.leader()
        info = leader._op_describe()
        assert info["is_leader"] is True
        lc = next(iter(small_system.local_controllers.values()))
        lc_info = lc._op_describe()
        assert lc_info["assigned_gm"] in small_system.group_managers

    def test_non_leader_rejects_submission(self, small_system):
        non_leader = next(
            gm for gm in small_system.group_managers.values() if gm.is_running and not gm.is_leader
        )
        reply_event = non_leader._op_submit_vm(make_vm())
        small_system.run(1.0)
        assert reply_event.fired
        assert reply_event.value["placed"] is False

    def test_assign_lc_round_robin_rotates(self, small_system):
        leader = small_system.leader()
        assignments = [leader._op_assign_lc(lc_name=f"fake-{i}")["gm"] for i in range(4)]
        assert len(set(assignments)) == 2  # alternates between the two GMs

    def test_unknown_reconfiguration_algorithm_rejected(self):
        with pytest.raises(ValueError):
            SnoozeSystem(
                SystemSpec(local_controllers=2, group_managers=1),
                config=HierarchyConfig(reconfiguration_algorithm="bogus"),
            )


class TestLocalControllerProtocol:
    def test_start_vm_rejected_when_full(self, small_system):
        lc = next(iter(small_system.local_controllers.values()))
        big = make_vm(0.9, 0.9, 0.9)
        assert lc._op_start_vm(big)["accepted"] is True
        second = make_vm(0.5, 0.5, 0.5)
        result = lc._op_start_vm(second)
        assert result["accepted"] is False

    def test_terminate_vm_by_id(self, small_system):
        lc = next(iter(small_system.local_controllers.values()))
        vm = make_vm(0.2, 0.2, 0.1)
        lc._op_start_vm(vm)
        assert lc._op_terminate_vm(vm.vm_id)["terminated"] is True
        assert lc._op_terminate_vm(vm.vm_id)["terminated"] is False
        assert lc.node.vm_count == 0

    def test_migrate_vm_unknown_destination(self, small_system):
        lc = next(iter(small_system.local_controllers.values()))
        vm = make_vm(0.2, 0.2, 0.1)
        lc._op_start_vm(vm)
        result = lc._op_migrate_vm(vm.vm_id, "no-such-node")
        assert result["started"] is False

    def test_migrate_vm_to_peer(self, small_system):
        lcs = list(small_system.local_controllers.values())
        source, destination = lcs[0], lcs[1]
        vm = make_vm(0.2, 0.2, 0.1)
        source._op_start_vm(vm)
        result = source._op_migrate_vm(vm.vm_id, destination.node.node_id)
        assert result["started"] is True
        small_system.run(120.0)
        assert destination.node.hosts_vm(vm)
        assert not source.node.hosts_vm(vm)
