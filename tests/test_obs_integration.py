"""Integration tests: observability never changes simulated behaviour.

The contract under test:

* golden fixtures stay byte-identical with every pillar enabled;
* trace context propagates through the network (including batched
  same-instant deliveries) without leaking between handlers;
* exports are structurally valid (Chrome trace-event JSON, Prometheus text)
  and round-trip through the CLI;
* canonical JSON neutralizes exactly the sections declared in
  :data:`repro.scenarios.runner.NONDETERMINISTIC_SECTIONS`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli.main import main
from repro.network.message import Message, MessageType
from repro.network.transport import Network, NetworkConfig
from repro.obs import ObservabilityConfig, ObservabilityPlane
from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario, scenario_names
from repro.scenarios.runner import NONDETERMINISTIC_SECTIONS, ScenarioResult
from repro.simulation.engine import Simulator
from tests.golden.regenerate import GOLDEN_SEED, fixture_path, golden_duration

#: The pillar combinations the identity tests sweep.
PILLARS = {
    "none": {"metrics": False, "tracing": False, "profiling": False},
    "metrics": {"metrics": True, "tracing": False, "profiling": False},
    "tracing": {"metrics": False, "tracing": True, "profiling": False},
    "profiling": {"metrics": False, "tracing": False, "profiling": True},
    "all": {"metrics": True, "tracing": True, "profiling": True},
}


def _spec_with_obs(name: str, **pillars: bool) -> ScenarioSpec:
    """The catalog spec ``name`` with an explicit observability selection."""
    data = get_scenario(name).to_dict()
    data["config"] = dict(data["config"])
    data["config"]["observability"] = dict(pillars)
    return ScenarioSpec.from_dict(data)


class TestGoldenIdentityAllPillarsOn:
    """Every committed fixture reproduces byte-identically with all pillars on."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_fixture_identical_with_full_observability(self, name):
        spec = _spec_with_obs(name, **PILLARS["all"])
        result = ScenarioRunner(
            spec, seed=GOLDEN_SEED, duration=golden_duration(get_scenario(name))
        ).run()
        assert result.canonical_json() + "\n" == fixture_path(name).read_text()


class TestPerPillarIdentity:
    """Each pillar alone leaves the canonical result untouched."""

    @pytest.fixture(scope="class")
    def baseline(self):
        spec = _spec_with_obs("steady-churn", **PILLARS["none"])
        return ScenarioRunner(spec, seed=11, duration=240.0).run().canonical_json()

    @pytest.mark.parametrize("pillar", ["metrics", "tracing", "profiling"])
    def test_single_pillar_is_behaviour_neutral(self, baseline, pillar):
        spec = _spec_with_obs("steady-churn", **PILLARS[pillar])
        result = ScenarioRunner(spec, seed=11, duration=240.0).run()
        assert result.canonical_json() == baseline


class TestTraceContextPropagation:
    def _network(self):
        sim = Simulator()
        plane = ObservabilityPlane.build(
            sim, ObservabilityConfig(metrics=False, tracing=True, profiling=False)
        )
        # Deterministic network (no jitter, no loss) so same-instant sends
        # coalesce into one batched delivery event.
        network = Network(sim, NetworkConfig(base_latency=0.001, jitter=0.0))
        assert network._tracer is plane.tracer
        return sim, plane.tracer, network

    def test_context_stamped_at_send_and_active_during_delivery(self):
        sim, tracer, network = self._network()
        seen = []
        network.register("a", lambda msg: None)
        network.register("b", lambda msg: seen.append(tracer.current))
        with tracer.span("op", "a") as span:
            network.send(Message(msg_type=MessageType.RPC_REQUEST, sender="a", recipient="b"))
        sim.run(until=1.0)
        assert seen == [span.ctx]
        assert tracer.current is None

    def test_explicit_context_not_overwritten(self):
        sim, tracer, network = self._network()
        seen = []
        network.register("a", lambda msg: None)
        network.register("b", lambda msg: seen.append(tracer.current))
        pinned = tracer.begin("pinned", "a").ctx
        with tracer.span("other", "a"):
            network.send(
                Message(
                    msg_type=MessageType.RPC_REQUEST,
                    sender="a",
                    recipient="b",
                    trace_ctx=pinned,
                )
            )
        sim.run(until=1.0)
        assert seen == [pinned]

    def test_batched_same_instant_deliveries_do_not_leak_context(self):
        sim, tracer, network = self._network()
        seen = {}
        network.register("a", lambda msg: None)
        network.register("x", lambda msg: seen.setdefault("x", tracer.current))
        network.register("y", lambda msg: seen.setdefault("y", tracer.current))
        first = tracer.begin("first", "a")
        second = tracer.begin("second", "a", root=True)

        def send_both():
            tracer.activate(first.ctx)
            network.send(Message(msg_type=MessageType.RPC_REQUEST, sender="a", recipient="x"))
            tracer.activate(second.ctx)
            network.send(Message(msg_type=MessageType.RPC_REQUEST, sender="a", recipient="y"))
            tracer.restore(None)

        sim.schedule(0.5, send_both)
        sim.run(until=2.0)
        # Both sends happened at the same instant, so they shared one batched
        # delivery event -- each handler must still see its own sender context.
        assert seen == {"x": first.ctx, "y": second.ctx}
        assert tracer.current is None

    def test_handler_spans_join_the_senders_trace(self):
        sim, tracer, network = self._network()
        children = []
        network.register("a", lambda msg: None)

        def handler(msg):
            children.append(tracer.begin("child", "b"))

        network.register("b", handler)
        with tracer.span("parent", "a") as parent:
            network.send(Message(msg_type=MessageType.RPC_REQUEST, sender="a", recipient="b"))
        sim.run(until=1.0)
        (child,) = children
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id


class TestChromeTraceExport:
    @pytest.fixture(scope="class")
    def traced_run(self):
        spec = _spec_with_obs("steady-churn", metrics=True, tracing=True, profiling=False)
        runner = ScenarioRunner(spec, seed=11, duration=240.0)
        runner.run()
        return runner.system

    def test_trace_event_json_structure(self, traced_run):
        trace = traced_run.obs.chrome_trace()
        assert sorted(trace) == ["displayTimeUnit", "traceEvents"]
        assert json.loads(json.dumps(trace)) == trace  # JSON-serializable
        events = trace["traceEvents"]
        tracks = {
            event["tid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        spans = [event for event in events if event["ph"] == "X"]
        assert spans, "a churn run must produce spans"
        for event in spans:
            assert event["tid"] in tracks
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"trace_id", "span_id"} <= set(event["args"])
        # The submission chain appears end to end, each on its own track.
        names = {event["name"] for event in spans}
        assert {"vm_submit", "submit_forward", "vm_dispatch", "vm_placement", "vm_boot"} <= names

    def test_submission_chain_shares_one_trace(self, traced_run):
        spans = traced_run.obs.tracer.spans
        submits = [span for span in spans if span.name == "vm_submit"]
        assert submits
        for submit in submits:
            chain = [span for span in spans if span.trace_id == submit.trace_id]
            chain_names = {span.name for span in chain}
            assert "submit_forward" in chain_names
            assert "vm_dispatch" in chain_names


class TestCliRoundTrip:
    def test_trace_and_metrics_exports(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        prom_path = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "scenario", "run", "steady-churn",
                    "--seed", "11", "--duration", "240", "--json",
                    "--trace", str(trace_path),
                    "--metrics-out", str(prom_path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        result = json.loads(captured.out)  # stdout stays machine-readable
        assert result["observability"]["tracing"]["spans"] > 0
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert "# TYPE repro_simulator_events_total counter" in prom_path.read_text()

    def test_metrics_json_extension(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "scenario", "run", "steady-churn",
                    "--seed", "11", "--duration", "240",
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        dump = json.loads(metrics_path.read_text())
        assert set(dump) == {"counters", "gauges", "histograms"}
        assert dump["counters"]["simulator_events_total"][""] > 0

    def test_obs_summarize(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "scenario", "run", "steady-churn",
                    "--seed", "11", "--duration", "240",
                    "--trace", str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summarize", str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["events"] > 0
        assert "vm_submit" in summary["spans"]

    def test_obs_summarize_rejects_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.json")]) == 1
        assert "cannot read trace" in capsys.readouterr().err


class TestCanonicalSchema:
    def test_every_nondeterministic_section_is_neutralized(self):
        spec = _spec_with_obs("steady-churn", **PILLARS["all"])
        result = ScenarioRunner(spec, seed=11, duration=240.0).run()
        canonical = json.loads(result.canonical_json())
        for section, neutral in NONDETERMINISTIC_SECTIONS.items():
            assert canonical[section] == neutral
        # The live result actually carried wall-clock content there, so the
        # schema is doing real work.
        assert result.perf["wall_clock_seconds"] > 0.0
        assert result.observability != {}

    def test_schema_names_are_result_fields(self):
        fields = {f.name for f in ScenarioResult.__dataclass_fields__.values()}
        assert set(NONDETERMINISTIC_SECTIONS) <= fields
