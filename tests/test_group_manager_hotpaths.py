"""Regression tests for the Group Manager's per-event hot-path fixes.

Three bugs rode along with the decision-plane refactor (PR "flat-scale the
decision plane"):

* ``_lc_of_node`` was an O(group size) identity scan per relocation event; it
  is now the plane's ``node_id -> lc_name`` index and must stay consistent
  across LC failure and rejoin.
* ``_op_submit_vm`` rebuilt the leader's own summary from every LC record on
  every submission; a burst of submissions must now reuse the cached summary
  (at most one rebuild per summary interval).
* ``_op_assign_lc`` counted 0 LCs for GMs that had not yet sent their first
  summary, so K simultaneous joins under least-loaded assignment all piled
  onto one GM; pending assignments are now tracked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hierarchy import SnoozeSystem
from repro.monitoring.summary import GroupManagerSummary
from repro.network.message import Message, MessageType
from repro.policies.assignment import LeastLoadedAssignment
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator


def lc_gm(system: SnoozeSystem, lc_name: str):
    """The running GM currently managing ``lc_name`` (None if unassigned)."""
    for gm in system.group_managers.values():
        if gm.is_running and lc_name in gm.local_controllers:
            return gm
    return None


class TestLcOfNodeIndex:
    """Satellite 1: the node -> LC index survives failure and rejoin."""

    def test_index_resolves_every_joined_lc(self, small_system):
        for lc_name, lc in small_system.local_controllers.items():
            gm = lc_gm(small_system, lc_name)
            assert gm is not None
            assert gm._lc_of_node(lc.node) == lc_name

    def test_index_cleared_on_failure_and_restored_on_rejoin(self, small_system):
        lc_name = "lc-000"
        node = small_system.local_controllers[lc_name].node
        gm_before = lc_gm(small_system, lc_name)
        small_system.kill_local_controller(lc_name)
        small_system.run(4 * small_system.config.heartbeat_timeout)
        assert lc_gm(small_system, lc_name) is None
        assert all(
            gm._lc_of_node(node) is None
            for gm in small_system.group_managers.values()
            if gm.is_running
        )
        assert gm_before._lc_of_node(node) is None
        small_system.recover_component(lc_name)
        rejoined = small_system.run_until(
            lambda: lc_gm(small_system, lc_name) is not None, timeout=60.0
        )
        assert rejoined
        assert lc_gm(small_system, lc_name)._lc_of_node(node) == lc_name


class TestSubmissionSummaryReuse:
    """Satellite 2: a burst of submissions reads one cached summary."""

    def test_own_summary_reuses_cache(self, small_system):
        leader = small_system.leader()
        first = leader._own_summary()
        before = leader.summary_rebuilds
        for _ in range(10):
            assert leader._own_summary() is first
        assert leader.summary_rebuilds == before

    def test_cache_invalidated_by_membership_change(self, small_system):
        leader = small_system.leader()
        leader._own_summary()
        before = leader.summary_rebuilds
        lc_name = next(iter(leader.local_controllers))
        small_system.kill_local_controller(lc_name)
        small_system.run(4 * small_system.config.heartbeat_timeout)
        summary = leader._own_summary()
        assert leader.summary_rebuilds > before
        assert summary.local_controller_count == len(leader.local_controllers)

    def test_submission_burst_rebuilds_at_most_once_per_interval(self, small_system):
        leader = small_system.leader()
        small_system.run(1.0)  # drain any in-flight joins
        before = leader.summary_rebuilds
        generator = WorkloadGenerator(
            UniformDemandDistribution(0.05, 0.1), BatchArrival(0.0)
        )
        small_system.submit_requests(generator.generate(12, np.random.default_rng(2)))
        # Run less than one summary_interval: the burst of 12 dispatches may
        # build the leader's own summary at most once (plus at most one
        # scheduled summary tick that straddles the window).
        small_system.run(0.5 * small_system.config.summary_interval)
        assert small_system.client.placed_count() == 12
        assert leader.summary_rebuilds - before <= 2


class TestAssignmentPendingTracking:
    """Satellite 3: K simultaneous joins spread across summary-less GMs.

    The window is the gap between a GM becoming *known* to the Group Leader
    (heartbeat) and its first summary arriving: during it the old code counted
    0 LCs for the GM on every ``_op_assign_lc`` call, so a batch of joins all
    chose the same summary-less GM under least-loaded assignment.
    """

    @pytest.fixture
    def leader(self, small_system):
        leader = small_system.leader()
        leader.assignment_policy = LeastLoadedAssignment()
        # Two GMs the leader knows via heartbeat but has no summary from yet.
        leader.known_gms |= {"gm-77", "gm-88"}
        assert "gm-77" not in leader.gm_summaries
        assert "gm-88" not in leader.gm_summaries
        return leader

    def test_simultaneous_joins_spread_over_summaryless_gms(self, leader):
        chosen = [leader._op_assign_lc(f"lc-x{i:02d}")["gm"] for i in range(6)]
        counts = {gm: chosen.count(gm) for gm in set(chosen)}
        # Without pending tracking all six land on the same summary-less GM.
        assert counts == {"gm-77": 3, "gm-88": 3}
        assert leader._pending_assignments == {"gm-77": 3, "gm-88": 3}

    def test_first_summary_replaces_pending_count(self, leader, small_system):
        for i in range(4):
            leader._op_assign_lc(f"lc-x{i:02d}")
        assert leader._pending_assignments["gm-77"] == 2
        summary = GroupManagerSummary.from_reports("gm-77", small_system.sim.now, [])
        leader._on_gm_summary(
            Message(
                msg_type=MessageType.GM_SUMMARY,
                sender="gm-77",
                recipient=leader.name,
                payload=summary.to_payload(),
            )
        )
        assert "gm-77" not in leader._pending_assignments
        # The real (empty) summary now wins: gm-77 counts 0 again and the next
        # joins go to it until its count catches up.
        assert leader._op_assign_lc("lc-y00")["gm"] == "gm-77"

    def test_pending_cleared_on_gm_failure(self, leader):
        leader._op_assign_lc("lc-x00")
        assert leader._pending_assignments
        leader._gm_failed("gm-77")
        assert "gm-77" not in leader._pending_assignments
