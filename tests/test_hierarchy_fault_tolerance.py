"""Fault-tolerance tests: the paper's Section II.E failure scenarios.

"When a GL fails ... the leader election procedure is restarted by one of the
GMs. ... When a GM fails ... the managed LCs rejoin the hierarchy. ... When a
LC fails ... the GM in charge invalidates its contact information ... VMs are
also terminated."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.vm import VMState
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.workloads import BatchArrival, UniformDemandDistribution, WorkloadGenerator


@pytest.fixture
def loaded_system() -> SnoozeSystem:
    """A 9-LC / 3-GM system with VMs already placed."""
    system = SnoozeSystem(
        SystemSpec(local_controllers=9, group_managers=3, entry_points=2),
        config=HierarchyConfig(seed=31),
        seed=31,
    )
    system.start()
    generator = WorkloadGenerator(UniformDemandDistribution(0.1, 0.25), BatchArrival(0.0))
    system.submit_requests(generator.generate(18, np.random.default_rng(4)))
    system.run(60.0)
    assert system.client.placed_count() == 18
    return system


class TestGroupLeaderFailure:
    def test_new_leader_elected_after_gl_crash(self, loaded_system):
        old_leader = loaded_system.kill_group_leader()
        assert old_leader is not None
        healed = loaded_system.run_until(
            lambda: loaded_system.current_leader() not in (None, old_leader),
            timeout=120.0,
        )
        assert healed
        assert loaded_system.current_leader() != old_leader

    def test_running_vms_unaffected_by_gl_failure(self, loaded_system):
        running_before = loaded_system.running_vm_count()
        loaded_system.kill_group_leader()
        loaded_system.run(120.0)
        assert loaded_system.running_vm_count() == running_before

    def test_lcs_rejoin_after_gl_failure(self, loaded_system):
        loaded_system.kill_group_leader()
        rejoined = loaded_system.run_until(
            lambda: loaded_system.assigned_lc_count() == 9, timeout=240.0
        )
        assert rejoined

    def test_submissions_work_after_failover(self, loaded_system):
        loaded_system.kill_group_leader()
        loaded_system.run_until(lambda: loaded_system.assigned_lc_count() == 9, timeout=240.0)
        placed_before = loaded_system.client.placed_count()
        generator = WorkloadGenerator(UniformDemandDistribution(0.05, 0.15), BatchArrival(0.0))
        loaded_system.submit_requests(generator.generate(4, np.random.default_rng(7)))
        loaded_system.run(60.0)
        assert loaded_system.client.placed_count() == placed_before + 4

    def test_entry_points_learn_new_leader(self, loaded_system):
        old_leader = loaded_system.kill_group_leader()
        loaded_system.run(120.0)
        new_leader = loaded_system.current_leader()
        assert new_leader != old_leader
        for entry_point in loaded_system.entry_points.values():
            assert entry_point.current_gl == new_leader

    def test_recovered_gl_rejoins_as_plain_gm(self, loaded_system):
        old_leader = loaded_system.kill_group_leader()
        loaded_system.run(120.0)
        loaded_system.recover_component(old_leader)
        loaded_system.run(60.0)
        recovered = loaded_system.group_managers[old_leader]
        assert recovered.is_running
        assert not recovered.is_leader
        assert loaded_system.current_leader() != old_leader


class TestGroupManagerFailure:
    def _pick_victim(self, system):
        return next(
            name
            for name, gm in system.group_managers.items()
            if gm.is_running and not gm.is_leader and len(gm.local_controllers) > 0
        )

    def test_orphaned_lcs_rejoin_other_gms(self, loaded_system):
        victim = self._pick_victim(loaded_system)
        orphaned = len(loaded_system.group_managers[victim].local_controllers)
        assert orphaned > 0
        loaded_system.kill_group_manager(victim)
        rejoined = loaded_system.run_until(
            lambda: loaded_system.assigned_lc_count() == 9, timeout=240.0
        )
        assert rejoined
        # The failed GM no longer manages anything.
        assert len(loaded_system.group_managers[victim].local_controllers) == 0

    def test_gl_removes_failed_gm_from_dispatching(self, loaded_system):
        victim = self._pick_victim(loaded_system)
        loaded_system.kill_group_manager(victim)
        loaded_system.run(5 * loaded_system.config.heartbeat_timeout)
        leader = loaded_system.leader()
        assert victim not in leader.known_gms
        assert victim not in leader.gm_summaries

    def test_vms_keep_running_through_gm_failure(self, loaded_system):
        victim = self._pick_victim(loaded_system)
        running_before = loaded_system.running_vm_count()
        loaded_system.kill_group_manager(victim)
        loaded_system.run(180.0)
        assert loaded_system.running_vm_count() == running_before


class TestLocalControllerFailure:
    def test_lc_failure_loses_its_vms_only(self, loaded_system):
        victim_name = next(
            name
            for name, lc in loaded_system.local_controllers.items()
            if lc.is_running and lc.node.vm_count > 0
        )
        victim = loaded_system.local_controllers[victim_name]
        lost = victim.node.vm_count
        running_before = loaded_system.running_vm_count()
        loaded_system.kill_local_controller(victim_name)
        loaded_system.run(120.0)
        assert loaded_system.running_vm_count() == running_before - lost
        failed_vms = [r.vm for r in loaded_system.client.records if r.vm.state is VMState.FAILED]
        assert len(failed_vms) == lost

    def test_gm_invalidates_failed_lc(self, loaded_system):
        victim_name = next(
            name for name, lc in loaded_system.local_controllers.items() if lc.is_running
        )
        owner = loaded_system.local_controllers[victim_name].assigned_gm
        loaded_system.kill_local_controller(victim_name)
        loaded_system.run(4 * loaded_system.config.heartbeat_timeout)
        owning_gm = loaded_system.group_managers[owner]
        if owning_gm.is_running:
            assert victim_name not in owning_gm.local_controllers

    def test_recovered_lc_rejoins_empty(self, loaded_system):
        victim_name = next(
            name
            for name, lc in loaded_system.local_controllers.items()
            if lc.is_running and lc.node.vm_count > 0
        )
        loaded_system.kill_local_controller(victim_name)
        loaded_system.run(60.0)
        loaded_system.recover_component(victim_name)
        rejoined = loaded_system.run_until(
            lambda: loaded_system.local_controllers[victim_name].is_assigned, timeout=120.0
        )
        assert rejoined
        assert loaded_system.local_controllers[victim_name].node.vm_count == 0

    def test_unknown_component_recovery_raises(self, loaded_system):
        with pytest.raises(KeyError):
            loaded_system.recover_component("does-not-exist")


class TestCascadingFailures:
    def test_sequential_gl_failures_until_one_gm_left(self, loaded_system):
        killed = []
        for _ in range(2):
            victim = loaded_system.kill_group_leader()
            killed.append(victim)
            loaded_system.run_until(
                lambda: loaded_system.current_leader() is not None
                and loaded_system.current_leader() not in killed,
                timeout=240.0,
            )
        survivor = loaded_system.current_leader()
        assert survivor is not None
        assert survivor not in killed
        # The survivor eventually manages all LCs.
        loaded_system.run_until(lambda: loaded_system.assigned_lc_count() == 9, timeout=300.0)
        assert loaded_system.assigned_lc_count() == 9

    def test_failure_events_logged(self, loaded_system):
        loaded_system.kill_group_leader()
        loaded_system.run(60.0)
        assert loaded_system.event_log.count("failure_injected") == 1
        assert loaded_system.event_log.count("elected_group_leader") >= 2
