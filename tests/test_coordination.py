"""Tests for the coordination service (znodes, sessions, watches) and leader election."""

from __future__ import annotations

import pytest

from repro.coordination.election import LeaderElection
from repro.coordination.znodes import (
    CoordinationError,
    CoordinationService,
    NodeExistsError,
    NoNodeError,
)


@pytest.fixture
def service(sim):
    return CoordinationService(sim, default_session_timeout=10.0)


class TestZNodes:
    def test_create_and_read(self, service):
        service.create("/config", data={"x": 1})
        assert service.exists("/config")
        assert service.get_data("/config") == {"x": 1}

    def test_create_existing_rejected(self, service):
        service.create("/a")
        with pytest.raises(NodeExistsError):
            service.create("/a")

    def test_relative_path_rejected(self, service):
        with pytest.raises(CoordinationError):
            service.create("relative/path")

    def test_missing_node_raises(self, service):
        with pytest.raises(NoNodeError):
            service.get_data("/missing")
        with pytest.raises(NoNodeError):
            service.delete("/missing")
        with pytest.raises(NoNodeError):
            service.get_children("/missing")

    def test_set_data(self, service):
        service.create("/a", data=1)
        service.set_data("/a", 2)
        assert service.get_data("/a") == 2

    def test_sequential_nodes_get_increasing_suffixes(self, service):
        first = service.create("/queue/item-", sequential=True)
        second = service.create("/queue/item-", sequential=True)
        assert first < second
        assert first.endswith("0000000000")

    def test_parents_auto_created(self, service):
        service.create("/a/b/c/leaf")
        assert service.exists("/a/b/c")
        assert service.exists("/a")

    def test_get_children_sorted(self, service):
        service.create("/root/b")
        service.create("/root/a")
        service.create("/root/c/nested")
        assert service.get_children("/root") == ["a", "b", "c"]

    def test_delete(self, service):
        service.create("/a")
        service.delete("/a")
        assert not service.exists("/a")

    def test_node_count(self, service):
        service.create("/x")
        service.create("/y")
        assert service.node_count() == 2


class TestSessionsAndEphemerals:
    def test_ephemeral_requires_session(self, service):
        with pytest.raises(CoordinationError):
            service.create("/e", ephemeral=True)

    def test_ephemeral_deleted_on_session_expiry(self, sim, service):
        session = service.create_session("gm-0", timeout=5.0)
        service.create("/members/gm-0", session=session, ephemeral=True)
        assert service.exists("/members/gm-0")
        sim.run(until=6.0)  # no touch => expiry
        assert not service.exists("/members/gm-0")
        assert not service.session_alive(session)

    def test_touching_session_keeps_ephemeral_alive(self, sim, service):
        session = service.create_session("gm-0", timeout=5.0)
        service.create("/members/gm-0", session=session, ephemeral=True)
        for t in (3.0, 6.0, 9.0):
            sim.schedule_at(t, service.touch_session, session)
        sim.run(until=12.0)
        assert service.exists("/members/gm-0")

    def test_close_session_removes_ephemerals_immediately(self, sim, service):
        session = service.create_session("gm-0")
        service.create("/members/gm-0", session=session, ephemeral=True)
        service.close_session(session)
        assert not service.exists("/members/gm-0")

    def test_persistent_node_survives_session_expiry(self, sim, service):
        session = service.create_session("gm-0", timeout=2.0)
        service.create("/persistent", session=session, ephemeral=False)
        sim.run(until=5.0)
        assert service.exists("/persistent")

    def test_touching_expired_session_rejected(self, sim, service):
        session = service.create_session("gm-0", timeout=2.0)
        sim.run(until=3.0)
        with pytest.raises(CoordinationError):
            service.touch_session(session)


class TestWatches:
    def test_delete_watch_fires(self, sim, service):
        service.create("/watched")
        fired = []
        service.watch_delete("/watched", fired.append)
        service.delete("/watched")
        sim.run()
        assert fired == ["/watched"]

    def test_delete_watch_on_missing_node_fires_immediately(self, sim, service):
        fired = []
        service.watch_delete("/never-existed", fired.append)
        sim.run()
        assert fired == ["/never-existed"]

    def test_create_watch_fires(self, sim, service):
        fired = []
        service.watch_create("/future", fired.append)
        service.create("/future")
        sim.run()
        assert fired == ["/future"]

    def test_watches_are_one_shot(self, sim, service):
        fired = []
        service.create("/node")
        service.watch_delete("/node", fired.append)
        service.delete("/node")
        sim.run()
        service.create("/node")
        service.delete("/node")
        sim.run()
        assert fired == ["/node"]

    def test_children_watch_fires_on_child_creation(self, sim, service):
        service.create("/parent")
        fired = []
        service.watch_children("/parent", fired.append)
        service.create("/parent/child")
        sim.run()
        assert fired == ["/parent"]


class TestLeaderElection:
    def test_first_candidate_becomes_leader(self, sim, service):
        elected = []
        election = LeaderElection(service, "gm-0", on_elected=lambda: elected.append("gm-0"))
        election.join()
        sim.run(until=1.0)
        assert election.is_leader
        assert elected == ["gm-0"]
        assert election.current_leader() == "gm-0"

    def test_second_candidate_is_not_leader(self, sim, service):
        LeaderElection(service, "gm-0").join()
        second = LeaderElection(service, "gm-1")
        second.join()
        sim.run(until=1.0)
        assert not second.is_leader
        assert second.current_leader() == "gm-0"

    def test_leader_failure_promotes_next_candidate(self, sim, service):
        first = LeaderElection(service, "gm-0", session_timeout=5.0)
        first.join()
        promoted = []
        second = LeaderElection(
            service, "gm-1", session_timeout=5.0, on_elected=lambda: promoted.append("gm-1")
        )
        second.join()
        sim.run(until=1.0)
        # gm-0 stops refreshing its session (crash); gm-1 keeps its own alive.
        def keep_alive():
            second.keep_alive()

        for t in range(2, 20, 2):
            sim.schedule_at(float(t), keep_alive)
        sim.run(until=20.0)
        assert second.is_leader
        assert promoted == ["gm-1"]

    def test_withdraw_releases_leadership(self, sim, service):
        first = LeaderElection(service, "gm-0")
        second_elected = []
        second = LeaderElection(service, "gm-1", on_elected=lambda: second_elected.append(True))
        first.join()
        second.join()
        sim.run(until=1.0)
        first.withdraw()
        sim.run(until=2.0)
        assert not first.is_leader
        assert second.is_leader
        assert second_elected == [True]

    def test_leader_changed_callback(self, sim, service):
        first = LeaderElection(service, "gm-0")
        first.join()
        leaders_seen = []
        second = LeaderElection(service, "gm-1", on_leader_changed=leaders_seen.append)
        second.join()
        sim.run(until=1.0)
        assert leaders_seen == ["gm-0"]

    def test_rejoining_after_withdraw(self, sim, service):
        election = LeaderElection(service, "gm-0")
        election.join()
        sim.run(until=1.0)
        election.withdraw()
        election.join()
        sim.run(until=2.0)
        assert election.is_leader

    def test_three_way_failover_order(self, sim, service):
        elections = []
        for index in range(3):
            election = LeaderElection(service, f"gm-{index}", session_timeout=4.0)
            election.join()
            elections.append(election)
        sim.run(until=1.0)
        assert elections[0].is_leader
        # Keep gm-2 alive only; gm-0 and gm-1 expire.
        for t in np.arange(2.0, 30.0, 2.0):
            sim.schedule_at(float(t), elections[2].keep_alive)
        sim.run(until=30.0)
        assert elections[2].is_leader
        assert elections[2].current_leader() == "gm-2"


import numpy as np  # noqa: E402  (used by the last test's schedule loop)
