"""Tests for the distributed ACO consolidation (the paper's future-work variant)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ACOConsolidation, DistributedACOConsolidation, FirstFitDecreasing
from repro.core.aco import ACOParameters
from repro.core.base import lower_bound_hosts
from repro.workloads import UniformDemandDistribution, consolidation_instance


def make_instance(n_vms=60, seed=0):
    rng = np.random.default_rng(seed)
    return consolidation_instance(
        n_vms,
        rng,
        demand_distribution=UniformDemandDistribution(0.1, 0.5, dimensions=("cpu", "memory")),
        host_capacity=(1.0, 1.0),
    )


class TestDistributedACO:
    def test_produces_feasible_complete_placement(self):
        demands, capacities = make_instance()
        result = DistributedACOConsolidation(
            n_partitions=3,
            parameters=ACOParameters(n_ants=4, n_cycles=10),
            rng=np.random.default_rng(1),
        ).solve(demands, capacities)
        assert result.feasible
        assert result.hosts_used >= lower_bound_hosts(demands, capacities)

    def test_respects_partition_count_in_extra(self):
        demands, capacities = make_instance(40)
        result = DistributedACOConsolidation(
            n_partitions=4,
            parameters=ACOParameters(n_ants=4, n_cycles=8),
            rng=np.random.default_rng(2),
        ).solve(demands, capacities)
        assert result.extra["partitions"] == 4
        assert len(result.extra["partition_hosts_used"]) == 4

    def test_single_partition_matches_centralized_quality(self):
        demands, capacities = make_instance(30, seed=3)
        params = ACOParameters(n_ants=6, n_cycles=15)
        central = ACOConsolidation(params, rng=np.random.default_rng(7)).solve(demands, capacities)
        distributed = DistributedACOConsolidation(
            n_partitions=1, parameters=params, rng=np.random.default_rng(7)
        ).solve(demands, capacities)
        assert distributed.feasible
        assert abs(distributed.hosts_used - central.hosts_used) <= 1

    def test_quality_close_to_ffd_despite_partitioning(self):
        demands, capacities = make_instance(80, seed=4)
        ffd = FirstFitDecreasing().solve(demands, capacities)
        distributed = DistributedACOConsolidation(
            n_partitions=4,
            parameters=ACOParameters(n_ants=6, n_cycles=15),
            rng=np.random.default_rng(5),
        ).solve(demands, capacities)
        assert distributed.feasible
        # Partitioning costs some quality but stays in FFD's neighbourhood.
        assert distributed.hosts_used <= ffd.hosts_used + 4

    def test_exchange_round_never_hurts(self):
        demands, capacities = make_instance(60, seed=6)
        params = ACOParameters(n_ants=4, n_cycles=8)
        without = DistributedACOConsolidation(
            n_partitions=3, parameters=params, exchange_round=False, rng=np.random.default_rng(9)
        ).solve(demands, capacities)
        with_exchange = DistributedACOConsolidation(
            n_partitions=3, parameters=params, exchange_round=True, rng=np.random.default_rng(9)
        ).solve(demands, capacities)
        assert with_exchange.feasible
        assert with_exchange.hosts_used <= without.hosts_used

    def test_more_partitions_than_hosts_is_clamped(self):
        demands = np.array([[0.4, 0.4], [0.3, 0.3]])
        capacities = np.tile([1.0, 1.0], (2, 1))
        result = DistributedACOConsolidation(
            n_partitions=8, parameters=ACOParameters(n_ants=2, n_cycles=4)
        ).solve(demands, capacities)
        assert result.feasible
        assert result.extra["partitions"] == 2

    def test_empty_instance(self):
        capacities = np.tile([1.0, 1.0], (3, 1))
        result = DistributedACOConsolidation(n_partitions=2).solve(np.empty((0, 2)), capacities)
        assert result.hosts_used == 0

    def test_invalid_partition_count_rejected(self):
        with pytest.raises(ValueError):
            DistributedACOConsolidation(n_partitions=0)

    def test_deterministic_given_rng(self):
        demands, capacities = make_instance(30, seed=8)
        params = ACOParameters(n_ants=4, n_cycles=8)
        a = DistributedACOConsolidation(
            n_partitions=2, parameters=params, rng=np.random.default_rng(11)
        ).solve(demands, capacities)
        b = DistributedACOConsolidation(
            n_partitions=2, parameters=params, rng=np.random.default_rng(11)
        ).solve(demands, capacities)
        assert np.array_equal(a.placement.assignment, b.placement.assignment)

    def test_result_independent_of_jobs_count(self):
        """Partition seeds are SeedSequence children spawned before the
        fan-out, so in-process and multiprocess runs are byte-identical
        (regression for the old ``default_rng(rng.integers(...))`` reseeding,
        which was fan-out-order dependent and collision-prone)."""
        demands, capacities = make_instance(45, seed=13)
        params = ACOParameters(n_ants=4, n_cycles=6)
        serial = DistributedACOConsolidation(
            n_partitions=3, parameters=params, rng=np.random.default_rng(21), jobs=1
        ).solve(demands, capacities)
        parallel = DistributedACOConsolidation(
            n_partitions=3, parameters=params, rng=np.random.default_rng(21), jobs=2
        ).solve(demands, capacities)
        assert np.array_equal(serial.placement.assignment, parallel.placement.assignment)
        assert serial.extra["partition_hosts_used"] == parallel.extra["partition_hosts_used"]

    def test_vectorized_partitions_feasible_and_deterministic(self):
        demands, capacities = make_instance(60, seed=14)
        params = ACOParameters(n_ants=4, n_cycles=6)
        a = DistributedACOConsolidation(
            n_partitions=3, parameters=params, rng=np.random.default_rng(5), vectorized=True
        ).solve(demands, capacities)
        b = DistributedACOConsolidation(
            n_partitions=3, parameters=params, rng=np.random.default_rng(5), vectorized=True
        ).solve(demands, capacities)
        assert a.feasible
        assert a.extra["vectorized"] is True
        assert np.array_equal(a.placement.assignment, b.placement.assignment)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            DistributedACOConsolidation(jobs=0)


class TestExchangeRound:
    """Property tests for the cross-partition host-release pass.

    With identical generators the pre-exchange plans of ``exchange_round=False``
    and ``exchange_round=True`` runs coincide (seeding is deterministic), so the
    pair exposes exactly what the exchange changed.
    """

    def paired_runs(self, n_vms=70, seed=17, rng_seed=23):
        demands, capacities = make_instance(n_vms, seed=seed)
        params = ACOParameters(n_ants=4, n_cycles=8)
        before = DistributedACOConsolidation(
            n_partitions=4, parameters=params, exchange_round=False,
            rng=np.random.default_rng(rng_seed),
        ).solve(demands, capacities)
        after = DistributedACOConsolidation(
            n_partitions=4, parameters=params, exchange_round=True,
            rng=np.random.default_rng(rng_seed),
        ).solve(demands, capacities)
        return demands, capacities, before, after

    def test_exchange_preserves_feasibility_and_completeness(self):
        demands, capacities, _, after = self.paired_runs()
        assert after.feasible
        assert after.placement.fully_assigned
        loads = np.zeros_like(capacities)
        np.add.at(loads, after.placement.assignment, demands)
        assert np.all(loads <= capacities + 1e-9)

    def test_exchange_migrations_matches_actual_assignment_changes(self):
        _, _, before, after = self.paired_runs()
        changed = int(
            np.count_nonzero(before.placement.assignment != after.placement.assignment)
        )
        assert after.extra["exchange_migrations"] == changed

    def test_exchange_is_all_or_nothing_per_host(self):
        """A host sheds either all of its VMs or none of them."""
        _, capacities, before, after = self.paired_runs()
        for host in range(capacities.shape[0]):
            original = set(np.flatnonzero(before.placement.assignment == host))
            if not original:
                continue
            remaining = original & set(np.flatnonzero(after.placement.assignment == host))
            assert remaining == original or not remaining

    def test_exchange_only_fills_already_used_hosts(self):
        """Moved VMs land on hosts the pre-exchange plan already used."""
        _, _, before, after = self.paired_runs()
        used_before = set(before.placement.used_host_indices().tolist())
        moved = np.flatnonzero(before.placement.assignment != after.placement.assignment)
        for vm in moved:
            assert int(after.placement.assignment[vm]) in used_before
