"""Regenerate the golden ScenarioResult fixtures.

Usage (from the repository root)::

    PYTHONPATH=src python -m tests.golden.regenerate            # all scenarios
    PYTHONPATH=src python -m tests.golden.regenerate flash-crowd ...

Fixtures are the :meth:`ScenarioResult.canonical_json` of each catalog
scenario under ``GOLDEN_SEED`` and a capped duration (so the whole catalog
regenerates in minutes on a laptop, while scripted timeline events are never
dropped).  Only regenerate after an *intentional* behaviour change -- the
golden test exists to catch unintentional ones.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable, List

from repro.scenarios import ScenarioSpec, get_scenario, run_scenario, scenario_names

#: Seed every golden fixture is produced under.
GOLDEN_SEED = 7

#: Cap on the simulated duration of a golden run (seconds).
GOLDEN_DURATION_CAP = 1500.0

#: Directory holding the committed fixtures.
GOLDEN_DIR = Path(__file__).resolve().parent


def golden_duration(spec: ScenarioSpec, cap: float = GOLDEN_DURATION_CAP) -> float:
    """A capped duration that never drops scripted timeline events."""
    candidate = min(spec.duration, cap)
    if spec.timeline_events_after(candidate):
        return spec.duration
    return candidate


def fixture_path(name: str) -> Path:
    """Path of the committed fixture for scenario ``name``."""
    return GOLDEN_DIR / f"{name}.json"


def golden_json(name: str) -> str:
    """The canonical golden content for scenario ``name`` (trailing newline)."""
    spec = get_scenario(name)
    result = run_scenario(spec, seed=GOLDEN_SEED, duration=golden_duration(spec))
    return result.canonical_json() + "\n"


def regenerate(names: Iterable[str]) -> List[Path]:
    """Rewrite the fixture of every scenario in ``names``; returns the paths."""
    written = []
    for name in names:
        path = fixture_path(name)
        path.write_text(golden_json(name))
        written.append(path)
    return written


def main(argv: List[str]) -> int:
    names = argv or scenario_names()
    unknown = sorted(set(names) - set(scenario_names()))
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for path in regenerate(names):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
