"""Golden ScenarioResult fixtures for the scenario catalog.

One ``<scenario-name>.json`` per catalog entry, produced by
:mod:`tests.golden.regenerate` and compared byte-for-byte by the golden test
in ``tests/test_scenarios.py``.  The fixtures pin the observable behaviour of
the whole stack (simulation kernel, hierarchy protocols, monitoring,
policies): any change that alters a single byte of any fixture is a behaviour
change, not a refactor.
"""
