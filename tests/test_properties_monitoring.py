"""Property tests: the array-backed telemetry plane == the scalar reference.

The vectorized hot path (:mod:`repro.monitoring.arrays`) claims **bit
identity** with the scalar ``VMMonitor`` / ``HostMonitor`` implementations --
not approximate equality.  Hypothesis drives random sample streams (including
empty windows, single samples, window overflow and wide magnitude spreads)
through both and compares raw float64 bit patterns via ``==``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector
from repro.monitoring.arrays import ArrayHostMonitor, TelemetryPlane, estimate_windows
from repro.monitoring.collector import HostMonitor, MonitoringSample, VMMonitor
from repro.monitoring.estimators import (
    EwmaEstimator,
    MaxEstimator,
    MeanEstimator,
    PercentileEstimator,
)
from repro.workloads.traces import ConstantTrace

from tests.conftest import make_node, make_vm

ESTIMATORS = [
    MeanEstimator(),
    MaxEstimator(),
    EwmaEstimator(alpha=0.3),
    EwmaEstimator(alpha=1.0),
    PercentileEstimator(percentile=95.0),
    PercentileEstimator(percentile=50.0),
]

#: Utilization-ish floats plus wide magnitude spread to stress summation order.
sample_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
) | st.floats(min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False)


def _stream_strategy():
    """A list of per-VM sample streams (each a list of d-dim samples)."""
    sample = st.lists(sample_values, min_size=3, max_size=3)
    stream = st.lists(sample, min_size=0, max_size=30)
    return st.lists(stream, min_size=1, max_size=6)


class TestEstimatorKernels:
    @settings(max_examples=60, deadline=None)
    @given(streams=_stream_strategy(), estimator_index=st.integers(0, len(ESTIMATORS) - 1))
    def test_estimate_windows_bitwise_equals_scalar(self, streams, estimator_index):
        estimator = ESTIMATORS[estimator_index]
        # Group equal-length windows (the kernel's input contract).
        lengths = {len(stream) for stream in streams if stream}
        for n in lengths:
            block = np.asarray(
                [stream for stream in streams if len(stream) == n], dtype=float
            )
            batched = estimate_windows(estimator, block)
            for row_index in range(block.shape[0]):
                scalar = estimator.estimate(block[row_index])
                assert (batched[row_index] == scalar).all()

    def test_estimate_windows_rejects_empty_block(self):
        with pytest.raises(ValueError):
            estimate_windows(MeanEstimator(), np.empty((2, 0, 3)))


class TestPlaneVsVMMonitor:
    @settings(max_examples=40, deadline=None)
    @given(
        streams=_stream_strategy(),
        window=st.integers(min_value=1, max_value=8),
        estimator_index=st.integers(0, len(ESTIMATORS) - 1),
    )
    def test_ring_buffer_estimates_bitwise_equal_scalar_reference(
        self, streams, window, estimator_index
    ):
        estimator = ESTIMATORS[estimator_index]
        plane = TelemetryPlane(window, estimator)
        for stream in streams:
            vm = make_vm(cpu=0.5, memory=0.5, network=0.5)
            reference = VMMonitor(vm, window=window, estimator=estimator)
            slot = plane.allocate(vm)
            for timestamp, values in enumerate(stream):
                array = np.asarray(values, dtype=float)
                # Feed both paths the same raw sample (bypassing the trace).
                plane.record(slot, array)
                vm.used = ResourceVector(array, DEFAULT_DIMENSIONS)
                reference._samples.append(
                    MonitoringSample(timestamp=float(timestamp), usage=vm.used)
                )
            expected = reference.estimate_demand()
            actual = plane.estimate_row(slot)
            assert (actual == expected.values).all()
            # Window bookkeeping matches the bounded deque.
            assert plane.count(slot) == len(reference.samples)
            if stream:
                chronological = np.vstack(
                    [sample.as_array() for sample in reference.samples]
                )
                assert (plane.window_view(slot) == chronological).all()

    def test_empty_window_falls_back_to_reservation(self):
        plane = TelemetryPlane(4, MeanEstimator())
        vm = make_vm(cpu=0.6)
        slot = plane.allocate(vm)
        assert (plane.estimate_row(slot) == vm.requested.values).all()

    def test_slot_reuse_resets_the_window(self):
        plane = TelemetryPlane(4, MeanEstimator())
        first = make_vm(cpu=0.5)
        slot = plane.allocate(first)
        plane.record(slot, np.array([0.9, 0.9, 0.9]))
        plane.release(slot)
        second = make_vm(cpu=0.25)
        reused = plane.allocate(second)
        assert reused == slot
        assert plane.count(reused) == 0
        assert (plane.estimate_row(reused) == second.requested.values).all()

    def test_plane_grows_past_initial_capacity(self):
        plane = TelemetryPlane(2, MaxEstimator())
        slots = [plane.allocate(make_vm()) for _ in range(200)]
        assert len(set(slots)) == 200
        for slot in slots:
            plane.record(slot, np.array([0.1, 0.1, 0.1]))
        assert plane.estimates(slots).shape == (200, 3)


class TestHostMonitorEquivalence:
    def _twin_hosts(self, estimator, window=5, vms=3, level=0.8):
        scalar_node, array_node = make_node("scalar-0"), make_node("array-0")
        plane = TelemetryPlane(window, estimator)
        scalar_monitor = HostMonitor(scalar_node, window=window, estimator=estimator)
        array_monitor = ArrayHostMonitor(array_node, plane)
        for index in range(vms):
            trace = ConstantTrace(level - 0.1 * index)
            scalar_node.place_vm(make_vm(cpu=0.3, trace=trace))
            array_node.place_vm(make_vm(cpu=0.3, trace=trace))
        return scalar_monitor, array_monitor

    @pytest.mark.parametrize("estimator_index", range(len(ESTIMATORS)))
    def test_reports_identical_for_identical_nodes(self, estimator_index):
        estimator = ESTIMATORS[estimator_index]
        scalar_monitor, array_monitor = self._twin_hosts(estimator)
        for tick in range(8):
            now = 10.0 * tick
            scalar_report = scalar_monitor.report(now)
            array_report = array_monitor.report(now)
            for key in ("capacity", "used", "reserved", "vm_count", "utilization"):
                assert scalar_report[key] == array_report[key], key
            assert list(scalar_report["vm_usage"].values()) == list(
                array_report["vm_usage"].values()
            )

    def test_untracks_departed_vms_like_scalar(self):
        estimator = MeanEstimator()
        scalar_monitor, array_monitor = self._twin_hosts(estimator, vms=2)
        scalar_monitor.refresh(0.0)
        array_monitor.refresh(0.0)
        for node, monitor in (
            (scalar_monitor.node, scalar_monitor),
            (array_monitor.node, array_monitor),
        ):
            victim = node.vms[0]
            node.remove_vm(victim)
            monitor.refresh(10.0)
        scalar_report = scalar_monitor.build_report(10.0)
        array_report = array_monitor.build_report(10.0)
        assert scalar_report["vm_count"] == array_report["vm_count"] == 1
        assert scalar_report["used"] == array_report["used"]

    def test_estimate_demand_of_untracked_vm_is_reservation(self):
        plane = TelemetryPlane(4, MeanEstimator())
        monitor = ArrayHostMonitor(make_node(), plane)
        vm = make_vm(cpu=0.4)
        assert monitor.estimate_demand(vm) == vm.requested
