"""Vectorized ACO consolidation: batched ant kernels, parallel colonies, warm start.

The scalar :class:`~repro.core.aco.ACOConsolidation` builds one solution per
ant with a pure-Python loop calling ``_choose_vm`` once per VM -- ``n_ants *
n_vms`` interpreter round-trips per cycle.  At warehouse scale (ROADMAP item 5)
that loop dominates every reconfiguration cycle.  This module keeps the
algorithm (same pheromone matrix, decision rule, heuristic, Max-Min bounds,
evaporation/reinforcement) but restructures the construction so the Python
overhead is paid once per *step*, not once per *ant and step*:

* **Batched ant kernels** -- all ants of a cycle advance in lockstep.  Each
  step computes the feasibility mask, heuristic values and decision-rule
  scores as one ``(n_ants, n_vms)`` numpy expression over the pheromone matrix
  and every ant's residual capacity, then samples one VM per ant (greedy and
  roulette choices in the same batch).  A cycle costs ``~n_vms`` vectorized
  steps instead of ``n_ants * n_vms`` scalar choices.
* **Parallel colonies** -- independent colonies (each a full cycle loop over
  its own pheromone matrix) run across cores by reusing the sweeps
  :class:`~repro.sweeps.executor.MultiprocessExecutor` with per-colony seeds
  derived via the :mod:`repro.simulation.randomness` ``SeedSequence``
  discipline.  Results are byte-identical for any ``jobs`` count: seeds are
  derived before the fan-out and the best colony is picked by a deterministic
  ``(hosts, -quality, colony)`` key.
* **Warm start** -- an optional initial pheromone matrix (usually distilled
  from the previous reconfiguration plan via :class:`PheromoneSummary`) seeds
  the search at the incumbent placement instead of a uniform trail, so
  per-cycle re-optimization converges in a fraction of the cycles.

The benchmark ``benchmarks/test_bench_aco_scale.py`` pins the speedup
(decisions/sec vs the scalar reference at 100/500/2000 VMs, hosts-used no
worse) in ``BENCH_ACO_SCALE.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.base import (
    ConsolidationResult,
    lower_bound_hosts,
    validate_instance,
)
from repro.core.placement import Placement, PlacementError
from repro.simulation.randomness import spawn_seed_sequences

#: Feasibility tolerance shared with the scalar algorithm.
FIT_TOLERANCE = 1e-9


@dataclass
class PheromoneSummary:
    """A size-independent distillation of one consolidation plan.

    Maps VM ids to the host ids the last accepted plan assigned them to.  The
    summary is what :class:`~repro.policies.reconfiguration.ReconfigurationPolicy`
    persists between reconfiguration rounds: VM and host *ids* survive churn
    (matrix indices do not), so the next round can rebuild an initial pheromone
    matrix for whatever subset of VMs and hosts is still present.
    """

    #: ``vm_id -> host_id`` pairs of the plan being summarized (vm ids may be
    #: any hashable -- the live cluster uses integers, offline instances use
    #: row indices).
    pairs: Dict[object, str] = field(default_factory=dict)
    #: Warm-start intensity in [0, 1]: 0 keeps ``tau_initial`` everywhere,
    #: 1 seeds remembered pairs at ``tau_max``.
    strength: float = 0.6

    def matrix(
        self,
        vm_ids: Sequence[str],
        host_ids: Sequence[str],
        parameters: ACOParameters,
    ) -> Optional[np.ndarray]:
        """Initial pheromone matrix for the instance ``vm_ids x host_ids``.

        Returns ``None`` when no remembered pair survives in the instance (a
        cold start performs better than an all-uniform "warm" matrix copy).
        """
        if not self.pairs or not vm_ids or not host_ids:
            return None
        host_index = {host_id: column for column, host_id in enumerate(host_ids)}
        boosted = parameters.tau_initial + float(np.clip(self.strength, 0.0, 1.0)) * (
            parameters.tau_max - parameters.tau_initial
        )
        matrix = np.full((len(vm_ids), len(host_ids)), parameters.tau_initial, dtype=float)
        hits = 0
        for row, vm_id in enumerate(vm_ids):
            host_id = self.pairs.get(vm_id)
            column = host_index.get(host_id) if host_id is not None else None
            if column is not None:
                matrix[row, column] = boosted
                hits += 1
        return matrix if hits else None


def _colony_payload(
    demands: np.ndarray,
    capacities: np.ndarray,
    parameters: ACOParameters,
    seed: np.random.SeedSequence,
    colony: int,
    initial_pheromone: Optional[np.ndarray],
) -> Dict[str, object]:
    """Picklable description of one colony run (plain arrays + parameter dict)."""
    return {
        "demands": demands,
        "capacities": capacities,
        "parameters": asdict(parameters),
        "seed_entropy": seed.entropy,
        "seed_spawn_key": tuple(seed.spawn_key),
        "colony": colony,
        "initial_pheromone": initial_pheromone,
    }


def solve_colony(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one colony; module-level so the multiprocessing pool can pickle it."""
    parameters = ACOParameters(**payload["parameters"])
    seed = np.random.SeedSequence(
        entropy=payload["seed_entropy"], spawn_key=tuple(payload["seed_spawn_key"])
    )
    colony = _VectorizedColony(
        demands=np.asarray(payload["demands"], dtype=float),
        capacities=np.asarray(payload["capacities"], dtype=float),
        parameters=parameters,
        rng=np.random.default_rng(seed),
        initial_pheromone=payload.get("initial_pheromone"),
    )
    outcome = colony.run()
    outcome["colony"] = payload["colony"]
    return outcome


class _VectorizedColony:
    """One colony's cycle loop over its own pheromone matrix, ants batched."""

    def __init__(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        parameters: ACOParameters,
        rng: np.random.Generator,
        initial_pheromone: Optional[np.ndarray] = None,
    ) -> None:
        self.demands = demands
        self.capacities = capacities
        self.params = parameters
        self.rng = rng
        n_vms, n_hosts = demands.shape[0], capacities.shape[0]
        if initial_pheromone is not None:
            pheromone = np.asarray(initial_pheromone, dtype=float)
            if pheromone.shape != (n_vms, n_hosts):
                raise PlacementError(
                    f"initial pheromone shape {pheromone.shape} does not match "
                    f"instance ({n_vms}, {n_hosts})"
                )
            self.pheromone = np.clip(pheromone, parameters.tau_min, parameters.tau_max)
        else:
            self.pheromone = np.full((n_vms, n_hosts), parameters.tau_initial, dtype=float)
        #: Per-host heuristic normalizer (sum of that host's capacity vector).
        self.normalizers = np.maximum(capacities.sum(axis=1), FIT_TOLERANCE)

    # ------------------------------------------------------------------- run
    def run(self) -> Dict[str, object]:
        params = self.params
        bound = lower_bound_hosts(self.demands, self.capacities)

        # Deterministic greedy anchor: one all-exploitation ant built from the
        # initial trail.  It bounds the colony's result from below (the search
        # can only improve on it) and, warm-started, reproduces the incumbent
        # plan's packing before any stochastic cycle runs.
        best_assignment = self._construct(n_ants=1, greedy=True)[0]
        best_hosts, best_quality = self._evaluate(best_assignment)

        history: List[int] = []
        cycles_run = 0
        cycles_without_improvement = 0
        stagnated = params.stop_at_lower_bound and best_hosts <= bound
        for cycle in range(params.n_cycles):
            if stagnated:
                break
            cycles_run = cycle + 1
            assignments = self._construct(params.n_ants, greedy=False)
            improved = False
            for assignment in assignments:
                hosts_used, quality = self._evaluate(assignment)
                if hosts_used < best_hosts or (
                    hosts_used == best_hosts and quality > best_quality
                ):
                    best_assignment = assignment
                    best_hosts = hosts_used
                    best_quality = quality
                    improved = True
            cycles_without_improvement = 0 if improved else cycles_without_improvement + 1
            history.append(int(best_hosts))
            self._update_pheromone(best_assignment, best_quality)
            if params.stop_at_lower_bound and best_hosts <= bound:
                break
            if (
                params.stagnation_cycles is not None
                and cycles_without_improvement >= params.stagnation_cycles
            ):
                break

        return {
            "assignment": best_assignment,
            "hosts_used": int(best_hosts),
            "quality": float(best_quality),
            "cycles": cycles_run,
            "history": history,
            "lower_bound": bound,
            "cycles_without_improvement": cycles_without_improvement,
            "pheromone_mean": float(self.pheromone.mean()),
            "pheromone_min": float(self.pheromone.min()),
            "pheromone_max": float(self.pheromone.max()),
        }

    # ------------------------------------------------------------ construction
    def _construct(self, n_ants: int, greedy: bool) -> np.ndarray:
        """Build ``n_ants`` complete assignments in lockstep; ``(n_ants, n_vms)``.

        Every ant places exactly one VM per iteration, so after ``n_vms``
        iterations every ant's solution is complete -- the Python overhead of
        a step is paid once for the whole batch instead of once per ant.  The
        feasibility masks, heuristic values and decision-rule scores for all
        ants are single 2-D numpy expressions, and both the greedy and the
        roulette choices are drawn in one batch.  Ants whose current host fits
        no remaining VM advance to their next host inside the same iteration.

        Two identities keep the per-step expressions small:

        * feasibility is checked per dimension with 2-D comparisons (no
          ``(ants, vms, dims)`` temporary, no axis-2 reduction), and
        * on every *feasible* pair the L1 fill gap collapses to
          ``sum(residual) - sum(demand)`` (no per-dimension ``abs``), and
          infeasible pairs are masked out of the scores anyway.
        """
        params = self.params
        demands, capacities = self.demands, self.capacities
        n_vms, n_hosts = demands.shape[0], capacities.shape[0]
        n_dims = demands.shape[1]
        ants = np.arange(n_ants)
        assignment = np.full((n_ants, n_vms), -1, dtype=np.int64)
        unassigned = np.ones((n_ants, n_vms), dtype=bool)
        host = np.zeros(n_ants, dtype=np.int64)
        residual = np.repeat(capacities[[0]], n_ants, axis=0)
        residual_sums = residual.sum(axis=1)
        # Row-contiguous per-host pheromone rows for the gather below.
        tau_by_host = np.ascontiguousarray(self.pheromone.T)
        demand_sums = demands.sum(axis=1)
        alpha, beta, q0 = params.alpha, params.beta, params.q0

        for _ in range(n_vms):
            # (n_ants, n_vms): VM is unplaced and fits the ant's current host.
            fits = unassigned.copy()
            for dim in range(n_dims):
                fits &= (
                    demands[:, dim][np.newaxis, :]
                    <= residual[:, dim][:, np.newaxis] + FIT_TOLERANCE
                )
            feasible_any = fits.any(axis=1)
            # Ants stuck on a full host open their next host (repeat until
            # every ant has a candidate; guaranteed to terminate because
            # every VM fits an *empty* host by instance validation).
            while not feasible_any.all():
                stuck = ~feasible_any
                host[stuck] += 1
                if np.any(host >= n_hosts):
                    raise PlacementError(
                        "instance has too few hosts for the remaining VMs (ACO construction)"
                    )
                residual[stuck] = capacities[host[stuck]]
                residual_sums[stuck] = residual[stuck].sum(axis=1)
                refit = unassigned[stuck].copy()
                for dim in range(n_dims):
                    refit &= (
                        demands[:, dim][np.newaxis, :]
                        <= residual[stuck][:, dim][:, np.newaxis] + FIT_TOLERANCE
                    )
                fits[stuck] = refit
                feasible_any = fits.any(axis=1)

            # Decision rule over the batch: tau^alpha * eta^beta, masked to
            # the feasible candidates of each ant.
            tau = tau_by_host[host]
            gaps = residual_sums[:, np.newaxis] - demand_sums[np.newaxis, :]
            np.maximum(gaps, 0.0, out=gaps)
            gaps /= self.normalizers[host][:, np.newaxis]
            gaps += 1.0
            eta = np.reciprocal(gaps, out=gaps)
            if beta == 2.0:
                eta *= eta
            elif beta != 1.0:
                np.power(eta, beta, out=eta)
            scores = tau * eta if alpha == 1.0 else np.power(tau, alpha) * eta
            scores *= fits
            totals = scores.sum(axis=1)
            # Numerical-underflow guard: fall back to uniform over feasible.
            if not totals.all():
                degenerate = totals <= 0.0
                scores[degenerate] = fits[degenerate]
                totals = scores.sum(axis=1)

            if greedy:
                chosen = np.argmax(scores, axis=1)
            else:
                exploit = self.rng.random(n_ants) < q0
                best_pick = np.argmax(scores, axis=1)
                cdf = np.cumsum(scores, axis=1)
                draws = self.rng.random(n_ants) * totals
                roulette = np.minimum(
                    (cdf <= draws[:, np.newaxis]).sum(axis=1), n_vms - 1
                )
                chosen = np.where(exploit, best_pick, roulette)

            assignment[ants, chosen] = host
            unassigned[ants, chosen] = False
            residual -= demands[chosen]
            residual_sums -= demand_sums[chosen]
        return assignment

    # -------------------------------------------------------------- evaluation
    def _evaluate(self, assignment: np.ndarray) -> tuple:
        loads = np.zeros_like(self.capacities)
        np.add.at(loads, assignment, self.demands)
        used_mask = loads.sum(axis=1) > 0
        hosts_used = int(np.count_nonzero(used_mask))
        if hosts_used == 0:
            return 0, 0.0
        utilization = loads[used_mask] / self.capacities[used_mask]
        quality = float(np.mean(np.mean(utilization, axis=1) ** self.params.quality_exponent))
        return hosts_used, quality

    def _update_pheromone(self, best_assignment: np.ndarray, best_quality: float) -> None:
        """Max-Min update, identical to the (fixed) scalar reference."""
        params = self.params
        self.pheromone *= 1.0 - params.rho
        delta = params.rho * (1.0 + max(best_quality, 0.0))
        self.pheromone[np.arange(best_assignment.shape[0]), best_assignment] += delta
        np.clip(self.pheromone, params.tau_min, params.tau_max, out=self.pheromone)


class VectorizedACOConsolidation(ACOConsolidation):
    """Warehouse-scale ACO: batched ant kernels + parallel colonies + warm start.

    Subclasses the scalar algorithm for its parameter handling and public
    interface; the construction/evaluation machinery is replaced wholesale.

    Parameters
    ----------
    parameters:
        Shared :class:`~repro.core.aco.ACOParameters`.
    rng:
        Source of the single entropy draw that seeds all colonies (via
        ``SeedSequence.spawn``), keeping the whole run deterministic in the
        generator state and independent of ``jobs``.
    n_colonies:
        Independent colonies to run; the best result wins (ties broken by
        quality, then colony index).
    jobs:
        Worker processes for the colony fan-out (1 = in-process).  Reuses the
        sweeps executor; results are identical for any value.
    """

    name = "aco-vectorized"
    #: Feature flag the reconfiguration policy checks before building warm
    #: starts (the scalar reference deliberately does not support them).
    supports_warm_start = True

    def __init__(
        self,
        parameters: Optional[ACOParameters] = None,
        rng: Optional[np.random.Generator] = None,
        n_colonies: int = 1,
        jobs: int = 1,
    ) -> None:
        super().__init__(parameters, rng)
        if n_colonies <= 0:
            raise ValueError("n_colonies must be positive")
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.n_colonies = int(n_colonies)
        self.jobs = int(jobs)

    # ------------------------------------------------------------------ public
    def solve(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        initial_pheromone: Optional[np.ndarray] = None,
    ) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)
        return self._timed_solve(
            lambda: self._run_colonies(demands, capacities, initial_pheromone),
            demands,
            capacities,
        )

    def consolidate(
        self, placement: Placement, initial_pheromone: Optional[np.ndarray] = None
    ) -> ConsolidationResult:
        return self.solve(placement.demands, placement.capacities, initial_pheromone)

    # ----------------------------------------------------------------- private
    def _run_colonies(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        initial_pheromone: Optional[np.ndarray],
    ) -> ConsolidationResult:
        if demands.shape[0] == 0:
            return ConsolidationResult(
                placement=Placement(demands, capacities), algorithm=self.name
            )
        # One entropy draw, then SeedSequence children per colony: the result
        # only depends on the generator state, never on the fan-out shape.
        entropy = int(self.rng.integers(0, 2**63 - 1))
        seeds = spawn_seed_sequences(entropy, self.n_colonies)
        payloads = [
            _colony_payload(demands, capacities, self.parameters, seed, colony, initial_pheromone)
            for colony, seed in enumerate(seeds)
        ]
        if self.jobs > 1 and self.n_colonies > 1:
            from repro.sweeps.executor import MultiprocessExecutor

            outcomes = MultiprocessExecutor(self.jobs, fn=solve_colony).map(payloads)
        else:
            outcomes = [solve_colony(payload) for payload in payloads]

        best = min(outcomes, key=lambda o: (o["hosts_used"], -o["quality"], o["colony"]))
        placement = Placement(demands, capacities, best["assignment"])
        return ConsolidationResult(
            placement=placement,
            algorithm=self.name,
            iterations=int(sum(outcome["cycles"] for outcome in outcomes)),
            proved_optimal=bool(best["hosts_used"] <= best["lower_bound"]),
            history=list(best["history"]),
            extra={
                "lower_bound": best["lower_bound"],
                "best_quality": best["quality"],
                "best_colony": best["colony"],
                "n_colonies": self.n_colonies,
                "jobs": self.jobs,
                "warm_started": initial_pheromone is not None,
                "colony_hosts_used": [outcome["hosts_used"] for outcome in outcomes],
                "pheromone_mean": best["pheromone_mean"],
                "pheromone_min": best["pheromone_min"],
                "pheromone_max": best["pheromone_max"],
                "cycles_without_improvement": best["cycles_without_improvement"],
            },
        )
