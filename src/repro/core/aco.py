"""Ant Colony Optimization based VM consolidation.

This is the paper's core algorithmic contribution (Section III.A, detailed in
the authors' GRID'11 paper "Energy-aware ant colony based workload placement
in clouds").  The reproduction follows the description in the reproduced text:

* Multiple artificial **ants** compute solutions probabilistically and
  simultaneously within multiple **cycles**.
* Ants communicate indirectly by depositing **pheromone on each VM-host pair**
  in a pheromone matrix.
* Each ant constructs a solution by packing VMs host-by-host using a
  **probabilistic decision rule** combining the pheromone concentration of the
  VM-host pair and a **heuristic** favouring VMs that lead to better host
  utilization (i.e. VMs that fill the remaining capacity well).
* At the end of each cycle the solution requiring the **least number of
  hosts** becomes the new global best; the pheromone matrix is then
  **evaporated** and the VM-host pairs of the global best are **reinforced**.
* Max-Min Ant System style pheromone bounds keep the search from collapsing
  prematurely (stagnation), which is what lets the stochastic search "explore
  a large number of potential solutions".

The hot path (feasibility mask, heuristic values, probability normalization)
is fully vectorized over the candidate VM set, per the HPC coding guide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.base import (
    ConsolidationAlgorithm,
    ConsolidationResult,
    lower_bound_hosts,
    validate_instance,
)
from repro.core.placement import Placement, PlacementError


@dataclass(frozen=True)
class ACOParameters:
    """Tunable parameters of the ACO consolidation algorithm.

    Defaults follow the spirit of the GRID'11 evaluation: a modest colony run
    for a few dozen cycles is enough to reach within ~1 % of the optimum on
    the instance sizes considered there.
    """

    #: Number of ants constructing solutions per cycle.
    n_ants: int = 8
    #: Number of cycles (pheromone update rounds).
    n_cycles: int = 30
    #: Exponent of the pheromone term in the decision rule.
    alpha: float = 1.0
    #: Exponent of the heuristic term in the decision rule.
    beta: float = 2.0
    #: Pheromone evaporation rate in (0, 1].
    rho: float = 0.3
    #: Probability of greedy (exploitation) choice instead of roulette sampling.
    q0: float = 0.3
    #: Initial pheromone level on every VM-host pair.
    tau_initial: float = 1.0
    #: Max-Min bounds on pheromone values (tau_min, tau_max).
    tau_min: float = 0.05
    tau_max: float = 5.0
    #: Exponent of per-host utilization in the solution quality function.
    quality_exponent: float = 2.0
    #: Stop early if the global best matches the lower bound (provably optimal).
    stop_at_lower_bound: bool = True
    #: Stop early after this many cycles without improvement (None = never).
    stagnation_cycles: Optional[int] = 15

    def __post_init__(self) -> None:
        if self.n_ants <= 0 or self.n_cycles <= 0:
            raise ValueError("n_ants and n_cycles must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if not (0.0 < self.rho <= 1.0):
            raise ValueError("rho must be in (0, 1]")
        if not (0.0 <= self.q0 <= 1.0):
            raise ValueError("q0 must be in [0, 1]")
        if self.tau_initial <= 0 or self.tau_min <= 0 or self.tau_max < self.tau_min:
            raise ValueError("invalid pheromone bounds")
        if self.quality_exponent <= 0:
            raise ValueError("quality_exponent must be positive")
        if self.stagnation_cycles is not None and self.stagnation_cycles <= 0:
            raise ValueError("stagnation_cycles must be positive or None")


class ACOConsolidation(ConsolidationAlgorithm):
    """ACO-based VM consolidation (vector bin packing)."""

    name = "aco"

    def __init__(
        self,
        parameters: Optional[ACOParameters] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.parameters = parameters or ACOParameters()
        self.rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------ public
    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)
        return self._timed_solve(lambda: self._run(demands, capacities), demands, capacities)

    # ----------------------------------------------------------------- private
    def _run(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        params = self.parameters
        n_vms = demands.shape[0]
        n_hosts = capacities.shape[0]
        if n_vms == 0:
            return ConsolidationResult(
                placement=Placement(demands, capacities), algorithm=self.name
            )

        bound = lower_bound_hosts(demands, capacities)
        # Pheromone on VM-host pairs (the matrix the paper describes).
        pheromone = np.full((n_vms, n_hosts), params.tau_initial, dtype=float)

        best_assignment: Optional[np.ndarray] = None
        best_hosts = np.inf
        best_quality = -np.inf
        history: list[int] = []
        cycles_run = 0
        cycles_without_improvement = 0

        for cycle in range(params.n_cycles):
            cycles_run = cycle + 1
            cycle_best_assignment = None
            cycle_best_hosts = np.inf
            cycle_best_quality = -np.inf

            for _ in range(params.n_ants):
                assignment = self._construct_solution(demands, capacities, pheromone)
                hosts_used, quality = self._evaluate(assignment, demands, capacities)
                if hosts_used < cycle_best_hosts or (
                    hosts_used == cycle_best_hosts and quality > cycle_best_quality
                ):
                    cycle_best_assignment = assignment
                    cycle_best_hosts = hosts_used
                    cycle_best_quality = quality

            improved = cycle_best_hosts < best_hosts or (
                cycle_best_hosts == best_hosts and cycle_best_quality > best_quality
            )
            if improved:
                best_assignment = cycle_best_assignment
                best_hosts = cycle_best_hosts
                best_quality = cycle_best_quality
                cycles_without_improvement = 0
            else:
                cycles_without_improvement += 1

            history.append(int(best_hosts))
            self._update_pheromone(pheromone, best_assignment, best_quality, demands, capacities)

            if params.stop_at_lower_bound and best_hosts <= bound:
                break
            if (
                params.stagnation_cycles is not None
                and cycles_without_improvement >= params.stagnation_cycles
            ):
                break

        if best_assignment is None:  # pragma: no cover - defensive, ants always build something
            raise PlacementError("ACO failed to construct any feasible solution")

        placement = Placement(demands, capacities, best_assignment)
        return ConsolidationResult(
            placement=placement,
            algorithm=self.name,
            iterations=cycles_run,
            proved_optimal=bool(best_hosts <= bound),
            history=history,
            extra={
                "lower_bound": bound,
                "best_quality": float(best_quality),
                "pheromone_mean": float(pheromone.mean()),
                "pheromone_min": float(pheromone.min()),
                "pheromone_max": float(pheromone.max()),
                "cycles_without_improvement": cycles_without_improvement,
            },
        )

    # ------------------------------------------------------- solution building
    def _construct_solution(
        self, demands: np.ndarray, capacities: np.ndarray, pheromone: np.ndarray
    ) -> np.ndarray:
        """One ant builds a complete assignment, filling hosts one at a time."""
        n_vms = demands.shape[0]
        n_hosts = capacities.shape[0]
        assignment = np.full(n_vms, -1, dtype=np.int64)
        unassigned = np.ones(n_vms, dtype=bool)

        host = 0
        residual = capacities[host].copy()
        while unassigned.any():
            candidate_indices = np.flatnonzero(unassigned)
            fits = np.all(demands[candidate_indices] <= residual + 1e-9, axis=1)
            feasible = candidate_indices[fits]
            if feasible.size == 0:
                # Current host cannot take any remaining VM: move to the next host.
                host += 1
                if host >= n_hosts:
                    raise PlacementError(
                        "instance has too few hosts for the remaining VMs (ACO construction)"
                    )
                residual = capacities[host].copy()
                continue

            chosen = self._choose_vm(feasible, host, residual, demands, pheromone, capacities)
            assignment[chosen] = host
            unassigned[chosen] = False
            residual = residual - demands[chosen]
        return assignment

    def _choose_vm(
        self,
        feasible: np.ndarray,
        host: int,
        residual: np.ndarray,
        demands: np.ndarray,
        pheromone: np.ndarray,
        capacities: np.ndarray,
    ) -> int:
        """Apply the probabilistic decision rule over the feasible VM set."""
        params = self.parameters
        tau = pheromone[feasible, host]
        eta = self._heuristic(feasible, residual, demands, capacities[host])
        scores = np.power(tau, params.alpha) * np.power(eta, params.beta)
        # Guard against numerical underflow making every score zero.
        if not np.any(scores > 0):
            scores = np.ones_like(scores)

        if self.rng.random() < params.q0:
            # Exploitation: pick the best-scoring VM deterministically.
            return int(feasible[int(np.argmax(scores))])
        probabilities = scores / scores.sum()
        return int(self.rng.choice(feasible, p=probabilities))

    @staticmethod
    def _heuristic(
        feasible: np.ndarray, residual: np.ndarray, demands: np.ndarray, capacity: np.ndarray
    ) -> np.ndarray:
        """Heuristic information: how well each candidate VM fills the remaining capacity.

        The value is the normalized L1 gap between the host's residual capacity
        and the VM demand, inverted so that a near-perfect fill scores close to
        1 and a tiny VM in an empty host scores low.  This is the "heuristic
        information which guides the ants towards choosing VMs leading to
        better overall host utilization" from the paper.
        """
        gaps = np.sum(np.abs(residual[np.newaxis, :] - demands[feasible]), axis=1)
        normalizer = float(np.sum(capacity))
        if normalizer <= 0:
            return np.ones(feasible.shape[0])
        return 1.0 / (1.0 + gaps / normalizer)

    # ------------------------------------------------------------- evaluation
    def _evaluate(
        self, assignment: np.ndarray, demands: np.ndarray, capacities: np.ndarray
    ) -> tuple[int, float]:
        """Return ``(hosts_used, quality)`` for a complete assignment.

        Quality is the Falkenauer-style packing measure: the mean of per-used-
        host utilizations raised to ``quality_exponent``.  It rewards tightly
        filled hosts and is used for tie-breaking among solutions with equal
        host counts and for sizing the pheromone reinforcement.
        """
        loads = np.zeros_like(capacities)
        np.add.at(loads, assignment, demands)
        used_mask = loads.sum(axis=1) > 0
        hosts_used = int(np.count_nonzero(used_mask))
        if hosts_used == 0:
            return 0, 0.0
        utilization = loads[used_mask] / capacities[used_mask]
        quality = float(np.mean(np.mean(utilization, axis=1) ** self.parameters.quality_exponent))
        return hosts_used, quality

    def _update_pheromone(
        self,
        pheromone: np.ndarray,
        best_assignment: Optional[np.ndarray],
        best_quality: float,
        demands: np.ndarray,
        capacities: np.ndarray,
    ) -> None:
        """Evaporate everywhere, then reinforce the global-best VM-host pairs."""
        params = self.parameters
        pheromone *= 1.0 - params.rho
        if best_assignment is not None:
            hosts_used = int(np.unique(best_assignment[best_assignment >= 0]).size)
            if hosts_used > 0:
                # Deposit proportional to solution quality so better (fuller)
                # solutions leave stronger trails.  The deposit is independent
                # of instance size: quality is already a per-host mean in
                # [0, 1], so the evaporation/deposit equilibrium
                # ``delta / rho = 1 + quality`` stays strictly below
                # ``tau_max`` instead of clipping every reinforced pair to the
                # ceiling on large instances (which degenerated the Max-Min
                # search into a frozen trail).
                delta = params.rho * (1.0 + max(best_quality, 0.0))
                vm_indices = np.arange(best_assignment.shape[0])
                pheromone[vm_indices, best_assignment] += delta
        np.clip(pheromone, params.tau_min, params.tau_max, out=pheromone)
