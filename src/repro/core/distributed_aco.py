"""Distributed ACO consolidation (the paper's stated future work).

Section V of the paper: "In the future we plan to integrate the proposed
algorithm in Snooze.  Moreover, a distributed version of the algorithm will be
developed".  This module provides that distributed variant in the form the
Snooze architecture naturally suggests: the cluster is partitioned into groups
(one per Group Manager), each group runs the *centralized* ACO algorithm on
its own VMs and hosts independently (in a real deployment: in parallel on the
GMs), and an optional lightweight **exchange round** then lets adjacent groups
shed their least-utilized host's VMs into another group's spare capacity.

Compared to the centralized algorithm the distributed variant trades packing
quality for scalability:

* each sub-problem is a factor ``n_partitions`` smaller, so construction cost
  per cycle drops roughly quadratically, and
* no global pheromone matrix is required, which is what makes the approach
  feasible across Group Managers that only know their own Local Controllers.

The ACO scale benchmark ``benchmarks/test_bench_aco_scale.py`` quantifies the
trade-off (decisions/sec and hosts used vs the centralized scalar reference)
and records it in ``benchmarks/results/BENCH_ACO_SCALE.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.aco_vectorized import VectorizedACOConsolidation
from repro.core.base import ConsolidationAlgorithm, ConsolidationResult, validate_instance
from repro.core.placement import Placement, PlacementError
from repro.simulation.randomness import spawn_seed_sequences


@dataclass(frozen=True)
class PartitionResult:
    """Bookkeeping for one partition's local consolidation run."""

    partition_index: int
    vm_indices: np.ndarray
    host_indices: np.ndarray
    hosts_used: int
    runtime_seconds: float


def solve_partition(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one partition's local colony; module-level so pools can pickle it.

    The per-partition generator is rebuilt from the ``SeedSequence`` child
    identity carried in the payload (entropy + spawn key), so the outcome is
    identical no matter which worker process -- or how many -- runs it.
    """
    parameters = ACOParameters(**payload["parameters"])
    seed = np.random.SeedSequence(
        entropy=payload["seed_entropy"], spawn_key=tuple(payload["seed_spawn_key"])
    )
    algorithm_class = VectorizedACOConsolidation if payload["vectorized"] else ACOConsolidation
    result = algorithm_class(parameters, rng=np.random.default_rng(seed)).solve(
        np.asarray(payload["demands"], dtype=float),
        np.asarray(payload["capacities"], dtype=float),
    )
    return {
        "assignment": result.placement.assignment,
        "hosts_used": result.hosts_used,
        "runtime_seconds": result.runtime_seconds,
        "iterations": result.iterations,
    }


class DistributedACOConsolidation(ConsolidationAlgorithm):
    """Partitioned ACO: one independent colony per Group Manager.

    Parameters
    ----------
    n_partitions:
        Number of groups to split the instance into (the number of Group
        Managers in the Snooze deployment being modelled).
    parameters:
        ACO parameters used by every partition's local colony.
    exchange_round:
        When True (default), after the local runs each partition offers the
        VMs of its single least-utilized used host to the other partitions'
        residual capacity (first-fit over already-used hosts); a host is only
        emptied if *all* of its VMs can be absorbed elsewhere, mirroring the
        all-or-nothing rule of underload relocation.
    rng:
        Random generator used both for partitioning and for the single entropy
        draw that seeds the per-partition colonies.  Partition generators are
        derived from ``SeedSequence.spawn`` children of that draw (the
        :mod:`repro.simulation.randomness` discipline), so the run is
        deterministic given the generator state, the partition streams are
        statistically independent, and the result does not depend on ``jobs``.
    jobs:
        Worker processes for the partition fan-out (1 = in-process, the
        default).  Reuses the sweeps executor; in a real deployment each
        partition runs on its own Group Manager, which this models.
    vectorized:
        When True each partition runs the batched
        :class:`~repro.core.aco_vectorized.VectorizedACOConsolidation` kernels
        instead of the scalar reference colonies.
    """

    name = "distributed-aco"

    def __init__(
        self,
        n_partitions: int = 2,
        parameters: Optional[ACOParameters] = None,
        exchange_round: bool = True,
        rng: Optional[np.random.Generator] = None,
        jobs: int = 1,
        vectorized: bool = False,
    ) -> None:
        if n_partitions <= 0:
            raise ValueError("n_partitions must be positive")
        if jobs <= 0:
            raise ValueError("jobs must be positive")
        self.n_partitions = int(n_partitions)
        self.parameters = parameters or ACOParameters()
        self.exchange_round = bool(exchange_round)
        self.rng = rng or np.random.default_rng(0)
        self.jobs = int(jobs)
        self.vectorized = bool(vectorized)

    # ------------------------------------------------------------------ solve
    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)
        return self._timed_solve(lambda: self._run(demands, capacities), demands, capacities)

    def _run(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        n_vms = demands.shape[0]
        n_hosts = capacities.shape[0]
        partitions = min(self.n_partitions, n_hosts)
        if n_vms == 0:
            return ConsolidationResult(placement=Placement(demands, capacities), algorithm=self.name)

        vm_parts, host_parts = self._partition(n_vms, n_hosts, partitions, demands, capacities)
        assignment = np.full(n_vms, -1, dtype=np.int64)
        partition_results: List[PartitionResult] = []
        total_cycles = 0

        # One entropy draw, then one SeedSequence child per partition: the
        # per-partition generators are derived before any fan-out, so the
        # result is deterministic in the incoming generator state, free of
        # the seed-collision hazard of ``default_rng(rng.integers(...))``,
        # and independent of how many worker processes run the partitions.
        entropy = int(self.rng.integers(0, 2**63 - 1))
        seeds = spawn_seed_sequences(entropy, partitions)
        payloads = []
        occupied = []
        for index, (vm_indices, host_indices) in enumerate(zip(vm_parts, host_parts)):
            if vm_indices.size == 0:
                continue
            occupied.append(index)
            payloads.append(
                {
                    "demands": demands[vm_indices],
                    "capacities": capacities[host_indices],
                    "parameters": asdict(self.parameters),
                    "seed_entropy": seeds[index].entropy,
                    "seed_spawn_key": tuple(seeds[index].spawn_key),
                    "vectorized": self.vectorized,
                }
            )
        if self.jobs > 1 and len(payloads) > 1:
            from repro.sweeps.executor import MultiprocessExecutor

            outcomes = MultiprocessExecutor(self.jobs, fn=solve_partition).map(payloads)
        else:
            outcomes = [solve_partition(payload) for payload in payloads]
        outcome_by_index = dict(zip(occupied, outcomes))

        for index, (vm_indices, host_indices) in enumerate(zip(vm_parts, host_parts)):
            outcome = outcome_by_index.get(index)
            if outcome is None:
                partition_results.append(
                    PartitionResult(index, vm_indices, host_indices, 0, 0.0)
                )
                continue
            total_cycles += outcome["iterations"]
            # Translate local host indices back to the global numbering.
            assignment[vm_indices] = host_indices[outcome["assignment"]]
            partition_results.append(
                PartitionResult(
                    index,
                    vm_indices,
                    host_indices,
                    outcome["hosts_used"],
                    outcome["runtime_seconds"],
                )
            )

        placement = Placement(demands, capacities, assignment)
        exchanged = 0
        if self.exchange_round and partitions > 1:
            exchanged = self._exchange_round(placement)

        return ConsolidationResult(
            placement=placement,
            algorithm=self.name,
            iterations=total_cycles,
            extra={
                "partitions": partitions,
                "partition_hosts_used": [result.hosts_used for result in partition_results],
                "partition_runtimes": [result.runtime_seconds for result in partition_results],
                "exchange_migrations": exchanged,
                "jobs": self.jobs,
                "vectorized": self.vectorized,
            },
        )

    # -------------------------------------------------------------- partition
    def _partition(
        self,
        n_vms: int,
        n_hosts: int,
        partitions: int,
        demands: np.ndarray,
        capacities: np.ndarray,
    ) -> tuple[List[np.ndarray], List[np.ndarray]]:
        """Split VMs and hosts into groups of balanced aggregate size.

        Hosts are dealt round-robin (groups get equal shares of the pool);
        VMs are sorted by decreasing size and dealt to the group with the
        smallest accumulated demand, so no group is asked to pack more than
        its proportional share (which would make its sub-problem infeasible).
        """
        host_parts = [np.arange(part, n_hosts, partitions, dtype=np.int64) for part in range(partitions)]
        vm_order = np.argsort(-demands.sum(axis=1), kind="stable")
        vm_bins: List[list] = [[] for _ in range(partitions)]
        loads = np.zeros(partitions)
        capacity_share = np.array([capacities[part_hosts].sum() for part_hosts in host_parts])
        capacity_share = np.where(capacity_share > 0, capacity_share, 1e-9)
        for vm in vm_order:
            # Relative headroom: pick the partition with the lowest load/capacity ratio.
            target = int(np.argmin(loads / capacity_share))
            vm_bins[target].append(int(vm))
            loads[target] += demands[vm].sum()
        vm_parts = [np.asarray(sorted(bucket), dtype=np.int64) for bucket in vm_bins]
        return vm_parts, host_parts

    # --------------------------------------------------------------- exchange
    def _exchange_round(self, placement: Placement) -> int:
        """Cross-partition host-release pass; returns the number of VMs moved."""
        moved = 0
        residual = placement.residual_capacities()
        used_hosts = placement.used_host_indices()
        if used_hosts.size <= 1:
            return 0
        # Least-utilized used host first (the cheapest host to empty).
        loads = placement.host_loads()
        utilization = (loads[used_hosts] / placement.capacities[used_hosts]).mean(axis=1)
        for host in used_hosts[np.argsort(utilization)]:
            vms = placement.vms_on_host(int(host))
            if vms.size == 0:
                continue
            # Tentatively place every VM of this host somewhere else (first-fit
            # over other used hosts); all-or-nothing.
            staged: List[tuple] = []
            staged_residual = residual.copy()
            feasible = True
            for vm in vms:
                demand = placement.demands[vm]
                candidates = [
                    int(other)
                    for other in placement.used_host_indices()
                    if other != host and np.all(staged_residual[other] >= demand - 1e-9)
                ]
                if not candidates:
                    feasible = False
                    break
                destination = candidates[0]
                staged.append((int(vm), destination))
                staged_residual[destination] -= demand
            if not feasible:
                continue
            for vm, destination in staged:
                placement.assignment[vm] = destination
                moved += 1
            residual = placement.residual_capacities()
        if not placement.is_feasible():  # pragma: no cover - defensive
            raise PlacementError("exchange round produced an infeasible placement")
        return moved
