"""Consolidation algorithm interface, result record and shared bounds.

Every algorithm consumes an instance ``(demands, capacities)`` and produces a
:class:`ConsolidationResult` wrapping a :class:`~repro.core.placement.Placement`
plus bookkeeping needed by the experiments: wall-clock runtime (charged as
computation energy in E2), iterations/cycles, and whether the run proved
optimality.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.placement import Placement, PlacementError


def validate_instance(demands: np.ndarray, capacities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Normalize and sanity-check an instance; returns float copies.

    Checks that every VM fits on at least one host *individually* -- the paper
    only considers feasible instances (a VM larger than every host can never
    be placed and would make "hosts used" meaningless).
    """
    demands = np.asarray(demands, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if demands.ndim != 2 or capacities.ndim != 2:
        raise PlacementError("demands and capacities must be 2-D")
    if capacities.shape[0] == 0:
        raise PlacementError("need at least one host")
    if demands.shape[0] and demands.shape[1] != capacities.shape[1]:
        raise PlacementError("dimension mismatch between demands and capacities")
    if np.any(demands < 0):
        raise PlacementError("demands must be non-negative")
    if np.any(capacities <= 0):
        raise PlacementError("capacities must be strictly positive")
    if demands.shape[0]:
        fits_somewhere = (demands[:, None, :] <= capacities[None, :, :] + 1e-9).all(axis=2).any(axis=1)
        if not np.all(fits_somewhere):
            bad = np.flatnonzero(~fits_somewhere)
            raise PlacementError(f"VMs {bad.tolist()} do not fit on any host")
    return demands, capacities


def lower_bound_hosts(demands: np.ndarray, capacities: np.ndarray) -> int:
    """A valid lower bound on the number of hosts any feasible packing needs.

    For homogeneous hosts this is the classic L1 bound per dimension,
    ``ceil(sum(demand_k) / capacity_k)``, maximized over dimensions k.  For
    heterogeneous hosts the bound uses the largest host capacity per
    dimension, which keeps it valid (if looser).
    """
    demands = np.asarray(demands, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if demands.size == 0:
        return 0
    per_dimension_totals = demands.sum(axis=0)
    best_capacity = capacities.max(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(best_capacity > 0, per_dimension_totals / best_capacity, 0.0)
    return int(np.max(np.ceil(ratios - 1e-9))) if ratios.size else 0


@dataclass
class ConsolidationResult:
    """Outcome of one consolidation run."""

    placement: Placement
    algorithm: str
    runtime_seconds: float = 0.0
    iterations: int = 0
    #: True when the algorithm proved its solution optimal (only the B&B solver).
    proved_optimal: bool = False
    #: Objective trajectory (best hosts-used per cycle) for convergence plots.
    history: list = field(default_factory=list)
    #: Free-form extras (pheromone stats, nodes explored, ...).
    extra: dict = field(default_factory=dict)

    @property
    def hosts_used(self) -> int:
        """Number of hosts the returned placement uses."""
        return self.placement.hosts_used()

    @property
    def feasible(self) -> bool:
        """Whether the returned placement respects all capacities and places all VMs."""
        return self.placement.fully_assigned and self.placement.is_feasible()

    def summary(self) -> dict:
        """Flat dictionary for report tables."""
        return {
            "algorithm": self.algorithm,
            "hosts_used": self.hosts_used,
            "feasible": self.feasible,
            "runtime_seconds": self.runtime_seconds,
            "iterations": self.iterations,
            "proved_optimal": self.proved_optimal,
            "average_utilization": self.placement.average_utilization(),
        }


class ConsolidationAlgorithm(abc.ABC):
    """Interface every consolidation/placement algorithm implements."""

    #: Human-readable algorithm name used in reports.
    name: str = "base"

    @abc.abstractmethod
    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        """Pack all VMs onto hosts, minimizing the number of hosts used."""

    def consolidate(self, placement: Placement) -> ConsolidationResult:
        """Re-pack an existing placement's VMs (the periodic reconfiguration entry point)."""
        return self.solve(placement.demands, placement.capacities)

    def _timed_solve(self, builder, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        """Run ``builder()`` under a wall-clock timer and stamp the result."""
        start = time.perf_counter()
        result = builder()
        result.runtime_seconds = time.perf_counter() - start
        result.algorithm = self.name
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
