"""Exact vector bin packing by branch and bound.

The paper obtains the optimal number of hosts with CPLEX on small instances
and reports that the ACO algorithm lands within 1.1 % of it.  We substitute an
exact branch-and-bound solver (DESIGN.md section 1): it explores assignments
of VMs (largest first) to hosts, prunes with the per-dimension L1 lower bound
and with symmetry breaking over identical empty hosts, and can be bounded by a
node budget or wall-clock deadline so benchmarks stay laptop-friendly.

On the instance sizes used for E1 (5-20 VMs) the solver always proves the
optimum well within its budget; on larger instances it degrades gracefully to
"best found so far" with ``proved_optimal=False``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.base import (
    ConsolidationAlgorithm,
    ConsolidationResult,
    lower_bound_hosts,
    validate_instance,
)
from repro.core.ffd import FirstFitDecreasing, SortKey
from repro.core.placement import Placement


@dataclass
class OptimalResult(ConsolidationResult):
    """ConsolidationResult with branch-and-bound specific counters."""

    nodes_explored: int = 0
    proof_complete: bool = False


class BranchAndBoundOptimal(ConsolidationAlgorithm):
    """Exact minimum-hosts vector bin packing (CPLEX substitute)."""

    name = "optimal"

    def __init__(
        self,
        max_nodes: int = 2_000_000,
        time_limit_seconds: Optional[float] = 30.0,
    ) -> None:
        if max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        if time_limit_seconds is not None and time_limit_seconds <= 0:
            raise ValueError("time_limit_seconds must be positive or None")
        self.max_nodes = int(max_nodes)
        self.time_limit_seconds = time_limit_seconds

    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)
        return self._timed_solve(lambda: self._search(demands, capacities), demands, capacities)

    # ----------------------------------------------------------------- search
    def _search(self, demands: np.ndarray, capacities: np.ndarray) -> OptimalResult:
        n_vms = demands.shape[0]
        n_hosts = capacities.shape[0]
        if n_vms == 0:
            return OptimalResult(
                placement=Placement(demands, capacities),
                algorithm=self.name,
                proved_optimal=True,
                proof_complete=True,
            )

        homogeneous = bool(np.all(capacities == capacities[0]))
        global_bound = lower_bound_hosts(demands, capacities)

        # Seed the incumbent with FFD so pruning starts effective immediately.
        seed = FirstFitDecreasing(sort_key=SortKey.L1).solve(demands, capacities)
        best_assignment = seed.placement.assignment.copy()
        best_hosts = seed.placement.hosts_used()

        # Branch on VMs in decreasing L1 size: large items first maximizes pruning.
        order = np.argsort(-demands.sum(axis=1), kind="stable")
        deadline = (
            time.perf_counter() + self.time_limit_seconds
            if self.time_limit_seconds is not None
            else None
        )

        assignment = np.full(n_vms, -1, dtype=np.int64)
        residual = capacities.astype(float).copy()
        host_used = np.zeros(n_hosts, dtype=bool)
        state = {"nodes": 0, "best_hosts": best_hosts, "best_assignment": best_assignment,
                 "complete": True}

        # Suffix sums of demands in branching order for a look-ahead bound.
        ordered_demands = demands[order]
        suffix_totals = np.vstack(
            [np.cumsum(ordered_demands[::-1], axis=0)[::-1], np.zeros((1, demands.shape[1]))]
        )
        max_capacity = capacities.max(axis=0)

        def budget_exceeded() -> bool:
            if state["nodes"] >= self.max_nodes:
                return True
            if deadline is not None and state["nodes"] % 4096 == 0 and time.perf_counter() > deadline:
                return True
            return False

        def recurse(depth: int, used_count: int) -> None:
            if budget_exceeded():
                state["complete"] = False
                return
            state["nodes"] += 1
            if depth == n_vms:
                if used_count < state["best_hosts"]:
                    state["best_hosts"] = used_count
                    state["best_assignment"] = assignment.copy()
                return
            # Bound: even with perfect packing of the remaining demand we need
            # at least ceil(remaining / max_capacity) hosts beyond... note the
            # remaining demand may partially fit in already-open hosts, so the
            # sound bound uses total demand of remaining VMs against the best
            # host capacity, minus what open hosts can still absorb.
            remaining = suffix_totals[depth]
            open_slack = residual[host_used].sum(axis=0) if used_count else np.zeros_like(remaining)
            extra_needed = np.max(
                np.ceil((remaining - open_slack) / max_capacity - 1e-9).clip(min=0.0)
            )
            if used_count + extra_needed >= state["best_hosts"]:
                return
            vm = order[depth]
            demand = demands[vm]

            # Try already-used hosts first (better packings found earlier).
            used_indices = np.flatnonzero(host_used)
            if used_indices.size:
                fits = np.all(residual[used_indices] >= demand - 1e-9, axis=1)
                candidates = used_indices[fits]
            else:
                candidates = np.empty(0, dtype=np.int64)
            for host in candidates:
                assignment[vm] = host
                residual[host] -= demand
                recurse(depth + 1, used_count)
                residual[host] += demand
                assignment[vm] = -1
                if not state["complete"]:
                    return

            # Then try opening a new host.  With homogeneous hosts all empty
            # hosts are interchangeable: only try the first one (symmetry
            # breaking).  Opening one is only useful if it keeps us below the
            # incumbent.
            if used_count + 1 >= state["best_hosts"]:
                return
            empty_indices = np.flatnonzero(~host_used)
            if empty_indices.size == 0:
                return
            new_hosts = empty_indices[:1] if homogeneous else empty_indices
            for host in new_hosts:
                if not np.all(capacities[host] >= demand - 1e-9):
                    continue
                assignment[vm] = host
                residual[host] -= demand
                host_used[host] = True
                recurse(depth + 1, used_count + 1)
                host_used[host] = False
                residual[host] += demand
                assignment[vm] = -1
                if not state["complete"]:
                    return

        recurse(0, 0)

        placement = Placement(demands, capacities, state["best_assignment"])
        proved = state["complete"] or state["best_hosts"] <= global_bound
        return OptimalResult(
            placement=placement,
            algorithm=self.name,
            iterations=state["nodes"],
            proved_optimal=proved,
            proof_complete=state["complete"],
            nodes_explored=state["nodes"],
            extra={"lower_bound": global_bound, "seed_hosts": seed.placement.hosts_used()},
        )
