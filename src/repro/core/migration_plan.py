"""Derive live-migration plans from placement changes.

Periodic reconfiguration (paper Section II.C) recomputes a consolidated
placement for the moderately loaded hosts; what the Group Manager actually
*executes* is the set of live migrations turning the current placement into
the new one.  This module computes that set, orders it so that every migration
is feasible when executed (destination has room at execution time), and
estimates its cost with the :mod:`repro.migration` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.placement import Placement, PlacementError


@dataclass(frozen=True)
class Migration:
    """One VM move from ``source_host`` to ``target_host`` (matrix row indices)."""

    vm_index: int
    source_host: int
    target_host: int

    def __post_init__(self) -> None:
        if self.source_host == self.target_host:
            raise PlacementError("migration source and target must differ")


@dataclass
class MigrationPlan:
    """An ordered, feasibility-checked sequence of migrations."""

    migrations: List[Migration] = field(default_factory=list)
    #: VMs that should move according to the target placement but for which no
    #: feasible ordering was found (left in place; a later round retries).
    deferred: List[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of migrations in the plan."""
        return len(self.migrations)

    def moved_vms(self) -> List[int]:
        """Indices of VMs that will move."""
        return [migration.vm_index for migration in self.migrations]

    def __iter__(self):
        return iter(self.migrations)

    def __len__(self) -> int:
        return len(self.migrations)


def plan_migrations(
    current: Placement,
    target: Placement,
    max_migrations: Optional[int] = None,
) -> MigrationPlan:
    """Compute an executable migration order from ``current`` to ``target``.

    The planner repeatedly picks a pending move whose destination currently
    has room, applies it to a working copy and continues -- a topological-ish
    ordering that resolves chains (A->B frees room for C->A).  Cyclic swaps
    that cannot be broken without a spare host are deferred rather than
    violated, mirroring how a real Group Manager would postpone them to the
    next reconfiguration round.

    ``max_migrations`` caps the plan size (administrators bound reconfiguration
    churn); the most "valuable" moves -- those that empty a host -- are kept
    first.
    """
    if current.n_vms != target.n_vms or current.n_hosts != target.n_hosts:
        raise PlacementError("current and target placements cover different instances")
    if not np.allclose(current.demands, target.demands):
        raise PlacementError("current and target placements disagree on VM demands")

    pending = [
        vm
        for vm in range(current.n_vms)
        if current.assignment[vm] >= 0
        and target.assignment[vm] >= 0
        and current.assignment[vm] != target.assignment[vm]
    ]

    # Prioritize moves off hosts the target empties entirely: those are the
    # moves that actually reduce the number of active hosts (energy savings).
    target_used = set(int(h) for h in target.used_host_indices())
    emptied_hosts = {
        int(h) for h in current.used_host_indices() if int(h) not in target_used
    }
    pending.sort(key=lambda vm: (0 if int(current.assignment[vm]) in emptied_hosts else 1, vm))

    working = current.copy()
    residual = working.residual_capacities()
    plan = MigrationPlan()
    remaining = list(pending)

    progress = True
    while remaining and progress:
        progress = False
        still_remaining: List[int] = []
        for vm in remaining:
            if max_migrations is not None and plan.count >= max_migrations:
                still_remaining.append(vm)
                continue
            source = int(working.assignment[vm])
            destination = int(target.assignment[vm])
            demand = working.demands[vm]
            if np.all(demand <= residual[destination] + 1e-9):
                plan.migrations.append(Migration(vm, source, destination))
                working.assignment[vm] = destination
                residual[source] += demand
                residual[destination] -= demand
                progress = True
            else:
                still_remaining.append(vm)
        remaining = still_remaining

    plan.deferred = remaining
    return plan


def migration_churn(plan: MigrationPlan, memory_mb: Sequence[float]) -> float:
    """Total memory (MB) that will cross the network executing the plan.

    A convenient scalar for reports: live migration transfers roughly the VM's
    memory footprint (plus dirtying overhead handled by the cost model).
    """
    total = 0.0
    for migration in plan.migrations:
        total += float(memory_mb[migration.vm_index])
    return total
