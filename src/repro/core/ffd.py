"""Greedy bin-packing baselines: First-Fit and the FFD family.

The paper criticizes consolidation approaches that "adopt simple greedy
algorithms such as variants of the First-Fit Decreasing (FFD) heuristic, which
tend to waste a lot of resources by presorting the VMs according to a single
dimension (e.g. CPU)".  To reproduce the comparison faithfully we implement
the single-dimension FFD the criticism targets *and* the stronger multi-
dimensional presorting variants (L1, L2, product), plus Best-Fit and
Worst-Fit decreasing for completeness.  E1/E2 report the single-dimension CPU
variant as "FFD" (the paper's baseline) and the others as sensitivity rows.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.core.base import ConsolidationAlgorithm, ConsolidationResult, validate_instance
from repro.core.placement import Placement, PlacementError


class SortKey(enum.Enum):
    """How FFD presorts VMs before packing."""

    #: Sort by a single dimension (index 0 = CPU by convention) -- the paper's baseline.
    SINGLE_DIMENSION = "single"
    #: Sort by the sum of demand components.
    L1 = "l1"
    #: Sort by the Euclidean norm of the demand vector.
    L2 = "l2"
    #: Sort by the product of demand components (volume).
    PRODUCT = "product"
    #: Sort by the maximum component (bottleneck dimension).
    MAX = "max"


def _sort_order(demands: np.ndarray, key: SortKey, dimension: int) -> np.ndarray:
    """Indices of VMs in decreasing order of the chosen size measure."""
    if demands.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    if key is SortKey.SINGLE_DIMENSION:
        sizes = demands[:, dimension]
    elif key is SortKey.L1:
        sizes = demands.sum(axis=1)
    elif key is SortKey.L2:
        sizes = np.linalg.norm(demands, axis=1)
    elif key is SortKey.PRODUCT:
        sizes = np.prod(np.maximum(demands, 1e-12), axis=1)
    elif key is SortKey.MAX:
        sizes = demands.max(axis=1)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown sort key {key}")
    # Stable sort keeps ties in input order => deterministic results.
    return np.argsort(-sizes, kind="stable")


class FirstFit(ConsolidationAlgorithm):
    """Plain First-Fit: place each VM (input order) on the first host that fits.

    This is the event-based placement policy Snooze ships for Group Managers
    (Section II.C "placement ... e.g. round robin or first-fit"); it is also
    the building block of FFD.
    """

    name = "first-fit"

    def __init__(self, order: Optional[np.ndarray] = None) -> None:
        #: Optional explicit VM visiting order (used by the FFD subclasses).
        self._order = order

    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)

        def build() -> ConsolidationResult:
            placement = Placement(demands, capacities)
            residual = capacities.copy()
            order = (
                self._order
                if self._order is not None
                else np.arange(demands.shape[0], dtype=np.int64)
            )
            opened: list[int] = []  # hosts already holding at least one VM, in open order
            for vm_index in order:
                demand = demands[vm_index]
                placed = False
                # First try hosts already in use (vectorized feasibility test).
                if opened:
                    open_idx = np.asarray(opened, dtype=np.int64)
                    fits = np.all(residual[open_idx] >= demand - 1e-9, axis=1)
                    hits = np.flatnonzero(fits)
                    if hits.size:
                        host = int(open_idx[hits[0]])
                        placement.assign(int(vm_index), host, check=False)
                        residual[host] -= demand
                        placed = True
                if not placed:
                    # Open the first still-empty host that fits.
                    for host in range(capacities.shape[0]):
                        if host in opened:
                            continue
                        if np.all(residual[host] >= demand - 1e-9):
                            placement.assign(int(vm_index), host, check=False)
                            residual[host] -= demand
                            opened.append(host)
                            placed = True
                            break
                if not placed:
                    raise PlacementError(
                        f"first-fit could not place VM {int(vm_index)}: not enough hosts"
                    )
            return ConsolidationResult(
                placement=placement,
                algorithm=self.name,
                iterations=demands.shape[0],
            )

        return self._timed_solve(build, demands, capacities)


class FirstFitDecreasing(FirstFit):
    """FFD: sort VMs by decreasing size, then First-Fit.

    ``sort_key=SortKey.SINGLE_DIMENSION`` with ``dimension=0`` reproduces the
    CPU-presorted FFD the paper uses as its baseline.
    """

    name = "ffd"

    def __init__(self, sort_key: SortKey = SortKey.SINGLE_DIMENSION, dimension: int = 0) -> None:
        super().__init__(order=None)
        self.sort_key = sort_key
        self.dimension = int(dimension)
        if sort_key is not SortKey.SINGLE_DIMENSION:
            self.name = f"ffd-{sort_key.value}"

    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands_checked, capacities_checked = validate_instance(demands, capacities)
        if self.dimension >= demands_checked.shape[1] and demands_checked.shape[0] > 0:
            raise PlacementError(
                f"sort dimension {self.dimension} out of range for d={demands_checked.shape[1]}"
            )
        self._order = _sort_order(demands_checked, self.sort_key, self.dimension)
        try:
            return super().solve(demands_checked, capacities_checked)
        finally:
            self._order = None


class BestFitDecreasing(ConsolidationAlgorithm):
    """BFD: sort decreasing, place each VM on the *fullest* host it fits on.

    "Fullest" is measured by the remaining capacity after placement, summed
    over dimensions (smaller residual = better fit).
    """

    name = "bfd"

    def __init__(self, sort_key: SortKey = SortKey.L1) -> None:
        self.sort_key = sort_key

    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)

        def build() -> ConsolidationResult:
            placement = Placement(demands, capacities)
            residual = capacities.copy()
            used = np.zeros(capacities.shape[0], dtype=bool)
            order = _sort_order(demands, self.sort_key, 0)
            for vm_index in order:
                demand = demands[vm_index]
                fits = np.all(residual >= demand - 1e-9, axis=1)
                if not np.any(fits):
                    raise PlacementError(f"best-fit could not place VM {int(vm_index)}")
                # Residual slack after hypothetical placement, normalized per capacity.
                slack = ((residual - demand) / capacities).sum(axis=1)
                slack = np.where(fits, slack, np.inf)
                # Prefer already-used hosts by penalizing empty ones just enough
                # to break ties toward packing (keeps hosts_used minimal).
                slack = slack + np.where(used, 0.0, 1e-6)
                host = int(np.argmin(slack))
                placement.assign(int(vm_index), host, check=False)
                residual[host] -= demand
                used[host] = True
            return ConsolidationResult(
                placement=placement, algorithm=self.name, iterations=demands.shape[0]
            )

        return self._timed_solve(build, demands, capacities)


class WorstFitDecreasing(ConsolidationAlgorithm):
    """WFD: place each VM on the *emptiest* used host (load balancing, not packing).

    Included because Snooze's overload-relocation policy wants exactly this
    behaviour (move VMs to lightly loaded hosts); in consolidation comparisons
    it is the anti-baseline that maximizes hosts used.
    """

    name = "wfd"

    def __init__(self, sort_key: SortKey = SortKey.L1) -> None:
        self.sort_key = sort_key

    def solve(self, demands: np.ndarray, capacities: np.ndarray) -> ConsolidationResult:
        demands, capacities = validate_instance(demands, capacities)

        def build() -> ConsolidationResult:
            placement = Placement(demands, capacities)
            residual = capacities.copy()
            order = _sort_order(demands, self.sort_key, 0)
            for vm_index in order:
                demand = demands[vm_index]
                fits = np.all(residual >= demand - 1e-9, axis=1)
                if not np.any(fits):
                    raise PlacementError(f"worst-fit could not place VM {int(vm_index)}")
                slack = (residual / capacities).sum(axis=1)
                slack = np.where(fits, slack, -np.inf)
                host = int(np.argmax(slack))
                placement.assign(int(vm_index), host, check=False)
                residual[host] -= demand
            return ConsolidationResult(
                placement=placement, algorithm=self.name, iterations=demands.shape[0]
            )

        return self._timed_solve(build, demands, capacities)
