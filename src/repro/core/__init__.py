"""Core contribution: VM consolidation as vector bin packing.

The paper's second contribution (Section III) is a nature-inspired VM
consolidation algorithm based on Ant Colony Optimization, evaluated against
the First-Fit-Decreasing heuristic and the exact optimum (CPLEX in the paper,
an exact branch-and-bound solver here).  This package implements:

* :mod:`repro.core.placement` -- the solution representation
  (:class:`Placement`) shared by every algorithm and by the scheduling layer.
* :mod:`repro.core.base` -- the :class:`ConsolidationAlgorithm` interface and
  the :class:`ConsolidationResult` record (hosts used, runtime, iterations).
* :mod:`repro.core.aco` -- the ACO consolidation algorithm (pheromone matrix,
  probabilistic decision rule, cycles of ants, evaporation/reinforcement).
* :mod:`repro.core.ffd` -- greedy baselines: First-Fit, Best-Fit and the FFD
  variants (single-dimension, L1, L2, product presorting).
* :mod:`repro.core.optimal` -- exact branch-and-bound vector bin packing with
  lower bounds, the stand-in for CPLEX on small instances.
* :mod:`repro.core.migration_plan` -- derive the minimal set of live
  migrations turning a current placement into a target placement.
"""

from repro.core.placement import Placement, PlacementError
from repro.core.base import (
    ConsolidationAlgorithm,
    ConsolidationResult,
    lower_bound_hosts,
    validate_instance,
)
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.aco_vectorized import PheromoneSummary, VectorizedACOConsolidation
from repro.core.distributed_aco import DistributedACOConsolidation
from repro.core.ffd import (
    BestFitDecreasing,
    FirstFit,
    FirstFitDecreasing,
    SortKey,
    WorstFitDecreasing,
)
from repro.core.optimal import BranchAndBoundOptimal, OptimalResult
from repro.core.migration_plan import Migration, MigrationPlan, plan_migrations

__all__ = [
    "Placement",
    "PlacementError",
    "ConsolidationAlgorithm",
    "ConsolidationResult",
    "lower_bound_hosts",
    "validate_instance",
    "ACOConsolidation",
    "ACOParameters",
    "PheromoneSummary",
    "VectorizedACOConsolidation",
    "DistributedACOConsolidation",
    "FirstFit",
    "FirstFitDecreasing",
    "BestFitDecreasing",
    "WorstFitDecreasing",
    "SortKey",
    "BranchAndBoundOptimal",
    "OptimalResult",
    "Migration",
    "MigrationPlan",
    "plan_migrations",
]
