"""Placement: the shared solution representation for consolidation.

A placement maps every VM (row of the demand matrix) to a host (row of the
capacity matrix) or to "unassigned" (-1).  All algorithms produce placements;
all metrics (hosts used, utilization, energy) and the migration planner are
computed from placements, so the comparison between ACO, FFD and the optimum
is guaranteed to use identical accounting.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


class PlacementError(ValueError):
    """Raised for malformed or infeasible placement manipulations."""


class Placement:
    """An assignment of VMs to hosts over a fixed instance.

    Parameters
    ----------
    demands:
        ``(n_vms, d)`` demand matrix.
    capacities:
        ``(n_hosts, d)`` capacity matrix.
    assignment:
        Optional ``(n_vms,)`` integer vector of host indices; ``-1`` marks an
        unassigned VM.  Defaults to all-unassigned.
    """

    def __init__(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        assignment: Optional[Sequence[int]] = None,
    ) -> None:
        demands = np.asarray(demands, dtype=float)
        capacities = np.asarray(capacities, dtype=float)
        if demands.ndim != 2 or capacities.ndim != 2:
            raise PlacementError("demands and capacities must be 2-D matrices")
        if demands.shape[0] and demands.shape[1] != capacities.shape[1]:
            raise PlacementError(
                f"dimension mismatch: demands d={demands.shape[1]}, capacities d={capacities.shape[1]}"
            )
        if np.any(demands < 0) or np.any(capacities <= 0):
            raise PlacementError("demands must be >= 0 and capacities strictly positive")
        self.demands = demands
        self.capacities = capacities
        if assignment is None:
            self.assignment = np.full(demands.shape[0], -1, dtype=np.int64)
        else:
            self.assignment = np.asarray(assignment, dtype=np.int64).copy()
            if self.assignment.shape != (demands.shape[0],):
                raise PlacementError(
                    f"assignment shape {self.assignment.shape} does not match n_vms={demands.shape[0]}"
                )
            if np.any(self.assignment >= capacities.shape[0]):
                raise PlacementError("assignment references a host index out of range")
            if np.any(self.assignment < -1):
                raise PlacementError("assignment entries must be >= -1")

    # ----------------------------------------------------------------- shapes
    @property
    def n_vms(self) -> int:
        """Number of VMs in the instance."""
        return self.demands.shape[0]

    @property
    def n_hosts(self) -> int:
        """Number of hosts in the instance."""
        return self.capacities.shape[0]

    @property
    def n_dimensions(self) -> int:
        """Number of resource dimensions."""
        return self.capacities.shape[1]

    def copy(self) -> "Placement":
        """Deep copy sharing the (read-only treated) instance matrices."""
        return Placement(self.demands, self.capacities, self.assignment.copy())

    # ------------------------------------------------------------------ state
    def is_assigned(self, vm_index: int) -> bool:
        """True if VM ``vm_index`` has a host."""
        return bool(self.assignment[vm_index] >= 0)

    @property
    def fully_assigned(self) -> bool:
        """True when every VM has a host."""
        return bool(np.all(self.assignment >= 0))

    def unassigned_vms(self) -> np.ndarray:
        """Indices of VMs without a host."""
        return np.flatnonzero(self.assignment < 0)

    def vms_on_host(self, host_index: int) -> np.ndarray:
        """Indices of VMs placed on ``host_index``."""
        return np.flatnonzero(self.assignment == host_index)

    def host_loads(self) -> np.ndarray:
        """``(n_hosts, d)`` matrix of summed demands per host (vectorized)."""
        loads = np.zeros_like(self.capacities)
        assigned = self.assignment >= 0
        if np.any(assigned):
            np.add.at(loads, self.assignment[assigned], self.demands[assigned])
        return loads

    def residual_capacities(self) -> np.ndarray:
        """``(n_hosts, d)`` remaining capacity per host."""
        return self.capacities - self.host_loads()

    def hosts_used(self) -> int:
        """Number of hosts with at least one VM -- the objective of consolidation."""
        assigned = self.assignment[self.assignment >= 0]
        return int(np.unique(assigned).size)

    def used_host_indices(self) -> np.ndarray:
        """Sorted indices of hosts with at least one VM."""
        assigned = self.assignment[self.assignment >= 0]
        return np.unique(assigned)

    def is_feasible(self, tolerance: float = 1e-9) -> bool:
        """True if no host exceeds its capacity in any dimension."""
        return bool(np.all(self.host_loads() <= self.capacities + tolerance))

    def violations(self, tolerance: float = 1e-9) -> np.ndarray:
        """Indices of hosts whose load exceeds capacity in some dimension."""
        over = np.any(self.host_loads() > self.capacities + tolerance, axis=1)
        return np.flatnonzero(over)

    # ------------------------------------------------------------- mutation
    def assign(self, vm_index: int, host_index: int, check: bool = True) -> None:
        """Assign a VM to a host, optionally verifying capacity."""
        if not (0 <= host_index < self.n_hosts):
            raise PlacementError(f"host index {host_index} out of range")
        if check:
            load = self.demands[self.assignment == host_index].sum(axis=0)
            if np.any(load + self.demands[vm_index] > self.capacities[host_index] + 1e-9):
                raise PlacementError(
                    f"assigning VM {vm_index} to host {host_index} exceeds capacity"
                )
        self.assignment[vm_index] = host_index

    def unassign(self, vm_index: int) -> None:
        """Remove a VM's host assignment."""
        self.assignment[vm_index] = -1

    # -------------------------------------------------------------- metrics
    def average_utilization(self, per_dimension: bool = False):
        """Mean utilization of the *used* hosts (the paper's "average host utilization").

        Utilization of a used host is its load divided by capacity per
        dimension; the scalar form averages across dimensions as well.
        """
        used = self.used_host_indices()
        if used.size == 0:
            return np.zeros(self.n_dimensions) if per_dimension else 0.0
        ratios = self.host_loads()[used] / self.capacities[used]
        if per_dimension:
            return ratios.mean(axis=0)
        return float(ratios.mean())

    def packing_quality(self) -> float:
        """Hosts-used / lower-bound ratio (1.0 means provably optimal packing)."""
        from repro.core.base import lower_bound_hosts  # local import to avoid cycle

        bound = lower_bound_hosts(self.demands, self.capacities)
        if bound == 0:
            return 1.0
        return self.hosts_used() / bound

    def describe(self) -> dict:
        """Summary dictionary used by reports and the CLI."""
        return {
            "n_vms": self.n_vms,
            "n_hosts": self.n_hosts,
            "hosts_used": self.hosts_used(),
            "fully_assigned": self.fully_assigned,
            "feasible": self.is_feasible(),
            "average_utilization": self.average_utilization(),
        }

    def __repr__(self) -> str:
        return (
            f"<Placement vms={self.n_vms} hosts={self.n_hosts} used={self.hosts_used()} "
            f"feasible={self.is_feasible()}>"
        )


def placement_from_nodes(nodes: Iterable, vms: Iterable) -> tuple[Placement, list, list]:
    """Build a :class:`Placement` from live cluster objects.

    Returns ``(placement, vm_list, node_list)`` where the lists give the row
    ordering used in the matrices, so callers can translate assignment indices
    back to objects (the reconfiguration scheduler does exactly this).
    VM *used* vectors are taken as demands, which is what consolidation should
    pack on (moderately loaded hosts are packed by actual usage, Section II.C).
    """
    node_list = list(nodes)
    vm_list = list(vms)
    if not node_list:
        raise PlacementError("need at least one node to build a placement")
    capacities = np.vstack([node.capacity.values for node in node_list]).astype(float)
    if vm_list:
        demands = np.vstack([vm.used.values for vm in vm_list]).astype(float)
    else:
        demands = np.empty((0, capacities.shape[1]))
    node_index = {node.node_id: i for i, node in enumerate(node_list)}
    assignment = np.full(len(vm_list), -1, dtype=np.int64)
    for row, vm in enumerate(vm_list):
        if vm.host_id is not None and vm.host_id in node_index:
            assignment[row] = node_index[vm.host_id]
    return Placement(demands, capacities, assignment), vm_list, node_list


def placement_from_view(view, vms: Iterable, rows=None) -> tuple[Placement, list, list]:
    """Build a :class:`Placement` directly off a ClusterView's resident arrays.

    Same contract as :func:`placement_from_nodes`, but the capacity matrix is
    taken from ``view.capacities`` (a row gather when ``rows`` restricts the
    instance to a participant subset) instead of re-reading ``capacity.values``
    node by node -- the consolidation kernels then run straight off the
    resident decision-plane arrays (ROADMAP item 5 follow-up).  ``rows`` is a
    sequence of view row indices; ``None`` means every node in view order.
    """
    if rows is None:
        node_list = list(view.nodes)
        capacities = np.asarray(view.capacities, dtype=float)
    else:
        row_index = np.asarray(list(rows), dtype=np.intp)
        node_list = [view.nodes[int(row)] for row in row_index]
        capacities = view.capacities[row_index].astype(float, copy=False)
    vm_list = list(vms)
    if not node_list:
        raise PlacementError("need at least one node to build a placement")
    if vm_list:
        demands = np.vstack([vm.used.values for vm in vm_list]).astype(float)
    else:
        demands = np.empty((0, capacities.shape[1]))
    node_index = {node.node_id: i for i, node in enumerate(node_list)}
    assignment = np.full(len(vm_list), -1, dtype=np.int64)
    for row, vm in enumerate(vm_list):
        if vm.host_id is not None and vm.host_id in node_index:
            assignment[row] = node_index[vm.host_id]
    return Placement(demands, capacities, assignment), vm_list, node_list
