"""Static VM demand distributions.

Each distribution produces ``(n, d)`` matrices of per-VM resource demands
expressed as fractions of a reference host capacity.  The GRID'11 evaluation
the paper summarizes draws CPU and memory demands uniformly at random from a
bounded interval; the other distributions exist for sensitivity studies and
for the scale experiments (heavy-tailed demands make packing harder and are
closer to production traces such as Google's cluster data).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.cluster.resources import DEFAULT_DIMENSIONS


class DemandDistribution(abc.ABC):
    """Base class for VM demand generators."""

    def __init__(self, dimensions: Sequence[str] = DEFAULT_DIMENSIONS) -> None:
        self.dimensions = tuple(dimensions)

    @property
    def n_dimensions(self) -> int:
        """Number of resource dimensions produced per VM."""
        return len(self.dimensions)

    @abc.abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return an ``(count, d)`` matrix of demands in (0, 1]."""

    def _clip(self, demands: np.ndarray, lower: float = 0.01, upper: float = 1.0) -> np.ndarray:
        """Keep demands strictly positive and no larger than a full host."""
        return np.clip(demands, lower, upper)


class UniformDemandDistribution(DemandDistribution):
    """Independent uniform demands per dimension -- the GRID'11 setting.

    The authors draw demands uniformly from ``[low, high]`` relative to the
    host capacity; defaults follow their small/medium VM mix (10 %-50 % of a
    host per dimension).
    """

    def __init__(
        self,
        low: float = 0.1,
        high: float = 0.5,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        super().__init__(dimensions)
        if not (0.0 < low <= high <= 1.0):
            raise ValueError("require 0 < low <= high <= 1")
        self.low = float(low)
        self.high = float(high)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        demands = rng.uniform(self.low, self.high, size=(count, self.n_dimensions))
        return self._clip(demands)


class NormalDemandDistribution(DemandDistribution):
    """Truncated-normal demands centred on ``mean`` with spread ``std``."""

    def __init__(
        self,
        mean: float = 0.3,
        std: float = 0.1,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        super().__init__(dimensions)
        if not (0.0 < mean <= 1.0):
            raise ValueError("mean must be in (0, 1]")
        if std <= 0:
            raise ValueError("std must be positive")
        self.mean = float(mean)
        self.std = float(std)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        demands = rng.normal(self.mean, self.std, size=(count, self.n_dimensions))
        return self._clip(demands)


class CorrelatedDemandDistribution(DemandDistribution):
    """Demands whose dimensions are positively correlated.

    A VM's memory and network needs usually track its CPU size; correlation
    ``rho`` interpolates between fully independent uniforms (rho=0) and
    perfectly correlated sizes (rho=1).  Correlated demands are the harder
    case for single-dimension FFD, which is precisely the weakness the paper
    attributes to it ("presorting the VMs according to a single dimension").
    """

    def __init__(
        self,
        low: float = 0.1,
        high: float = 0.6,
        rho: float = 0.8,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        super().__init__(dimensions)
        if not (0.0 < low <= high <= 1.0):
            raise ValueError("require 0 < low <= high <= 1")
        if not (0.0 <= rho <= 1.0):
            raise ValueError("rho must be in [0, 1]")
        self.low = float(low)
        self.high = float(high)
        self.rho = float(rho)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        base = rng.uniform(self.low, self.high, size=(count, 1))
        independent = rng.uniform(self.low, self.high, size=(count, self.n_dimensions))
        demands = self.rho * base + (1.0 - self.rho) * independent
        return self._clip(demands)


class HeavyTailDemandDistribution(DemandDistribution):
    """Pareto-like demands: many small VMs, a few very large ones.

    Production clusters (e.g. the Google trace) show heavy-tailed task sizes;
    this distribution stresses consolidation because large VMs dominate bins.
    """

    def __init__(
        self,
        shape: float = 2.5,
        scale: float = 0.08,
        cap: float = 0.9,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        super().__init__(dimensions)
        if shape <= 1.0:
            raise ValueError("shape must exceed 1 for a finite mean")
        if not (0.0 < scale < cap <= 1.0):
            raise ValueError("require 0 < scale < cap <= 1")
        self.shape = float(shape)
        self.scale = float(scale)
        self.cap = float(cap)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        demands = self.scale * (1.0 + rng.pareto(self.shape, size=(count, self.n_dimensions)))
        return self._clip(demands, upper=self.cap)


def make_distribution(name: str, **kwargs) -> DemandDistribution:
    """Factory used by the CLI and benchmark harness (``uniform``, ``normal``...)."""
    registry = {
        "uniform": UniformDemandDistribution,
        "normal": NormalDemandDistribution,
        "correlated": CorrelatedDemandDistribution,
        "heavytail": HeavyTailDemandDistribution,
    }
    try:
        cls = registry[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown demand distribution {name!r}; choose from {sorted(registry)}") from exc
    return cls(**kwargs)
