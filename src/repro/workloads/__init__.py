"""Workload generation: VM demand distributions, arrival processes, traces.

The authors' consolidation evaluation (GRID'11, summarized in Section III.B of
the reproduced paper) uses synthetically generated VM resource demands; the
Snooze evaluation (CCGrid'12, Section II.F) submits batches of identical VMs
running a benchmark application.  This package reproduces both workload styles
and adds the time-varying CPU traces needed for the overload/underload and
energy experiments:

* :mod:`repro.workloads.distributions` -- static demand vectors.
* :mod:`repro.workloads.traces` -- CPU-utilization time series (constant,
  random walk, periodic/diurnal, bursty, spike).
* :mod:`repro.workloads.generator` -- VM batches and arrival processes.
"""

from repro.workloads.distributions import (
    CorrelatedDemandDistribution,
    DemandDistribution,
    HeavyTailDemandDistribution,
    NormalDemandDistribution,
    UniformDemandDistribution,
)
from repro.workloads.traces import (
    BurstyTrace,
    CompositeTrace,
    ConstantTrace,
    DiurnalTrace,
    RandomWalkTrace,
    SpikeTrace,
    TraceReplay,
    UtilizationTrace,
    make_trace_factory,
)
from repro.workloads.generator import (
    ArrivalProcess,
    BatchArrival,
    ExponentialLifetime,
    FixedLifetime,
    InfiniteLifetime,
    LifetimeDistribution,
    PoissonArrival,
    UniformArrival,
    UniformLifetime,
    VMRequest,
    WorkloadGenerator,
    arrival_kinds,
    consolidation_instance,
    lifetime_kinds,
    make_arrival,
    make_lifetime,
    register_arrival,
    register_lifetime,
)

__all__ = [
    "DemandDistribution",
    "UniformDemandDistribution",
    "NormalDemandDistribution",
    "CorrelatedDemandDistribution",
    "HeavyTailDemandDistribution",
    "UtilizationTrace",
    "ConstantTrace",
    "RandomWalkTrace",
    "DiurnalTrace",
    "BurstyTrace",
    "SpikeTrace",
    "TraceReplay",
    "CompositeTrace",
    "make_trace_factory",
    "VMRequest",
    "ArrivalProcess",
    "BatchArrival",
    "PoissonArrival",
    "UniformArrival",
    "make_arrival",
    "register_arrival",
    "arrival_kinds",
    "LifetimeDistribution",
    "InfiniteLifetime",
    "FixedLifetime",
    "ExponentialLifetime",
    "UniformLifetime",
    "make_lifetime",
    "register_lifetime",
    "lifetime_kinds",
    "WorkloadGenerator",
    "consolidation_instance",
]
