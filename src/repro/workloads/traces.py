"""CPU-utilization traces.

A trace is a callable ``trace(t) -> utilization fraction in [0, 1]`` attached
to a :class:`~repro.cluster.vm.VirtualMachine`.  Local Controllers sample it
when monitoring; the energy experiments (E5) need diurnal shapes, the
relocation experiments (E6) need bursts and spikes, and the consolidation
experiments use constant traces (demands equal to reservations), mirroring the
static bin-packing setting of the GRID'11 paper.

All traces are deterministic functions of time once constructed: stochastic
shapes pre-draw their randomness at construction so that re-evaluating
``trace(t)`` is pure (required because monitoring may sample the same instant
more than once, e.g. before and after a migration).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np


class UtilizationTrace(abc.ABC):
    """Base class: a pure function from simulated time to utilization."""

    @abc.abstractmethod
    def __call__(self, t: float) -> float:
        """Utilization fraction in [0, 1] at simulated time ``t`` (seconds)."""

    def mean_over(self, horizon: float, samples: int = 512) -> float:
        """Average utilization over ``[0, horizon]`` (used by tests and reports)."""
        times = np.linspace(0.0, horizon, samples)
        return float(np.mean([self(t) for t in times]))


class ConstantTrace(UtilizationTrace):
    """Flat utilization -- the static-demand setting of the consolidation study."""

    def __init__(self, level: float = 1.0) -> None:
        if not (0.0 <= level <= 1.0):
            raise ValueError("level must be in [0, 1]")
        self.level = float(level)

    def __call__(self, t: float) -> float:  # noqa: ARG002 - time-invariant
        return self.level


class RandomWalkTrace(UtilizationTrace):
    """A bounded random walk sampled on a fixed grid and held between samples."""

    def __init__(
        self,
        rng: np.random.Generator,
        start: float = 0.5,
        step_std: float = 0.05,
        interval: float = 60.0,
        horizon: float = 86_400.0,
        low: float = 0.05,
        high: float = 0.95,
    ) -> None:
        if not (0.0 <= low < high <= 1.0):
            raise ValueError("require 0 <= low < high <= 1")
        if interval <= 0 or horizon <= 0:
            raise ValueError("interval and horizon must be positive")
        self.interval = float(interval)
        steps = int(np.ceil(horizon / interval)) + 1
        increments = rng.normal(0.0, step_std, size=steps)
        walk = np.clip(start + np.cumsum(increments), low, high)
        walk[0] = np.clip(start, low, high)
        self._samples = walk

    def __call__(self, t: float) -> float:
        index = int(max(t, 0.0) // self.interval)
        index = min(index, len(self._samples) - 1)
        return float(self._samples[index])


class DiurnalTrace(UtilizationTrace):
    """Day/night sinusoidal load with configurable peak hour -- the E5 shape."""

    def __init__(
        self,
        base: float = 0.2,
        peak: float = 0.9,
        period: float = 86_400.0,
        peak_time: float = 14.0 * 3600.0,
        noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not (0.0 <= base <= peak <= 1.0):
            raise ValueError("require 0 <= base <= peak <= 1")
        if period <= 0:
            raise ValueError("period must be positive")
        if noise_std > 0 and rng is None:
            raise ValueError("noise requires an rng")
        self.base = float(base)
        self.peak = float(peak)
        self.period = float(period)
        self.peak_time = float(peak_time)
        self.noise_std = float(noise_std)
        # Pre-draw one period of noise on a 5-minute grid for purity.
        if noise_std > 0:
            self._noise = rng.normal(0.0, noise_std, size=int(self.period // 300) + 1)
        else:
            self._noise = np.zeros(1)

    def __call__(self, t: float) -> float:
        phase = 2.0 * np.pi * ((t - self.peak_time) % self.period) / self.period
        level = self.base + (self.peak - self.base) * 0.5 * (1.0 + np.cos(phase))
        if self.noise_std > 0:
            index = int((t % self.period) // 300) % len(self._noise)
            level += self._noise[index]
        return float(np.clip(level, 0.0, 1.0))


class BurstyTrace(UtilizationTrace):
    """Low baseline with randomly placed high-utilization bursts (E6 overloads)."""

    def __init__(
        self,
        rng: np.random.Generator,
        baseline: float = 0.2,
        burst_level: float = 0.95,
        burst_rate_per_hour: float = 1.0,
        burst_duration: float = 300.0,
        horizon: float = 86_400.0,
    ) -> None:
        if not (0.0 <= baseline <= burst_level <= 1.0):
            raise ValueError("require 0 <= baseline <= burst_level <= 1")
        if burst_rate_per_hour < 0 or burst_duration <= 0 or horizon <= 0:
            raise ValueError("invalid burst parameters")
        self.baseline = float(baseline)
        self.burst_level = float(burst_level)
        self.burst_duration = float(burst_duration)
        expected_bursts = burst_rate_per_hour * horizon / 3600.0
        count = int(rng.poisson(expected_bursts)) if expected_bursts > 0 else 0
        self._burst_starts = np.sort(rng.uniform(0.0, horizon, size=count)) if count else np.empty(0)

    def __call__(self, t: float) -> float:
        if self._burst_starts.size:
            index = np.searchsorted(self._burst_starts, t, side="right") - 1
            if index >= 0 and t - self._burst_starts[index] <= self.burst_duration:
                return self.burst_level
        return self.baseline

    @property
    def burst_count(self) -> int:
        """Number of bursts drawn for the horizon."""
        return int(self._burst_starts.size)


class SpikeTrace(UtilizationTrace):
    """A single step from ``before`` to ``after`` at time ``at`` -- for targeted tests."""

    def __init__(self, before: float = 0.2, after: float = 0.95, at: float = 600.0) -> None:
        for value in (before, after):
            if not (0.0 <= value <= 1.0):
                raise ValueError("utilization levels must be in [0, 1]")
        self.before = float(before)
        self.after = float(after)
        self.at = float(at)

    def __call__(self, t: float) -> float:
        return self.after if t >= self.at else self.before


class TraceReplay(UtilizationTrace):
    """Replay an explicit ``(times, values)`` series with step interpolation.

    This is the hook for plugging in real traces (e.g. PlanetLab / Google CPU
    samples) when they are available; the reproduction ships synthetic series.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float], loop: bool = False) -> None:
        times_arr = np.asarray(times, dtype=float)
        values_arr = np.asarray(values, dtype=float)
        if times_arr.ndim != 1 or times_arr.shape != values_arr.shape or times_arr.size == 0:
            raise ValueError("times and values must be equal-length non-empty 1-D sequences")
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any((values_arr < 0) | (values_arr > 1)):
            raise ValueError("values must be within [0, 1]")
        self.times = times_arr
        self.values = values_arr
        self.loop = bool(loop)

    def __call__(self, t: float) -> float:
        if self.loop:
            span = self.times[-1] - self.times[0]
            if span > 0:
                t = self.times[0] + ((t - self.times[0]) % span)
        index = int(np.searchsorted(self.times, t, side="right") - 1)
        index = int(np.clip(index, 0, len(self.values) - 1))
        return float(self.values[index])


def make_trace_factory(kind: str, **params):
    """Build a ``factory(rng) -> UtilizationTrace`` from a trace kind and parameters.

    This is the declarative entry point the scenario engine uses: stochastic
    traces (``randomwalk``, ``bursty``, noisy ``diurnal``) receive the per-VM
    rng at construction, deterministic ones ignore it.  Supported kinds:
    ``constant``, ``diurnal``, ``randomwalk``, ``bursty``, ``spike``,
    ``replay``.
    """
    key = kind.lower()
    if key == "constant":
        return lambda rng: ConstantTrace(**params)
    if key == "diurnal":
        if params.get("noise_std", 0.0) > 0:
            return lambda rng: DiurnalTrace(rng=rng, **params)
        return lambda rng: DiurnalTrace(**params)
    if key == "randomwalk":
        return lambda rng: RandomWalkTrace(rng, **params)
    if key == "bursty":
        return lambda rng: BurstyTrace(rng, **params)
    if key == "spike":
        return lambda rng: SpikeTrace(**params)
    if key == "replay":
        return lambda rng: TraceReplay(**params)
    raise ValueError(
        f"unknown trace kind {kind!r}; choose from "
        "['bursty', 'constant', 'diurnal', 'randomwalk', 'replay', 'spike']"
    )


class CompositeTrace(UtilizationTrace):
    """Sum of traces clipped to [0, 1] (e.g. diurnal base + bursts)."""

    def __init__(self, traces: Sequence[UtilizationTrace], weights: Optional[Sequence[float]] = None) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        self.traces = list(traces)
        if weights is None:
            weights = [1.0] * len(self.traces)
        if len(weights) != len(self.traces):
            raise ValueError("weights length must match traces length")
        self.weights = [float(w) for w in weights]

    def __call__(self, t: float) -> float:
        total = sum(w * trace(t) for w, trace in zip(self.weights, self.traces))
        return float(np.clip(total, 0.0, 1.0))
