"""Workload generation: VM requests, arrival processes, consolidation instances.

Two consumers:

* the **hierarchy simulation** (experiments E3-E6) needs *timed* VM submission
  requests -- batches or Poisson arrivals of :class:`VMRequest`;
* the **consolidation study** (experiments E1, E2, E7) needs *static*
  bin-packing instances -- demand matrices plus host capacities, produced by
  :func:`consolidation_instance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.workloads.distributions import DemandDistribution, UniformDemandDistribution
from repro.workloads.traces import ConstantTrace


@dataclass
class VMRequest:
    """A client submission request: when a VM arrives and what it asks for."""

    arrival_time: float
    vm: VirtualMachine

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be non-negative")


class ArrivalProcess:
    """Base class for arrival processes; subclasses yield arrival offsets."""

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` non-decreasing arrival times starting at >= 0."""
        raise NotImplementedError


@dataclass
class BatchArrival(ArrivalProcess):
    """All VMs submitted at the same instant (the CCGrid'12 submission experiment)."""

    at: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("batch arrival time must be non-negative")

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:  # noqa: ARG002
        return np.full(count, float(self.at))


@dataclass
class PoissonArrival(ArrivalProcess):
    """Poisson arrivals with ``rate_per_hour`` starting at ``start``."""

    rate_per_hour: float = 60.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError("rate_per_hour must be positive")
        if self.start < 0:
            raise ValueError("start must be non-negative")

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(3600.0 / self.rate_per_hour, size=count)
        return self.start + np.cumsum(gaps)


@dataclass
class UniformArrival(ArrivalProcess):
    """Arrivals spread uniformly at random over ``[start, start + window]``.

    A flash crowd is a short window at a high count; a trickle is a long one.
    """

    start: float = 0.0
    window: float = 3600.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.start < 0:
            raise ValueError("start must be non-negative")

    def arrival_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.sort(self.start + rng.uniform(0.0, self.window, size=count))


#: Registered arrival processes, mirroring the policy registry: factories live
#: in a module-level table, lookups are case-insensitive, and unknown kinds
#: raise with the registered alternatives listed.
_ARRIVAL_REGISTRY: dict = {
    "batch": BatchArrival,
    "poisson": PoissonArrival,
    "uniform": UniformArrival,
}


def register_arrival(kind: str, factory) -> None:
    """Register an arrival-process factory under ``kind`` (duplicate kinds are errors)."""
    key = str(kind).lower()
    if key in _ARRIVAL_REGISTRY:
        raise ValueError(f"arrival kind {key!r} already registered")
    _ARRIVAL_REGISTRY[key] = factory


def arrival_kinds() -> List[str]:
    """Sorted names of every registered arrival process."""
    return sorted(_ARRIVAL_REGISTRY)


def make_arrival(kind: str, **kwargs) -> ArrivalProcess:
    """Factory used by the scenario engine (``batch``, ``poisson``, ``uniform``)."""
    try:
        cls = _ARRIVAL_REGISTRY[kind.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown arrival process kind {kind!r}; available: {', '.join(arrival_kinds())}"
        ) from exc
    return cls(**kwargs)


# --------------------------------------------------------------------- lifetimes
class LifetimeDistribution:
    """Base class for VM lifetime (runtime) distributions.

    A lifetime is the seconds a VM runs before departing and releasing its
    resources; ``None`` means the VM runs until the end of the experiment.
    Churn scenarios combine an arrival process with a finite lifetime
    distribution so the cluster sees continuous departures.
    """

    def sample(self, count: int, rng: np.random.Generator) -> List[Optional[float]]:
        """Return ``count`` lifetimes in seconds (``None`` = infinite)."""
        raise NotImplementedError


@dataclass
class InfiniteLifetime(LifetimeDistribution):
    """VMs never depart -- the seed's one-shot submission behaviour."""

    def sample(self, count: int, rng: np.random.Generator) -> List[Optional[float]]:  # noqa: ARG002
        return [None] * count


@dataclass
class FixedLifetime(LifetimeDistribution):
    """Every VM runs exactly ``seconds`` then departs."""

    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("lifetime seconds must be positive")

    def sample(self, count: int, rng: np.random.Generator) -> List[Optional[float]]:  # noqa: ARG002
        return [float(self.seconds)] * count


@dataclass
class ExponentialLifetime(LifetimeDistribution):
    """Memoryless lifetimes with the given ``mean`` (floored at ``minimum``)."""

    mean: float = 3600.0
    minimum: float = 0.0

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean lifetime must be positive")
        if self.minimum < 0:
            raise ValueError("minimum lifetime must be non-negative")

    def sample(self, count: int, rng: np.random.Generator) -> List[Optional[float]]:
        draws = rng.exponential(self.mean, size=count)
        return [float(max(draw, self.minimum)) for draw in draws]


@dataclass
class UniformLifetime(LifetimeDistribution):
    """Lifetimes drawn uniformly from ``[low, high]`` seconds."""

    low: float = 600.0
    high: float = 7200.0

    def __post_init__(self) -> None:
        if not (0.0 < self.low <= self.high):
            raise ValueError("require 0 < low <= high")

    def sample(self, count: int, rng: np.random.Generator) -> List[Optional[float]]:
        return [float(draw) for draw in rng.uniform(self.low, self.high, size=count)]


#: Registered lifetime distributions (same registry ergonomics as arrivals).
_LIFETIME_REGISTRY: dict = {
    "infinite": InfiniteLifetime,
    "fixed": FixedLifetime,
    "exponential": ExponentialLifetime,
    "uniform": UniformLifetime,
}


def register_lifetime(kind: str, factory) -> None:
    """Register a lifetime-distribution factory under ``kind`` (duplicates are errors)."""
    key = str(kind).lower()
    if key in _LIFETIME_REGISTRY:
        raise ValueError(f"lifetime kind {key!r} already registered")
    _LIFETIME_REGISTRY[key] = factory


def lifetime_kinds() -> List[str]:
    """Sorted names of every registered lifetime distribution."""
    return sorted(_LIFETIME_REGISTRY)


def make_lifetime(kind: str, **kwargs) -> LifetimeDistribution:
    """Factory used by the scenario engine (``infinite``, ``fixed``, ``exponential``, ``uniform``)."""
    try:
        cls = _LIFETIME_REGISTRY[kind.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown lifetime distribution kind {kind!r}; available: {', '.join(lifetime_kinds())}"
        ) from exc
    return cls(**kwargs)


class WorkloadGenerator:
    """Generate timed VM submission workloads for the hierarchy simulation."""

    def __init__(
        self,
        demand_distribution: Optional[DemandDistribution] = None,
        arrival_process: Optional[ArrivalProcess] = None,
        trace_factory=None,
        runtime_mean: Optional[float] = None,
        lifetime_distribution: Optional[LifetimeDistribution] = None,
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> None:
        if runtime_mean is not None and lifetime_distribution is not None:
            raise ValueError("pass either runtime_mean or lifetime_distribution, not both")
        self.demand_distribution = demand_distribution or UniformDemandDistribution(
            dimensions=dimensions
        )
        self.arrival_process = arrival_process or BatchArrival()
        #: Callable ``trace_factory(rng) -> UtilizationTrace`` applied per VM;
        #: defaults to a constant full-reservation trace.
        self.trace_factory = trace_factory or (lambda rng: ConstantTrace(1.0))
        #: Mean exponential runtime in seconds (None => VMs run forever).
        #: Legacy shorthand for ``ExponentialLifetime(mean=runtime_mean)``.
        self.runtime_mean = runtime_mean
        if lifetime_distribution is not None:
            self.lifetime_distribution: LifetimeDistribution = lifetime_distribution
        elif runtime_mean is not None:
            self.lifetime_distribution = ExponentialLifetime(mean=runtime_mean)
        else:
            self.lifetime_distribution = InfiniteLifetime()
        self.dimensions = tuple(dimensions)

    def generate(self, count: int, rng: np.random.Generator) -> List[VMRequest]:
        """Produce ``count`` timed VM requests sorted by arrival time."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return []
        demands = self.demand_distribution.sample(count, rng)
        arrivals = self.arrival_process.arrival_times(count, rng)
        runtimes: List[Optional[float]] = self.lifetime_distribution.sample(count, rng)
        requests = []
        for index in range(count):
            vm = VirtualMachine(
                ResourceVector(demands[index], self.dimensions),
                runtime=runtimes[index],
                trace=self.trace_factory(rng),
            )
            requests.append(VMRequest(float(arrivals[index]), vm))
        requests.sort(key=lambda request: request.arrival_time)
        return requests

    def stream(self, count: int, rng: np.random.Generator) -> Iterator[VMRequest]:
        """Lazily iterate requests (same content as :meth:`generate`)."""
        yield from self.generate(count, rng)


def consolidation_instance(
    n_vms: int,
    rng: np.random.Generator,
    demand_distribution: Optional[DemandDistribution] = None,
    host_capacity: Sequence[float] = (1.0, 1.0),
    dimensions: Optional[Sequence[str]] = None,
    n_hosts: Optional[int] = None,
    slack: float = 1.3,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a static vector bin-packing instance ``(demands, capacities)``.

    ``demands`` has shape ``(n_vms, d)`` and ``capacities`` ``(n_hosts, d)``.
    When ``n_hosts`` is omitted it is sized so that a naive lower bound needs
    roughly ``n_hosts / slack`` hosts, which matches the GRID'11 setup where
    the host pool always suffices but consolidation quality determines how
    many hosts end up used.
    """
    if n_vms <= 0:
        raise ValueError("n_vms must be positive")
    if slack < 1.0:
        raise ValueError("slack must be >= 1")
    capacity = np.asarray(host_capacity, dtype=float)
    if dimensions is None:
        dimensions = DEFAULT_DIMENSIONS[: capacity.shape[0]]
    if demand_distribution is None:
        demand_distribution = UniformDemandDistribution(dimensions=dimensions)
    if demand_distribution.n_dimensions != capacity.shape[0]:
        raise ValueError(
            f"distribution dimensionality {demand_distribution.n_dimensions} does not match "
            f"host capacity dimensionality {capacity.shape[0]}"
        )
    demands = demand_distribution.sample(n_vms, rng)
    # Demands are fractions of the reference host; scale to the capacity units.
    demands = demands * capacity[np.newaxis, :]
    if n_hosts is None:
        lower_bound = int(np.ceil(np.max(np.sum(demands, axis=0) / capacity)))
        n_hosts = max(1, int(np.ceil(lower_bound * slack)) + 1)
    capacities = np.tile(capacity, (n_hosts, 1))
    return demands, capacities
