"""Command-line interface.

The paper's Snooze implementation ships a CLI "implemented on top of those
services. It supports the VM management as well as live visualizing and
exporting of the hierarchy organization."  The reproduction's ``repro-sim``
command offers the equivalent for the simulated system: run a deployment
scenario, print the hierarchy organization, and run consolidation algorithm
comparisons from the terminal.
"""

from repro.cli.main import main

__all__ = ["main"]
