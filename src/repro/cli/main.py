"""``repro-sim``: the command-line entry point.

Sub-commands
------------

``repro-sim consolidate``
    Run the consolidation algorithms (ACO / FFD / BFD / optional exact
    optimum) on a synthetic instance and print the comparison table -- the CLI
    version of experiment E1/E2.

``repro-sim simulate``
    Build a Snooze deployment, submit a batch of VMs, optionally inject a
    Group Leader failure, and print the resulting statistics and hierarchy
    organization -- the CLI version of the Section II evaluation.

``repro-sim hierarchy``
    Build and start a deployment, then print the hierarchy organization
    (which GM leads, which LCs each GM manages), the CLI's equivalent of the
    paper's "live visualizing and exporting of the hierarchy organization".

``repro-sim scenario``
    List, describe and run the declarative scenario catalog
    (:mod:`repro.scenarios`): ``scenario list``, ``scenario describe <name>``,
    ``scenario run <name> [--seed N] [--duration S] [--json]
    [--policy kind=name ...] [--trace PATH] [--metrics-out PATH]``.

``repro-sim policy``
    Introspect the unified policy registry (:mod:`repro.policies`):
    ``policy list`` enumerates every registered policy of every kind;
    ``policy describe <kind> <name>`` prints one policy's parameter schema.

``repro-sim obs``
    Inspect observability exports: ``obs summarize <trace.json>`` aggregates a
    Chrome trace-event file written by ``scenario run --trace`` into per-span
    statistics.

``repro-sim sweep``
    List, describe, run, distribute and analyze declarative experiment grids
    (:mod:`repro.sweeps`): ``sweep list``, ``sweep describe <name>``,
    ``sweep run <name> [--jobs N | --runners N] [--json]
    [--policy kind=name ...] [--duration S] [--output PATH] [--csv PATH]``,
    ``sweep serve <name> [--host H] [--port P] [--port-file PATH]``,
    ``sweep work --connect HOST:PORT``, and
    ``sweep analyze <report.json> [--objectives a,b,c]`` for Pareto fronts.

``repro-sim megafleet``
    List and run the warehouse-scale fleet catalog (:mod:`repro.megafleet`)
    on the sharded lockstep engine: ``megafleet list``, ``megafleet run
    <name> [--seed N] [--shards K] [--jobs N] [--duration S] [--json]``
    (byte-identical results for any shards/jobs count).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core import ACOConsolidation, BestFitDecreasing, BranchAndBoundOptimal, FirstFitDecreasing
from repro.core.aco import ACOParameters
from repro.hierarchy import HierarchyConfig, SnoozeSystem, SystemSpec
from repro.megafleet import get_megafleet, megafleet_names, run_megafleet
from repro.metrics.report import ComparisonTable
from repro.policies import get_policy_spec, iter_policy_specs
from repro.policies.registry import merge_policy_selections
from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario, iter_scenarios
from repro.simulation.randomness import spawn_generator
from repro.sweeps import SweepReport, SweepSpec, get_sweep, iter_sweeps, run_sweep
from repro.workloads import (
    BatchArrival,
    UniformDemandDistribution,
    WorkloadGenerator,
    consolidation_instance,
)
from repro.workloads.distributions import make_distribution


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Snooze reproduction: energy-aware cloud management simulator",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    consolidate = subparsers.add_parser(
        "consolidate", help="compare consolidation algorithms on a synthetic instance"
    )
    consolidate.add_argument("--vms", type=int, default=50, help="number of VMs to pack")
    consolidate.add_argument("--seed", type=int, default=0, help="random seed")
    consolidate.add_argument(
        "--distribution",
        default="uniform",
        choices=["uniform", "normal", "correlated", "heavytail"],
        help="VM demand distribution",
    )
    consolidate.add_argument(
        "--optimal", action="store_true", help="also run the exact branch-and-bound solver"
    )
    consolidate.add_argument("--ants", type=int, default=8, help="ACO: ants per cycle")
    consolidate.add_argument("--cycles", type=int, default=30, help="ACO: number of cycles")

    simulate = subparsers.add_parser("simulate", help="run a Snooze deployment scenario")
    simulate.add_argument("--lcs", type=int, default=16, help="number of local controllers")
    simulate.add_argument("--gms", type=int, default=2, help="number of group managers")
    simulate.add_argument("--vms", type=int, default=32, help="number of VMs to submit")
    simulate.add_argument("--duration", type=float, default=600.0, help="simulated seconds to run")
    simulate.add_argument("--seed", type=int, default=0, help="random seed")
    simulate.add_argument(
        "--energy", action="store_true", help="enable idle-host power management"
    )
    simulate.add_argument(
        "--kill-leader",
        action="store_true",
        help="inject a Group Leader failure halfway through the run",
    )

    hierarchy = subparsers.add_parser("hierarchy", help="print the hierarchy organization")
    hierarchy.add_argument("--lcs", type=int, default=8, help="number of local controllers")
    hierarchy.add_argument("--gms", type=int, default=2, help="number of group managers")
    hierarchy.add_argument("--seed", type=int, default=0, help="random seed")

    scenario = subparsers.add_parser(
        "scenario", help="list, describe and run declarative catalog scenarios"
    )
    scenario.add_argument("action", choices=["list", "describe", "run"], help="what to do")
    scenario.add_argument("name", nargs="?", help="scenario name (for describe/run)")
    scenario.add_argument("--seed", type=int, default=0, help="random seed")
    scenario.add_argument(
        "--duration", type=float, default=None, help="override the simulated duration (seconds)"
    )
    scenario.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )
    scenario.add_argument(
        "--policy",
        action="append",
        default=[],
        metavar="KIND=NAME",
        help=(
            "override a policy selection for the run (repeatable), e.g. "
            "--policy placement=best-fit --policy reconfiguration=aco"
        ),
    )
    scenario.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "enable tracing and write the run's causal trace to PATH as "
            "Chrome trace-event JSON (open in Perfetto / chrome://tracing)"
        ),
    )
    scenario.add_argument(
        "--metrics-out",
        metavar="PATH",
        help=(
            "enable metrics and write the run's metric dump to PATH "
            "(Prometheus text when PATH ends in .prom, canonical JSON otherwise)"
        ),
    )

    obs = subparsers.add_parser(
        "obs", help="inspect observability exports (trace files)"
    )
    obs.add_argument("action", choices=["summarize"], help="what to do")
    obs.add_argument("path", help="a Chrome trace-event JSON file written by scenario run --trace")
    obs.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )

    policy = subparsers.add_parser(
        "policy", help="introspect the unified policy registry"
    )
    policy.add_argument("action", choices=["list", "describe"], help="what to do")
    policy.add_argument(
        "kind", nargs="?", help="policy kind (filter for list, required for describe)"
    )
    policy.add_argument("name", nargs="?", help="policy name (for describe)")
    policy.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )

    sweep = subparsers.add_parser(
        "sweep", help="list, describe, run, distribute and analyze experiment grids"
    )
    sweep.add_argument(
        "action",
        choices=["list", "describe", "run", "serve", "work", "analyze"],
        help=(
            "list/describe/run the catalog; serve a grid to work-pulling "
            "runners; work as a runner; analyze a report file (Pareto fronts)"
        ),
    )
    sweep.add_argument(
        "name",
        nargs="?",
        help="sweep name (describe/run/serve) or report JSON path (analyze)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "parallel worker processes for sweep run "
            "(default 1 = serial; the report is identical either way)"
        ),
    )
    sweep.add_argument(
        "--runners",
        type=int,
        default=None,
        help=(
            "for sweep run: execute on N loopback runner subprocesses via the "
            "distributed coordinator (the report is identical to --jobs runs)"
        ),
    )
    sweep.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="for sweep work: the coordinator address to pull cells from",
    )
    sweep.add_argument(
        "--host",
        default="0.0.0.0",
        help="for sweep serve: bind address (default 0.0.0.0)",
    )
    sweep.add_argument(
        "--port",
        type=int,
        default=0,
        help="for sweep serve: bind port (default 0 = pick a free port)",
    )
    sweep.add_argument(
        "--port-file",
        metavar="PATH",
        help="for sweep serve: write the bound port to PATH once listening",
    )
    sweep.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help=(
            "for sweep serve/run --runners: seconds a granted cell may go "
            "without a heartbeat before it is reclaimed and retried"
        ),
    )
    sweep.add_argument(
        "--objectives",
        metavar="A,B,C",
        default=None,
        help=(
            "for sweep analyze: comma-separated metrics to minimize "
            "(default energy_kwh,sla_violations,migrations)"
        ),
    )
    sweep.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead of tables"
    )
    sweep.add_argument(
        "--policy",
        action="append",
        default=[],
        metavar="KIND=NAME",
        help=(
            "force a policy selection across every cell of the grid "
            "(repeatable), e.g. --policy placement=best-fit"
        ),
    )
    sweep.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override the simulated duration of every run (seconds)",
    )
    sweep.add_argument("--output", metavar="PATH", help="also write the JSON report to PATH")
    sweep.add_argument("--csv", metavar="PATH", help="also write the CSV report to PATH")

    megafleet = subparsers.add_parser(
        "megafleet", help="list and run warehouse-scale fleets (sharded lockstep engine)"
    )
    megafleet.add_argument("action", choices=["list", "run"], help="what to do")
    megafleet.add_argument("name", nargs="?", help="fleet name (for run)")
    megafleet.add_argument("--seed", type=int, default=0, help="random seed")
    megafleet.add_argument(
        "--shards",
        type=int,
        default=1,
        help="lockstep shards (results are identical for any count)",
    )
    megafleet.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes advancing the shards (default 1 = serial)",
    )
    megafleet.add_argument(
        "--duration", type=float, default=None, help="override the simulated duration (seconds)"
    )
    megafleet.add_argument(
        "--json", action="store_true", help="emit the canonical JSON result instead of tables"
    )
    return parser


# ---------------------------------------------------------------- consolidate
def _run_consolidate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    distribution = make_distribution(args.distribution, dimensions=("cpu", "memory"))
    demands, capacities = consolidation_instance(
        args.vms, rng, demand_distribution=distribution, host_capacity=(1.0, 1.0)
    )
    table = ComparisonTable(f"Consolidation comparison ({args.vms} VMs, seed {args.seed})")
    algorithms = [
        FirstFitDecreasing(),
        BestFitDecreasing(),
        ACOConsolidation(
            ACOParameters(n_ants=args.ants, n_cycles=args.cycles),
            # A spawned child of the workload seed: decorrelated from the
            # instance stream without seed+1 arithmetic.
            rng=spawn_generator(args.seed, 1),
        ),
    ]
    if args.optimal:
        algorithms.append(BranchAndBoundOptimal())
    for algorithm in algorithms:
        result = algorithm.solve(demands, capacities)
        table.add_row(
            algorithm=result.algorithm,
            hosts_used=result.hosts_used,
            utilization=round(result.placement.average_utilization(), 4),
            runtime_s=round(result.runtime_seconds, 4),
            optimal=result.proved_optimal,
        )
    table.print()
    return 0


# ------------------------------------------------------------------- simulate
def _run_simulate(args: argparse.Namespace) -> int:
    config = HierarchyConfig(seed=args.seed)
    config.power_manager.enabled = args.energy
    system = SnoozeSystem(
        SystemSpec(local_controllers=args.lcs, group_managers=args.gms),
        config=config,
        seed=args.seed,
    )
    system.start()
    generator = WorkloadGenerator(
        UniformDemandDistribution(0.1, 0.4), BatchArrival(0.0)
    )
    requests = generator.generate(args.vms, np.random.default_rng(args.seed))
    system.submit_requests(requests)
    if args.kill_leader:
        system.run(args.duration / 2)
        killed = system.kill_group_leader()
        print(f"[t={system.sim.now:.1f}s] injected Group Leader failure: {killed}")
        system.run(args.duration / 2)
    else:
        system.run(args.duration)
    stats = system.stats()
    table = ComparisonTable("Deployment statistics")
    for key, value in stats.items():
        if key == "network":
            continue
        table.add_row(metric=key, value=value)
    table.print()
    report = system.energy_report()
    print(
        f"Energy: {report.total_energy_kwh:.3f} kWh over {report.horizon_seconds / 3600:.2f} h "
        f"(avg {report.average_power_watts():.0f} W)"
    )
    return 0


# ------------------------------------------------------------------ hierarchy
def _render_hierarchy(system: SnoozeSystem) -> str:
    snapshot = system.hierarchy_snapshot()
    lines = [f"Group Leader: {snapshot['leader']}"]
    for gm_name, info in sorted(snapshot["group_managers"].items()):
        marker = " (leader)" if info.get("is_leader") else ""
        lines.append(f"  GM {gm_name}{marker} [{info['state']}]")
        for lc_name in info.get("local_controllers", []):
            lc = system.local_controllers[lc_name]
            lines.append(
                f"    LC {lc_name} node={lc.node.node_id} vms={lc.node.vm_count} "
                f"util={lc.node.utilization():.2f}"
            )
    return "\n".join(lines)


def _run_hierarchy(args: argparse.Namespace) -> int:
    system = SnoozeSystem(
        SystemSpec(local_controllers=args.lcs, group_managers=args.gms), seed=args.seed
    )
    system.start()
    print(_render_hierarchy(system))
    return 0


# --------------------------------------------------------------------- policy
def _run_policy(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.action == "list":
        if args.name is not None:
            parser.error("policy list takes at most a kind filter (did you mean describe?)")
        try:
            specs = list(iter_policy_specs(args.kind))
        except ValueError as exc:  # unknown kind filter
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps([spec.describe() for spec in specs], indent=2))
            return 0
        title = f"Policy registry ({args.kind})" if args.kind else "Policy registry"
        table = ComparisonTable(title)
        for spec in specs:
            table.add_row(
                kind=spec.kind,
                name=spec.name,
                params=", ".join(spec.param_names()) or "-",
                description=spec.description,
            )
        table.print()
        return 0

    # describe
    if args.kind is None or args.name is None:
        parser.error("policy describe requires a policy kind and a policy name")
    try:
        spec = get_policy_spec(args.kind, args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(spec.describe(), indent=2, sort_keys=True))
        return 0
    print(f"{spec.kind} / {spec.name}\n  {spec.description}")
    if not spec.params:
        print("  (no parameters)")
        return 0
    table = ComparisonTable("parameters")
    for param in spec.params:
        info = param.describe()
        table.add_row(
            param=info["name"],
            required=info["required"],
            default="-" if info["required"] else repr(info.get("default")),
            runtime=bool(info.get("runtime", False)),
        )
    table.print()
    return 0


def _parse_policy_overrides(overrides: List[str]) -> dict:
    """Parse repeated ``--policy kind=name`` flags into a spec ``policies`` block."""
    policies = {}
    for override in overrides:
        kind, separator, name = override.partition("=")
        if not separator or not kind or not name:
            raise ValueError(
                f"--policy expects KIND=NAME (e.g. placement=best-fit), got {override!r}"
            )
        policies[kind.strip()] = {"name": name.strip()}
    return policies


def _apply_policy_overrides(spec, overrides: dict):
    """A copy of ``spec`` with ``--policy`` overrides applied (validated)."""
    if not overrides:
        return spec
    return ScenarioSpec.from_dict(
        {**spec.to_dict(), "policies": merge_policy_selections(spec.policies, overrides)}
    )


# ---------------------------------------------------------------------- sweep
def _sweep_with_overrides(spec: SweepSpec, overrides: dict, duration) -> SweepSpec:
    """A copy of ``spec`` with ``--policy``/``--duration`` overrides applied.

    A ``--policy kind=name`` override forces that selection in *every* policy
    cell of the grid (cells already selecting that name keep their tuned
    parameters).  The result is revalidated through ``SweepSpec.from_dict``.
    """
    if not overrides and duration is None:
        return spec
    data = spec.to_dict()
    if overrides:
        cells = [merge_policy_selections(cell, overrides) for cell in data["policies"]]
        # Forcing one selection can collapse distinct cells into duplicates;
        # keep the first of each so the grid never re-runs identical cells.
        unique, seen = [], set()
        for cell in cells:
            key = json.dumps(cell, sort_keys=True)
            if key not in seen:
                seen.add(key)
                unique.append(cell)
        data["policies"] = unique
    if duration is not None:
        data["duration"] = duration
    return SweepSpec.from_dict(data)


def _emit_sweep_report(report, args: argparse.Namespace, backend: str) -> int:
    """Shared tail of ``sweep run``/``sweep serve``: print, write files, exit code."""
    if args.json:
        print(report.to_json())
    else:
        print(f"Sweep: {report.spec.name} ({report.total_runs} runs, {backend})")
        table = ComparisonTable("aggregates (mean over seeds)")
        for group in report.aggregates():
            metrics = group["metrics"]
            table.add_row(
                scenario=group["scenario"],
                policies=group["policies"],
                thresholds=group["thresholds"],
                runs=group["runs"],
                failed=group["failed"],
                energy_kwh=round(metrics.get("energy_kwh", {}).get("mean", 0.0), 4),
                migrations=round(metrics.get("migrations", {}).get("mean", 0.0), 2),
                sla_violations=round(metrics.get("sla_violations", {}).get("mean", 0.0), 2),
                mean_active_hosts=round(
                    metrics.get("mean_active_hosts", {}).get("mean", 0.0), 3
                ),
            )
        table.print()
        total = report.timing.get("wall_seconds_total")
        if total is not None:
            print(f"Wall clock: {total:.2f}s ({backend})")
    # File writes come after the report has been printed: an unwritable path
    # must not discard a grid that just spent the wall-clock to compute.
    write_error = False
    for path, render in ((args.output, lambda: report.to_json() + "\n"), (args.csv, report.to_csv)):
        if not path:
            continue
        try:
            with open(path, "w") as handle:
                handle.write(render())
        except OSError as exc:
            print(f"error: cannot write {path}: {exc}", file=sys.stderr)
            write_error = True
    if report.failed:
        for failure in report.failures():
            print(
                f"error: run {failure['index']} ({failure['scenario']}, "
                f"{failure['policies']}): {failure['error']}",
                file=sys.stderr,
            )
        return 1
    return 1 if write_error else 0


def _run_sweep_serve(spec: SweepSpec, args: argparse.Namespace) -> int:
    """Serve ``spec`` to work-pulling runners, then report like ``sweep run``."""
    from repro.sweeps.distributed import SweepAborted, SweepCoordinator, collect_outcomes

    payloads = [run.to_dict() for run in spec.expand()]
    coordinator = SweepCoordinator(
        payloads, host=args.host, port=args.port, lease_seconds=args.lease_seconds
    )

    def on_bound(address) -> None:
        host, port = address
        # Status goes to stderr so --json keeps machine-readable stdout.
        print(
            f"serving sweep {spec.name!r} ({len(payloads)} runs) on {host}:{port} -- "
            f"connect runners with: repro-sim sweep work --connect {host}:{port}",
            file=sys.stderr,
        )
        if args.port_file:
            with open(args.port_file, "w") as handle:
                handle.write(f"{port}\n")

    start = time.perf_counter()
    try:
        outcomes = collect_outcomes(coordinator, on_bound=on_bound)
    except SweepAborted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    report = SweepReport.from_outcomes(
        spec, outcomes, jobs=0, wall_seconds=time.perf_counter() - start
    )
    return _emit_sweep_report(report, args, backend="runner fleet")


def _run_sweep_work(args: argparse.Namespace) -> int:
    """Join a coordinator as one work-pulling runner."""
    from repro.sweeps.runner import SweepRunner, parse_address

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        runner = SweepRunner(host, port)
        posted = runner.run()
    except OSError as exc:
        print(f"error: cannot reach coordinator at {args.connect}: {exc}", file=sys.stderr)
        return 1
    print(f"runner {runner.runner_id}: posted {posted} outcome(s)", file=sys.stderr)
    return 0


def _run_sweep_analyze(args: argparse.Namespace) -> int:
    """Pareto-front analysis of a ``sweep run --output`` report file."""
    from repro.sweeps.report import PARETO_OBJECTIVES, analyze_report, pareto_csv, pareto_json

    try:
        with open(args.name, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read report {args.name!r}: {exc}", file=sys.stderr)
        return 1
    objectives = (
        tuple(part.strip() for part in args.objectives.split(",") if part.strip())
        if args.objectives
        else PARETO_OBJECTIVES
    )
    try:
        analysis = analyze_report(report, objectives=objectives)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(pareto_json(analysis))
    else:
        print(f"Pareto analysis: {analysis['sweep']} (minimizing {', '.join(objectives)})")
        for scenario in sorted(analysis["scenarios"]):
            entry = analysis["scenarios"][scenario]
            table = ComparisonTable(f"{scenario}: non-dominated fronts")
            for cell in entry["cells"]:
                table.add_row(
                    rank="-" if cell["rank"] is None else cell["rank"],
                    policies=cell["policies"],
                    thresholds=cell["thresholds"],
                    **{
                        name: round(value, 4)
                        for name, value in cell["objectives"].items()
                    },
                )
            table.print()
            front = ", ".join(
                f"{cell['policies']} @ {cell['thresholds']}" for cell in entry["front"]
            )
            print(f"  front: {front}")
    write_error = False
    for path, render in (
        (args.output, lambda: pareto_json(analysis) + "\n"),
        (args.csv, lambda: pareto_csv(analysis)),
    ):
        if not path:
            continue
        try:
            with open(path, "w") as handle:
                handle.write(render())
        except OSError as exc:
            print(f"error: cannot write {path}: {exc}", file=sys.stderr)
            write_error = True
    return 1 if write_error else 0


def _run_sweep_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    # Action-specific flags must not silently no-op elsewhere.
    if args.action not in ("run", "serve", "analyze"):
        if args.output:
            parser.error("--output only applies to sweep run/serve/analyze")
        if args.csv:
            parser.error("--csv only applies to sweep run/serve/analyze")
    if args.action != "run":
        if args.jobs is not None:
            parser.error("--jobs only applies to sweep run")
        if args.runners is not None:
            parser.error("--runners only applies to sweep run")
    if args.action != "work" and args.connect:
        parser.error("--connect only applies to sweep work")
    if args.action != "serve" and args.port_file:
        parser.error("--port-file only applies to sweep serve")
    if args.action != "analyze" and args.objectives:
        parser.error("--objectives only applies to sweep analyze")

    if args.action == "work":
        if args.connect is None:
            parser.error("sweep work requires --connect HOST:PORT")
        return _run_sweep_work(args)
    if args.action == "analyze":
        if args.name is None:
            parser.error("sweep analyze requires a report JSON path")
        return _run_sweep_analyze(args)

    if args.action == "list":
        if args.policy:
            parser.error("--policy only applies to sweep run/serve/describe")
        if args.duration is not None:
            parser.error("--duration only applies to sweep run/serve/describe")
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "name": spec.name,
                            "description": spec.description,
                            "scenarios": spec.scenarios,
                            "runs": spec.total_runs(),
                        }
                        for spec in iter_sweeps()
                    ],
                    indent=2,
                )
            )
            return 0
        table = ComparisonTable("Sweep catalog")
        for spec in iter_sweeps():
            table.add_row(
                name=spec.name,
                scenarios=len(spec.scenarios),
                policy_cells=len(spec.policies),
                thresholds=len(spec.thresholds),
                seeds=len(spec.resolved_seeds()),
                runs=spec.total_runs(),
                description=spec.description,
            )
        table.print()
        return 0

    if args.name is None:
        parser.error(f"sweep {args.action} requires a sweep name")
    jobs = 1 if args.jobs is None else args.jobs
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.runners is not None:
        if args.runners < 1:
            parser.error("--runners must be >= 1")
        if args.jobs is not None:
            parser.error("pass either --jobs or --runners, not both")
    try:
        spec = get_sweep(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    try:
        spec = _sweep_with_overrides(
            spec, _parse_policy_overrides(args.policy), args.duration
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.action == "describe":
        description = dict(spec.to_dict())
        description["runs"] = spec.total_runs()
        print(json.dumps(description, indent=2, sort_keys=True))
        return 0

    if args.action == "serve":
        return _run_sweep_serve(spec, args)

    if args.runners is not None:
        from repro.sweeps.distributed import DistributedExecutor, SweepAborted

        executor = DistributedExecutor(
            runners=args.runners, lease_seconds=args.lease_seconds
        )
        try:
            report = run_sweep(spec, executor=executor)
        except SweepAborted as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return _emit_sweep_report(report, args, backend=f"runners={args.runners}")

    report = run_sweep(spec, jobs=jobs)
    return _emit_sweep_report(report, args, backend=f"jobs={report.timing.get('jobs', jobs)}")


# ------------------------------------------------------------------- scenario
def _force_observability(spec: ScenarioSpec, tracing: bool, metrics: bool) -> ScenarioSpec:
    """Turn on the pillars the requested exports need (spec overrides kept)."""
    if not tracing and not metrics:
        return spec
    current = spec.config.get("observability") or {}
    if hasattr(current, "to_dict"):  # tolerate a pre-built ObservabilityConfig
        current = current.to_dict()
    overrides = dict(current)
    if tracing:
        overrides["tracing"] = True
    if metrics:
        overrides["metrics"] = True
    data = spec.to_dict()
    data["config"] = dict(data["config"])
    data["config"]["observability"] = overrides
    return ScenarioSpec.from_dict(data)


def _write_observability_exports(system, trace: Optional[str], metrics_out: Optional[str]) -> None:
    """Write the requested trace/metrics exports after a scenario run."""
    if system is None or system.obs is None:
        return
    if trace:
        with open(trace, "w", encoding="utf-8") as handle:
            json.dump(system.obs.chrome_trace(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        # Status notes go to stderr so --json keeps machine-readable stdout.
        print(f"trace written to {trace}", file=sys.stderr)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            if metrics_out.endswith(".prom"):
                handle.write(system.obs.metrics_text())
            else:
                json.dump(system.obs.metrics_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        print(f"metrics written to {metrics_out}", file=sys.stderr)


def _run_obs(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Summarize a Chrome trace-event JSON file (``obs summarize <path>``)."""
    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return 1
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else []
    tracks = {}
    spans = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[event.get("tid")] = event.get("args", {}).get("name", "?")
        elif event.get("ph") == "X":
            entry = spans.setdefault(
                event.get("name", "?"),
                {"count": 0, "total_ms": 0.0, "max_ms": 0.0, "components": set()},
            )
            duration_ms = float(event.get("dur", 0)) / 1000.0
            entry["count"] += 1
            entry["total_ms"] += duration_ms
            entry["max_ms"] = max(entry["max_ms"], duration_ms)
            entry["components"].add(tracks.get(event.get("tid"), "?"))
    summary = {
        "events": sum(entry["count"] for entry in spans.values()),
        "tracks": len(tracks),
        "spans": {
            name: {
                "count": entry["count"],
                "total_ms": round(entry["total_ms"], 3),
                "max_ms": round(entry["max_ms"], 3),
                "components": len(entry["components"]),
            }
            for name, entry in sorted(spans.items())
        },
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"Trace: {args.path}")
    print(f"  {summary['events']} spans across {summary['tracks']} tracks")
    table = ComparisonTable("spans (simulated milliseconds)")
    for name, entry in summary["spans"].items():
        table.add_row(
            span=name,
            count=entry["count"],
            total_ms=entry["total_ms"],
            max_ms=entry["max_ms"],
            components=entry["components"],
        )
    table.print()
    return 0


def _run_scenario(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.action == "list" and args.policy:
        parser.error("--policy only applies to scenario run/describe")
    if args.action == "list":
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "name": spec.name,
                            "description": spec.description,
                            "duration": spec.duration,
                            "local_controllers": spec.local_controllers,
                            "vms": spec.total_vms(),
                            "timeline_events": len(spec.timeline),
                        }
                        for spec in iter_scenarios()
                    ],
                    indent=2,
                )
            )
            return 0
        table = ComparisonTable("Scenario catalog")
        for spec in iter_scenarios():
            table.add_row(
                name=spec.name,
                lcs=spec.local_controllers,
                vms=spec.total_vms(),
                duration_s=spec.duration,
                events=len(spec.timeline),
                description=spec.description,
            )
        table.print()
        return 0

    if args.name is None:
        parser.error(f"scenario {args.action} requires a scenario name")
    try:
        spec = get_scenario(args.name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1

    if args.action == "describe":
        try:
            spec = _apply_policy_overrides(spec, _parse_policy_overrides(args.policy))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=args.json))
        return 0

    try:
        spec = _apply_policy_overrides(spec, _parse_policy_overrides(args.policy))
        spec = _force_observability(spec, tracing=bool(args.trace), metrics=bool(args.metrics_out))
        runner = ScenarioRunner(spec, seed=args.seed, duration=args.duration)
        result = runner.run()
    except ValueError as exc:
        # Bad overrides (non-positive duration, negative seed, unknown policy
        # names, ...) are user errors, not crashes.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _write_observability_exports(runner.system, trace=args.trace, metrics_out=args.metrics_out)
    if args.json:
        print(result.to_json())
        return 0
    print(f"Scenario: {spec.name} (seed {args.seed})\n  {spec.description}")
    for section in ("submissions", "churn", "packing", "energy", "availability"):
        table = ComparisonTable(section)
        for key, value in getattr(result, section).items():
            table.add_row(metric=key, value=value)
        table.print()
    if result.traffic:
        # The traffic summary nests per-service dicts; flatten the fleet view
        # into one table and give each service its own.
        table = ComparisonTable("traffic")
        table.add_row(metric="ticks", value=result.traffic["ticks"])
        for key, value in result.traffic["requests"].items():
            table.add_row(metric=key, value=value)
        for key, value in result.traffic["latency_seconds"].items():
            table.add_row(metric=f"latency_{key}_seconds", value=value)
        table.print()
        for name, service in sorted(result.traffic["services"].items()):
            table = ComparisonTable(f"traffic/{name}")
            for key, value in service.items():
                table.add_row(metric=key, value="-" if value is None else value)
            table.print()
    return 0


def _run_megafleet_command(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.action == "list":
        specs = [get_megafleet(name) for name in megafleet_names()]
        if args.json:
            print(json.dumps([spec.to_dict() for spec in specs], indent=2))
            return 0
        table = ComparisonTable("Megafleet catalog")
        for spec in specs:
            table.add_row(
                name=spec.name,
                lcs=spec.local_controllers,
                gms=spec.group_managers,
                duration_s=spec.duration,
                epoch_s=spec.epoch,
                description=spec.description,
            )
        table.print()
        return 0

    if args.name is None:
        parser.error("megafleet run requires a fleet name")
    try:
        result = run_megafleet(
            args.name,
            seed=args.seed,
            shards=args.shards,
            jobs=args.jobs,
            duration=args.duration,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 1
    if args.json:
        print(result.canonical_json(), end="")
        return 0
    table = ComparisonTable(f"Megafleet {args.name} (seed {args.seed})")
    for key, value in result.totals.items():
        table.add_row(metric=key, value=value)
    table.add_row(metric="wall_seconds", value=round(result.wall_seconds, 3))
    table.add_row(metric="events_per_second", value=round(result.events_per_second))
    table.print()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "consolidate":
        return _run_consolidate(args)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "hierarchy":
        return _run_hierarchy(args)
    if args.command == "scenario":
        return _run_scenario(args, parser)
    if args.command == "policy":
        return _run_policy(args, parser)
    if args.command == "obs":
        return _run_obs(args, parser)
    if args.command == "sweep":
        return _run_sweep_command(args, parser)
    if args.command == "megafleet":
        return _run_megafleet_command(args, parser)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
