"""Declarative traffic specifications (the ``traffic`` section of a scenario).

A :class:`TrafficSpec` declares the request-serving side of a scenario: one or
more :class:`ServiceSpec` entries, each a named replica group of identical VMs
serving an offered request stream.  Everything is plain data and round-trips
losslessly through ``to_dict`` / ``from_dict`` (and therefore JSON), exactly
like the rest of :class:`~repro.scenarios.spec.ScenarioSpec`.

Validation happens at construction: profiles compile through
:func:`~repro.traffic.profiles.compile_profile` (bad trace kinds/parameters
fail immediately) and autoscaling selections validate against the policy
registry with the same error messages as every other policy kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.policies.registry import validate_policy_selection
from repro.traffic.profiles import compile_profile


@dataclass
class ServiceSpec:
    """One request-serving service: a replica group plus its offered traffic.

    ``service_rate`` is the requests/second one replica sustains at full CPU;
    the traffic plane translates offered load into per-replica utilization
    (driving the existing overload/underload machinery) and into M/M/c
    latency/drop metrics.  ``replica`` is the resource reservation of each
    replica VM as ``{dimension: fraction}``.
    """

    name: str
    #: Offered-rate profile: ``{"kind": <trace kind>, "peak_rps": ..., **params}``.
    profile: Dict[str, object] = field(
        default_factory=lambda: {"kind": "constant", "level": 1.0, "peak_rps": 50.0}
    )
    initial_replicas: int = 1
    #: Requests/second one replica serves at full CPU utilization.
    service_rate: float = 100.0
    #: Resource reservation of each replica VM (fractions of a unit host).
    replica: Dict[str, float] = field(
        default_factory=lambda: {"cpu": 0.25, "memory": 0.25, "network": 0.1}
    )
    #: Optional autoscaling selection ``{"name": ..., **params}`` validated
    #: against the ``autoscaling`` policy registry kind; ``None`` keeps the
    #: replica count fixed at ``initial_replicas``.
    autoscaling: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service needs a name")
        if self.initial_replicas < 0:
            raise ValueError("initial_replicas must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if not self.replica:
            raise ValueError("replica reservation must be non-empty")
        for dimension, fraction in self.replica.items():
            if not (0.0 < float(fraction) <= 1.0):
                raise ValueError(
                    f"replica reservation {dimension!r} must be in (0, 1], got {fraction}"
                )
        # Compile once so a bad profile fails at spec construction, not
        # mid-run; the result is discarded (profiles are rebuilt per run from
        # the run's own named stream).
        compile_profile(self.profile, np.random.default_rng(0))
        if self.autoscaling is not None:
            validate_policy_selection("autoscaling", self.autoscaling)

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        data = {
            "name": self.name,
            "profile": dict(self.profile),
            "initial_replicas": self.initial_replicas,
            "service_rate": self.service_rate,
            "replica": dict(self.replica),
        }
        if self.autoscaling is not None:
            data["autoscaling"] = dict(self.autoscaling)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            profile=dict(data.get("profile", {"kind": "constant", "level": 1.0, "peak_rps": 50.0})),
            initial_replicas=int(data.get("initial_replicas", 1)),
            service_rate=float(data.get("service_rate", 100.0)),
            replica=dict(data.get("replica", {"cpu": 0.25, "memory": 0.25, "network": 0.1})),
            autoscaling=(
                dict(data["autoscaling"]) if data.get("autoscaling") is not None else None
            ),
        )


@dataclass
class TrafficSpec:
    """The request-traffic section of a scenario: services plus plane cadence."""

    services: List[ServiceSpec] = field(default_factory=list)
    #: Traffic-tick interval in simulated seconds (queue evaluation cadence).
    interval: float = 10.0
    #: Autoscaling decision cadence (a multiple of ``interval`` keeps both
    #: ticks on one coalesced grid, but any positive value is allowed).
    autoscale_interval: float = 60.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("traffic interval must be positive")
        if self.autoscale_interval <= 0:
            raise ValueError("autoscale_interval must be positive")
        names = [service.name for service in self.services]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate service names: {sorted(names)}")

    @property
    def enabled(self) -> bool:
        """True when the spec declares at least one service."""
        return bool(self.services)

    def autoscaling_names(self) -> Dict[str, str]:
        """``{service: policy name}`` for services with autoscaling enabled."""
        return {
            service.name: str(service.autoscaling["name"])
            for service in self.services
            if service.autoscaling is not None
        }

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {
            "services": [service.to_dict() for service in self.services],
            "interval": self.interval,
            "autoscale_interval": self.autoscale_interval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficSpec":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dictionaries)."""
        return cls(
            services=[ServiceSpec.from_dict(entry) for entry in data.get("services", [])],
            interval=float(data.get("interval", 10.0)),
            autoscale_interval=float(data.get("autoscale_interval", 60.0)),
        )
