"""Request-level traffic plane: users, SLA metrics and autoscaling.

The Snooze paper manages VMs whose load is a static resource footprint, so
"SLA" is inferred from host utilization.  This package models the *users*
those VMs serve: per-service arrival-rate profiles composed from the
:mod:`repro.workloads` trace vocabulary, an analytic M/M/c queueing/latency
model evaluated per tick over all services at once (no per-request events),
and fleet-level aggregation into served/dropped counts and latency quantiles.

The demand signal feeds back both ways:

* offered load drives replica-VM CPU usage, so the hierarchy's existing
  overload/underload estimation reacts to users, not scripts;
* ``autoscaling`` policies (:mod:`repro.policies.autoscaling`) size each
  service's replica group from its measured traffic, executed through the
  ordinary submission and termination paths.

Declare traffic in a scenario's ``traffic`` section
(:class:`~repro.traffic.spec.TrafficSpec`); results land in the deterministic
``traffic`` summary of every :class:`~repro.scenarios.runner.ScenarioResult`.
"""

from repro.traffic.model import (
    DEFAULT_LATENCY_BUCKETS,
    STABILITY_CAP,
    erlang_c,
    evaluate_tick,
    quantile_from_histogram,
    sojourn_cdf,
)
from repro.traffic.plane import TRAFFIC_SERVICE, ServiceLoadTrace, TrafficPlane
from repro.traffic.profiles import RateProfile, compile_profile
from repro.traffic.spec import ServiceSpec, TrafficSpec

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "STABILITY_CAP",
    "RateProfile",
    "ServiceLoadTrace",
    "ServiceSpec",
    "TrafficPlane",
    "TRAFFIC_SERVICE",
    "TrafficSpec",
    "compile_profile",
    "erlang_c",
    "evaluate_tick",
    "quantile_from_histogram",
    "sojourn_cdf",
]
