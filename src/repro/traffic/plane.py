"""The traffic plane: array-backed request traffic over a live deployment.

One :class:`TrafficPlane` rides a wired
:class:`~repro.hierarchy.system.SnoozeSystem` and, on a single coalesced tick
(the PR-4 :class:`~repro.simulation.batch.CoalescedTicker` machinery -- no
per-request events anywhere):

1. evaluates every service's offered arrival rate and its M/M/c queue
   analytically (:mod:`repro.traffic.model`) over aligned numpy arrays,
   accumulating served/dropped counts and latency-histogram mass;
2. feeds the demand signal back into the hierarchy: each service's replicas
   share a :class:`ServiceLoadTrace` whose level is the offered per-replica
   utilization, so VM CPU usage -- and therefore the existing monitoring,
   overload/underload estimation and energy accounting -- follows the users
   instead of a script;
3. executes the service's ``autoscaling`` policy (if any) on its own cadence,
   realizing scale-out through ordinary client submissions and scale-in
   through the Local Controller ``terminate_vm`` path, so autoscaled replicas
   are placed, monitored, relocated and billed like any other VM.

Everything the plane computes is a pure function of the scenario seed:
profiles pre-draw randomness from named streams, the queue math is analytic
and policies are deterministic, so traffic summaries land in the
byte-identical (golden) part of a :class:`~repro.scenarios.runner.ScenarioResult`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.policies.autoscaling import ServiceSnapshot
from repro.policies.registry import instrument_policy, make_policy
from repro.simulation.batch import CoalescedTicker
from repro.traffic.model import (
    DEFAULT_LATENCY_BUCKETS,
    evaluate_tick,
    quantile_from_histogram,
)
from repro.traffic.profiles import compile_profile
from repro.traffic.spec import ServiceSpec, TrafficSpec
from repro.workloads.traces import UtilizationTrace

#: Simulator service name the plane registers under.
TRAFFIC_SERVICE = "traffic"


class ServiceLoadTrace(UtilizationTrace):
    """Replica utilization driven by the traffic plane.

    A step function updated once per traffic tick: between ticks the level is
    constant, so re-sampling any instant stays pure (the trace contract).  All
    replicas of a service share one instance -- per-VM usage memoization makes
    that safe and cheap.
    """

    def __init__(self, level: float = 0.0) -> None:
        self.level = float(level)

    def __call__(self, t: float) -> float:  # noqa: ARG002 - plane-driven, not time-driven
        return self.level


class _Service:
    """Mutable per-service runtime state (aligned with the plane's arrays)."""

    __slots__ = (
        "spec",
        "profile",
        "trace",
        "policy",
        "records",
        "pending",
        "scale_out",
        "scale_in",
        "replicas_peak",
        "last",
    )

    def __init__(self, spec: ServiceSpec, profile, policy) -> None:
        self.spec = spec
        self.profile = profile
        self.trace = ServiceLoadTrace()
        self.policy = policy
        #: Submission records of every replica ever requested, oldest first.
        self.records: List = []
        self.pending = 0
        self.scale_out = 0
        self.scale_in = 0
        self.replicas_peak = 0
        #: Stats of the latest traffic tick (the autoscaler's observation).
        self.last: Dict[str, float] = {
            "arrival_rate": 0.0,
            "utilization": 0.0,
            "p99": 0.0,
            "dropped_ratio": 0.0,
        }

    def live_replicas(self) -> int:
        """Replicas currently placed and occupying resources."""
        return sum(1 for record in self.records if record.placed and record.vm.is_active)


class TrafficPlane:
    """Request traffic, SLA metrics and autoscaling over one deployment."""

    def __init__(self, system, spec: TrafficSpec) -> None:
        self.system = system
        self.spec = spec
        self.sim = system.sim
        self.client = system.client
        self.event_log = system.event_log
        #: node_id -> LC name, for addressing scale-in terminations at the
        #: controller currently hosting a replica (migrations move VMs across
        #: nodes; LCs stay pinned to theirs).
        self._lc_by_node = {
            lc.node.node_id: name for name, lc in system.local_controllers.items()
        }
        self.bucket_bounds = np.asarray(DEFAULT_LATENCY_BUCKETS, dtype=float)
        self.services: List[_Service] = []
        obs = system.obs
        for service_spec in spec.services:
            profile = compile_profile(
                service_spec.profile,
                system.random.stream(f"traffic:{service_spec.name}"),
            )
            policy = None
            if service_spec.autoscaling is not None:
                entry = dict(service_spec.autoscaling)
                policy = make_policy(
                    "autoscaling",
                    str(entry.pop("name")),
                    **entry,
                )
                if obs is not None and obs.registry is not None:
                    instrument_policy(
                        policy, obs.decision_observer("autoscaling", service_spec.name)
                    )
            self.services.append(_Service(service_spec, profile, policy))
        count = len(self.services)
        self._mu = np.array([s.spec.service_rate for s in self.services], dtype=float)
        #: Accumulated totals (requests) and latency mass per service.
        self._offered = np.zeros(count)
        self._served = np.zeros(count)
        self._dropped = np.zeros(count)
        self._latency_weighted = np.zeros(count)  # sum of mean_latency * served
        self._bucket_mass = np.zeros((count, self.bucket_bounds.shape[0] + 1))
        self.ticks = 0
        self._base = 0.0
        self._started = False
        if obs is not None and obs.registry is not None:
            obs.watch_traffic(self)

    # ------------------------------------------------------------------ wiring
    @classmethod
    def attach(cls, system, spec: TrafficSpec) -> "TrafficPlane":
        """Build a plane over ``system`` and register it as a simulator service."""
        plane = cls(system, spec)
        system.sim.register_service(TRAFFIC_SERVICE, plane)
        return plane

    def start(self) -> None:
        """Submit initial replicas and begin ticking (call after system start)."""
        if self._started:
            return
        self._started = True
        self._base = self.sim.now
        for index, service in enumerate(self.services):
            self._scale_out(index, service.spec.initial_replicas, initial=True)
        ticker = CoalescedTicker.shared(self.sim)
        ticker.register(self.spec.interval, self._tick, name="traffic-tick")
        if any(service.policy is not None for service in self.services):
            ticker.register(
                self.spec.autoscale_interval, self._autoscale, name="traffic-autoscale"
            )

    # ------------------------------------------------------------ traffic tick
    def _tick(self) -> None:
        """Evaluate every service's queue for the last interval, analytically."""
        now = self.sim.now
        elapsed = now - self._base
        lam = np.array(
            [service.profile.rate(elapsed) for service in self.services], dtype=float
        )
        live = np.array([service.live_replicas() for service in self.services], dtype=int)
        metrics = evaluate_tick(lam, self._mu, live, self.spec.interval, self.bucket_bounds)
        self._offered += metrics["offered"]
        self._served += metrics["served"]
        self._dropped += metrics["dropped"]
        self._latency_weighted += metrics["mean_latency"] * metrics["served"]
        self._bucket_mass += metrics["bucket_mass"]
        self.ticks += 1
        for index, service in enumerate(self.services):
            # The demand feedback: replicas run as hot as their share of the
            # offered load, so monitoring sees users, not scripts.
            service.trace.level = float(metrics["utilization"][index])
            service.replicas_peak = max(service.replicas_peak, int(live[index]))
            offered = float(metrics["offered"][index])
            service.last = {
                "arrival_rate": float(lam[index]),
                "utilization": float(metrics["utilization"][index]),
                "p99": float(metrics["p99"][index]),
                "dropped_ratio": (
                    float(metrics["dropped"][index]) / offered if offered > 0 else 0.0
                ),
            }

    # -------------------------------------------------------------- autoscaling
    def _autoscale(self) -> None:
        """Run every service's autoscaling policy and realize its decision."""
        for index, service in enumerate(self.services):
            if service.policy is None:
                continue
            live = service.live_replicas()
            snapshot = ServiceSnapshot(
                service=service.spec.name,
                arrival_rate=service.last["arrival_rate"],
                replicas=live,
                pending=service.pending,
                service_rate=service.spec.service_rate,
                utilization=service.last["utilization"],
                p99_latency=service.last["p99"],
                dropped_ratio=service.last["dropped_ratio"],
            )
            desired = int(service.policy.decide(snapshot))
            provisioned = live + service.pending
            if desired > provisioned:
                self._scale_out(index, desired - provisioned)
            elif desired < provisioned:
                self._scale_in(index, provisioned - desired)

    def _scale_out(self, index: int, count: int, initial: bool = False) -> None:
        service = self.services[index]
        if count <= 0:
            return
        dims = tuple(sorted(service.spec.replica))
        values = [float(service.spec.replica[dim]) for dim in dims]
        for _ in range(count):
            vm = VirtualMachine(
                ResourceVector(list(values), dims),
                name=f"{service.spec.name}-replica-{len(service.records)}",
                runtime=None,
                trace=service.trace,
            )
            service.pending += 1
            record = self.client.submit(vm, on_complete=self._make_on_placed(service))
            service.records.append(record)
        if not initial:
            service.scale_out += count
            self.event_log.record(
                self.sim.now, "scale_out", service=service.spec.name, count=count
            )

    def _make_on_placed(self, service: _Service):
        def on_placed(record) -> None:
            service.pending -= 1

        return on_placed

    def _scale_in(self, index: int, count: int) -> None:
        """Terminate up to ``count`` live replicas, newest first.

        In-flight submissions cannot be recalled; only live replicas shrink
        the group, through the same LC ``terminate_vm`` command administrators
        use.  A failed termination (e.g. the hosting LC just died) leaves the
        replica to the next autoscale round.
        """
        service = self.services[index]
        terminated = 0
        for record in reversed(service.records):
            if terminated >= count:
                break
            if not (record.placed and record.vm.is_active):
                continue
            lc_name = self._lc_by_node.get(record.vm.host_id)
            if lc_name is None:
                continue
            self.client.rpc.call(
                lc_name,
                "terminate_vm",
                kwargs={"vm_id": record.vm.vm_id},
                timeout=self.client.config.rpc_timeout,
            )
            terminated += 1
        if terminated:
            service.scale_in += terminated
            self.event_log.record(
                self.sim.now, "scale_in", service=service.spec.name, count=terminated
            )

    # ----------------------------------------------------------------- exports
    def totals(self) -> Dict[str, float]:
        """Fleet-level running totals (mirrored into the metrics registry)."""
        return {
            "offered": float(self._offered.sum()),
            "served": float(self._served.sum()),
            "dropped": float(self._dropped.sum()),
        }

    def fleet_quantile(self, q: float) -> float:
        """Latency quantile of all served requests so far, fleet-wide."""
        return quantile_from_histogram(self.bucket_bounds, self._bucket_mass.sum(axis=0), q)

    def summary(self) -> Dict[str, object]:
        """The deterministic ``traffic`` section of a scenario result."""
        offered = float(self._offered.sum())
        served = float(self._served.sum())
        dropped = float(self._dropped.sum())
        latency_sum = float(self._latency_weighted.sum())
        services: Dict[str, object] = {}
        for index, service in enumerate(self.services):
            service_offered = float(self._offered[index])
            service_served = float(self._served[index])
            mass = self._bucket_mass[index]
            services[service.spec.name] = {
                "offered_requests": round(service_offered, 3),
                "served_requests": round(service_served, 3),
                "dropped_requests": round(float(self._dropped[index]), 3),
                "dropped_ratio": round(
                    float(self._dropped[index]) / service_offered if service_offered > 0 else 0.0,
                    6,
                ),
                "mean_latency_seconds": round(
                    float(self._latency_weighted[index]) / service_served
                    if service_served > 0
                    else 0.0,
                    6,
                ),
                "p50_latency_seconds": round(
                    quantile_from_histogram(self.bucket_bounds, mass, 0.50), 6
                ),
                "p99_latency_seconds": round(
                    quantile_from_histogram(self.bucket_bounds, mass, 0.99), 6
                ),
                "replicas_initial": service.spec.initial_replicas,
                "replicas_final": service.live_replicas(),
                "replicas_peak": service.replicas_peak,
                "scale_out_total": service.scale_out,
                "scale_in_total": service.scale_in,
                "autoscaling": (
                    str(service.spec.autoscaling["name"])
                    if service.spec.autoscaling is not None
                    else None
                ),
            }
        return {
            "interval": self.spec.interval,
            "ticks": self.ticks,
            "requests": {
                "offered": round(offered, 3),
                "served": round(served, 3),
                "dropped": round(dropped, 3),
                "dropped_ratio": round(dropped / offered if offered > 0 else 0.0, 6),
            },
            "latency_seconds": {
                "mean": round(latency_sum / served if served > 0 else 0.0, 6),
                "p50": round(self.fleet_quantile(0.50), 6),
                "p99": round(self.fleet_quantile(0.99), 6),
            },
            "services": services,
        }
