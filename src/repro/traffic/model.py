"""Analytic M/M/c queueing evaluated per tick, vectorized over services.

No per-request events exist anywhere in the simulator: each traffic tick
evaluates every service's queue *analytically* from three arrays -- offered
arrival rate ``lam``, per-replica service rate ``mu`` and replica count ``c``
-- and distributes the tick's served-request mass over a fixed latency
histogram.  The math is the classic M/M/c steady-state pipeline:

1. Erlang-B via the numerically stable recurrence
   ``B(0) = 1;  B(k) = A * B(k-1) / (k + A * B(k-1))`` with offered load
   ``A = lam / mu`` Erlangs;
2. Erlang-C waiting probability ``Pw = B(c) / (1 - rho + rho * B(c))`` with
   ``rho = A / c``;
3. the sojourn time ``T = S + W`` where ``S ~ Exp(mu)`` and ``W`` is
   ``Exp(c*mu - lam)`` with probability ``Pw`` (zero otherwise), whose CDF is
   closed-form, so each tick's served requests land in latency buckets with
   exact analytic mass -- deterministic by construction.

Saturation is handled by admission: arrivals beyond ``STABILITY_CAP`` of the
group capacity ``c * mu`` are *dropped* (the queue would be unstable), and the
latency of the admitted traffic is evaluated at the capped rate.  A service
with zero replicas drops everything.  All functions are pure numpy over
aligned service arrays.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: Admitted load never exceeds this fraction of group capacity ``c * mu``:
#: beyond it the M/M/c queue is (numerically and factually) unstable, so the
#: excess arrival rate counts as dropped requests.
STABILITY_CAP = 0.98

#: Upper bounds (seconds) of the request-latency histogram; an implicit
#: +inf bucket catches the tail.  Log-spaced around typical per-request
#: service times (milliseconds to seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def erlang_c(load: np.ndarray, servers: np.ndarray) -> np.ndarray:
    """Erlang-C waiting probability for offered ``load`` Erlangs on ``servers``.

    Vectorized over aligned arrays; entries with zero servers or zero load
    return 0.  ``load`` must already be admission-capped below ``servers``.
    """
    load = np.asarray(load, dtype=float)
    servers = np.asarray(servers, dtype=int)
    blocking = np.ones_like(load)  # Erlang-B at k = 0
    max_servers = int(servers.max()) if servers.size else 0
    for k in range(1, max_servers + 1):
        update = load * blocking / (k + load * blocking)
        blocking = np.where(servers >= k, update, blocking)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(servers > 0, load / np.maximum(servers, 1), 0.0)
        wait_probability = blocking / (1.0 - rho + rho * blocking)
    wait_probability = np.where((servers > 0) & (load > 0), wait_probability, 0.0)
    return np.clip(wait_probability, 0.0, 1.0)


def sojourn_cdf(
    t: np.ndarray, mu: np.ndarray, drain: np.ndarray, wait_probability: np.ndarray
) -> np.ndarray:
    """CDF of the sojourn time ``T = S + W`` at times ``t`` (broadcast-ready).

    ``S ~ Exp(mu)`` is the service time; ``W`` is ``Exp(drain)`` (the queue
    drain rate ``c * mu - lam``) with probability ``wait_probability`` and
    zero otherwise.  The conditional sum ``S + Exp(drain)`` is
    hypoexponential; the near-equal-rates limit is the Erlang-2 CDF.
    """
    t = np.asarray(t, dtype=float)
    service_cdf = 1.0 - np.exp(-mu * t)
    delta = drain - mu
    close = np.abs(delta) < 1e-9 * np.maximum(mu, 1e-12)
    with np.errstate(divide="ignore", invalid="ignore"):
        hypo = 1.0 - (drain * np.exp(-mu * t) - mu * np.exp(-drain * t)) / np.where(
            close, 1.0, delta
        )
    erlang2 = 1.0 - (1.0 + mu * t) * np.exp(-mu * t)
    waited_cdf = np.where(close, erlang2, hypo)
    return np.clip(
        (1.0 - wait_probability) * service_cdf + wait_probability * waited_cdf, 0.0, 1.0
    )


def evaluate_tick(
    lam: np.ndarray,
    mu: np.ndarray,
    servers: np.ndarray,
    dt: float,
    bucket_bounds: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Evaluate one traffic tick analytically for every service at once.

    Returns aligned arrays: ``offered`` / ``served`` / ``dropped`` request
    counts for the tick, the offered ``utilization`` (clamped to [0, 1]),
    ``mean_latency`` and per-service ``p99`` seconds of the admitted traffic,
    and ``bucket_mass`` of shape ``(services, buckets + 1)`` distributing each
    service's served requests over the latency histogram (last column is the
    +inf tail bucket).
    """
    lam = np.asarray(lam, dtype=float)
    mu = np.asarray(mu, dtype=float)
    servers = np.asarray(servers, dtype=int)
    n = lam.shape[0]
    bounds = np.asarray(bucket_bounds, dtype=float)

    capacity = servers * mu
    admitted = np.minimum(lam, STABILITY_CAP * capacity)
    admitted = np.where((servers > 0) & (mu > 0), admitted, 0.0)
    offered = lam * dt
    served = admitted * dt
    dropped = offered - served

    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = np.where(capacity > 0, lam / capacity, np.where(lam > 0, 1.0, 0.0))
    utilization = np.clip(utilization, 0.0, 1.0)

    load = np.where(mu > 0, admitted / np.maximum(mu, 1e-300), 0.0)
    wait_probability = erlang_c(load, servers)
    drain = np.maximum(capacity - admitted, 1e-12)

    safe_mu = np.maximum(mu, 1e-12)
    mean_latency = np.where(
        admitted > 0, 1.0 / safe_mu + wait_probability / drain, 0.0
    )

    # Served-mass histogram: per-service CDF at every bucket bound, differenced
    # into per-bucket probability, times the tick's served requests.
    cdf = sojourn_cdf(
        bounds[np.newaxis, :],
        safe_mu[:, np.newaxis],
        drain[:, np.newaxis],
        wait_probability[:, np.newaxis],
    )
    cdf = np.where((admitted > 0)[:, np.newaxis], cdf, 0.0)
    full = np.concatenate([np.zeros((n, 1)), cdf, np.ones((n, 1))], axis=1)
    full[admitted <= 0, -1] = 0.0
    probability = np.diff(full, axis=1)
    bucket_mass = probability * served[:, np.newaxis]

    p99 = quantile_from_cdf(bounds, cdf, 0.99)
    p99 = np.where(admitted > 0, p99, 0.0)

    return {
        "offered": offered,
        "served": served,
        "dropped": dropped,
        "utilization": utilization,
        "wait_probability": wait_probability,
        "mean_latency": mean_latency,
        "p99": p99,
        "bucket_mass": bucket_mass,
    }


def quantile_from_cdf(bounds: np.ndarray, cdf: np.ndarray, q: float) -> np.ndarray:
    """Per-service ``q``-quantile from CDF values at the bucket ``bounds``.

    Linear interpolation between bound points; a quantile beyond the last
    finite bound reports that bound (the histogram cannot resolve further).
    """
    bounds = np.asarray(bounds, dtype=float)
    cdf = np.asarray(cdf, dtype=float)
    n = cdf.shape[0]
    result = np.empty(n)
    for i in range(n):
        row = cdf[i]
        j = int(np.searchsorted(row, q, side="left"))
        if j >= row.shape[0]:
            result[i] = bounds[-1]
            continue
        upper_c = row[j]
        lower_c = row[j - 1] if j > 0 else 0.0
        upper_t = bounds[j]
        lower_t = bounds[j - 1] if j > 0 else 0.0
        span = upper_c - lower_c
        if span <= 0:
            result[i] = upper_t
        else:
            result[i] = lower_t + (upper_t - lower_t) * (q - lower_c) / span
    return result


def quantile_from_histogram(bounds: np.ndarray, mass: np.ndarray, q: float) -> float:
    """``q``-quantile of an accumulated latency histogram (one service or fleet).

    ``mass`` has ``len(bounds) + 1`` entries (the last is the +inf tail);
    the quantile interpolates linearly inside its bucket, and a quantile
    landing in the tail reports the last finite bound.
    """
    mass = np.asarray(mass, dtype=float)
    total = mass.sum()
    if total <= 0:
        return 0.0
    cumulative = np.cumsum(mass) / total
    j = int(np.searchsorted(cumulative, q, side="left"))
    bounds = np.asarray(bounds, dtype=float)
    if j >= bounds.shape[0]:
        return float(bounds[-1])
    lower_c = cumulative[j - 1] if j > 0 else 0.0
    lower_t = bounds[j - 1] if j > 0 else 0.0
    span = cumulative[j] - lower_c
    if span <= 0:
        return float(bounds[j])
    return float(lower_t + (bounds[j] - lower_t) * (q - lower_c) / span)
