"""Arrival-rate profiles: request rates composed from workload traces.

A service's offered traffic is a rate function ``rate(t) -> requests/second``.
Rather than invent a second shape vocabulary, a profile *reuses* the
utilization-trace kinds of :mod:`repro.workloads.traces` (``constant``,
``diurnal``, ``randomwalk``, ``bursty``, ``spike``, ``replay``) as a
normalized shape in [0, 1] and scales it by ``peak_rps``:

* ``{"kind": "diurnal", "peak_rps": 400, "base": 0.2, "peak": 1.0, ...}`` --
  day/night user traffic;
* ``{"kind": "spike", "peak_rps": 900, "before": 0.1, "after": 1.0,
  "at": 600}`` -- a flash crowd;
* ``{"kind": "replay", "peak_rps": 250, "times": [...], "values": [...]}`` --
  trace-driven rates from recorded series.

Stochastic shapes pre-draw their randomness from the run's named stream at
construction (the trace-purity contract), so ``rate(t)`` is a pure function
of time and profiles stay byte-identical per seed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.workloads.traces import UtilizationTrace, make_trace_factory


class RateProfile:
    """A request-rate function: a [0, 1] shape trace scaled by ``peak_rps``."""

    def __init__(self, shape: UtilizationTrace, peak_rps: float) -> None:
        if peak_rps < 0:
            raise ValueError("peak_rps must be non-negative")
        self.shape = shape
        self.peak_rps = float(peak_rps)

    def rate(self, t: float) -> float:
        """Offered arrival rate in requests/second at simulated time ``t``."""
        return self.peak_rps * float(self.shape(t))

    def __call__(self, t: float) -> float:
        return self.rate(t)


def compile_profile(params: Dict[str, object], rng: np.random.Generator) -> RateProfile:
    """Build a :class:`RateProfile` from a ``{"kind": ..., "peak_rps": ...}`` dict.

    All keys besides ``peak_rps`` pass through to
    :func:`~repro.workloads.traces.make_trace_factory`, so every registered
    trace kind (and its validation errors) works unchanged.
    """
    if "kind" not in params:
        raise ValueError(f"traffic profile needs a 'kind' key, got {params!r}")
    if "peak_rps" not in params:
        raise ValueError(f"traffic profile needs a 'peak_rps' key, got {params!r}")
    shape_params = {
        key: value for key, value in params.items() if key not in ("kind", "peak_rps")
    }
    factory = make_trace_factory(str(params["kind"]), **shape_params)
    return RateProfile(factory(rng), float(params["peak_rps"]))
