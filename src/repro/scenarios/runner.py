"""Compile a :class:`ScenarioSpec` into a run and collect a structured result.

The runner is the single substrate every scenario goes through:

1. build a :class:`~repro.hierarchy.system.SnoozeSystem` from the spec (cluster
   shape, hierarchy sizing, configuration overrides) and let it settle;
2. generate every workload phase from its own named random stream and schedule
   the submissions at their arrival times;
3. schedule the scripted timeline events (failures, recoveries, leader kills,
   threshold changes);
4. run for the scenario duration and fold the recorders into a
   :class:`ScenarioResult` with energy, SLA, packing, churn and availability
   metrics.

Results are deliberately free of wall-clock quantities so that the same spec
and seed produce byte-identical JSON across runs (the determinism contract the
test suite enforces).
"""

from __future__ import annotations

import copy
import dataclasses
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hierarchy.system import SnoozeSystem
from repro.scenarios.spec import ScenarioSpec, TimelineEvent
from repro.simulation.engine import schedule_series
from repro.traffic.plane import TrafficPlane

#: Priority of scenario submissions relative to timeline events at equal times
#: is resolved by scheduling order, which is deterministic (phases first).

#: The canonicalization schema: every result section that may carry
#: non-deterministic (wall-clock derived) values, mapped to the neutral value
#: :meth:`ScenarioResult.canonical_json` substitutes for it.  Adding a new
#: wall-clock-bearing section means adding it HERE, not patching call sites --
#: the determinism tests iterate this schema.
NONDETERMINISTIC_SECTIONS: Dict[str, object] = {
    "perf": {"wall_clock_seconds": 0.0, "events_per_second": 0.0},
    # The observability section mixes deterministic counts with wall-clock
    # histograms/profiles; it is diagnostic output, not simulated state, so
    # the canonical form drops it wholesale.
    "observability": {},
}


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario run (JSON-safe, wall-clock free)."""

    scenario: str
    seed: int
    duration: float
    #: Submission/SLA view: counts and client-observed latency.
    submissions: Dict[str, float] = field(default_factory=dict)
    #: VM lifecycle churn: departures, failures, still-active counts.
    churn: Dict[str, float] = field(default_factory=dict)
    #: Packing quality: host usage over time (means are time-weighted).
    packing: Dict[str, float] = field(default_factory=dict)
    #: Energy drawn by the infrastructure (computation energy is excluded:
    #: it is charged from wall-clock algorithm runtime and would break
    #: run-to-run determinism).
    energy: Dict[str, float] = field(default_factory=dict)
    #: Hierarchy availability: elections, failures, recoveries, migrations.
    availability: Dict[str, object] = field(default_factory=dict)
    #: Raw event counts by category, for deeper digging.
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: The resolved policy selection the run used (kind -> policy name).
    policies: Dict[str, str] = field(default_factory=dict)
    #: Observed performance of the run itself (wall-clock seconds, simulator
    #: events retired per wall-clock second).  These are the only
    #: non-deterministic fields of a result; golden/determinism comparisons go
    #: through :meth:`canonical_json`, which zeroes them.
    perf: Dict[str, float] = field(default_factory=dict)
    #: Observability plane rollup (metric counters, trace summary, profiler
    #: breakdown) when any pillar is enabled.  Diagnostic output: dropped by
    #: :meth:`canonical_json` (see :data:`NONDETERMINISTIC_SECTIONS`).
    observability: Dict[str, object] = field(default_factory=dict)
    #: Request-traffic summary (served/dropped counts, latency quantiles,
    #: per-service totals and scaling activity) when the scenario declares a
    #: ``traffic`` section.  Fully deterministic -- the queue model is
    #: analytic -- so it is part of :meth:`canonical_json` and the goldens.
    traffic: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-data form (includes the measured ``perf`` section)."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        """JSON form with sorted keys (includes the measured ``perf`` section)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def canonical_json(self, indent: int = 2) -> str:
        """Deterministic JSON: identical runs are byte-identical.

        Every section named in :data:`NONDETERMINISTIC_SECTIONS` is replaced
        by its neutral value (wall-clock quantities vary run to run);
        everything else is simulated state.  Golden fixtures and every
        determinism assertion compare this form.
        """
        data = self.to_dict()
        for section, neutral in NONDETERMINISTIC_SECTIONS.items():
            data[section] = copy.deepcopy(neutral)
        return json.dumps(data, sort_keys=True, indent=indent)


class ScenarioRunner:
    """Run one :class:`ScenarioSpec` against a freshly built deployment."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int = 0,
        duration: Optional[float] = None,
        record_interval: Optional[float] = None,
    ) -> None:
        if duration is not None and duration <= 0:
            raise ValueError("duration override must be positive")
        if duration is not None:
            dropped = spec.timeline_events_after(duration)
            if dropped:
                raise ValueError(
                    f"duration override {duration} would drop {len(dropped)} timeline "
                    f"event(s) (first at t={min(event.at for event in dropped)}); "
                    "shorten the spec's timeline instead"
                )
        self.spec = spec
        self.seed = int(seed)
        self.duration = float(duration) if duration is not None else float(spec.duration)
        self.record_interval = (
            float(record_interval) if record_interval is not None else float(spec.record_interval)
        )
        self.system: Optional[SnoozeSystem] = None
        self.traffic: Optional[TrafficPlane] = None

    # ----------------------------------------------------------------- wiring
    def build_system(self) -> SnoozeSystem:
        """Construct (but do not start) the deployment described by the spec."""
        return SnoozeSystem(
            self.spec.system_spec(),
            config=self.spec.hierarchy_config(self.seed),
            seed=self.seed,
        )

    def _schedule_phases(self, system: SnoozeSystem, base: float) -> None:
        for index, phase in enumerate(self.spec.phases):
            generator = phase.build_generator()
            stream = system.random.stream(f"scenario:{self.spec.name}:phase{index}:{phase.name}")
            # One pending heap entry per phase instead of one per request (a
            # fleet scenario's thousands of pending arrivals otherwise tax
            # every heap operation for the whole run); firing order is
            # identical to pre-scheduling each request.
            schedule_series(
                system.sim,
                [
                    (base + phase.start + request.arrival_time, request.vm)
                    for request in generator.generate(phase.vm_count, stream)
                ],
                system.client.submit,
            )

    def _schedule_timeline(self, system: SnoozeSystem, base: float) -> None:
        for event in self.spec.timeline:
            system.sim.schedule_at(base + event.at, self._apply_event, system, event)

    @staticmethod
    def _apply_event(system: SnoozeSystem, event: TimelineEvent) -> None:
        if event.action == "kill_leader":
            system.kill_group_leader()
        elif event.action == "kill_gm":
            system.kill_group_manager(str(event.params["name"]))
        elif event.action == "kill_lc":
            system.kill_local_controller(str(event.params["name"]))
        elif event.action == "recover":
            system.recover_component(str(event.params["name"]))
        elif event.action == "set_thresholds":
            system.set_thresholds(
                underload=float(event.params["underload"]),
                overload=float(event.params["overload"]),
            )
        else:  # pragma: no cover - spec validation rejects unknown actions
            raise ValueError(f"unknown timeline action {event.action!r}")

    # -------------------------------------------------------------------- run
    def run(self) -> ScenarioResult:
        """Execute the scenario and return its structured result."""
        started = time.perf_counter()
        system = self.build_system()
        self.system = system
        system.start()
        recorder = system.enable_recording(interval=self.record_interval)
        base = system.sim.now
        if self.spec.traffic is not None and self.spec.traffic.enabled:
            # The plane starts at scenario time zero: initial replicas submit
            # through the ordinary client path and ticks join the coalesced
            # grid, so traffic behaviour is part of the deterministic run.
            self.traffic = TrafficPlane.attach(system, self.spec.traffic)
            self.traffic.start()
        self._schedule_phases(system, base)
        self._schedule_timeline(system, base)
        system.run(self.duration)
        recorder.sample_all()
        wall = time.perf_counter() - started
        result = self._collect(system)
        result.perf = {
            "wall_clock_seconds": wall,
            "events_per_second": system.sim.processed_events / wall if wall > 0 else 0.0,
        }
        if system.obs is not None:
            result.observability = system.obs.result_section()
            if system.obs.profiler is not None:
                # Replace the two-number perf view with a real breakdown:
                # wall clock attributed per handler (top 10 by total time).
                result.perf["handlers"] = system.obs.profiler.summary(top=10)["handlers"]
        return result

    def _collect(self, system: SnoozeSystem) -> ScenarioResult:
        client = system.client
        log = system.event_log
        recorder = system.recorder
        active = recorder.series("active_hosts")
        powered = recorder.series("powered_on_hosts")
        running = recorder.series("running_vms")
        energy = system.energy_report()
        horizon = max(energy.horizon_seconds, 1e-9)
        return ScenarioResult(
            scenario=self.spec.name,
            seed=self.seed,
            duration=self.duration,
            submissions={
                "submitted": len(client.records),
                "placed": client.placed_count(),
                "rejected": client.rejected_count(),
                "pending": client.pending_count(),
                "mean_latency_seconds": client.mean_latency(),
            },
            churn={
                "departed": client.departed_count(),
                "failed": client.failed_vm_count(),
                "active_at_end": client.active_vm_count(),
                "departure_events": log.count("vm_departed"),
            },
            packing={
                "nodes": len(system.topology),
                "mean_active_hosts": active.time_weighted_mean(),
                "peak_active_hosts": active.max(),
                "final_active_hosts": float(system.active_host_count()),
                "mean_powered_on_hosts": powered.time_weighted_mean(),
                "final_powered_on_hosts": float(system.powered_on_count()),
                "mean_running_vms": running.time_weighted_mean(),
                "peak_running_vms": running.max(),
            },
            energy={
                "infrastructure_kwh": energy.infrastructure_energy_joules / 3.6e6,
                "transition_kwh": energy.transition_energy_joules / 3.6e6,
                "mean_power_watts": energy.infrastructure_energy_joules / horizon,
            },
            availability={
                "leader_at_end": system.current_leader(),
                "elections": log.count("elected_group_leader"),
                "failures_injected": log.count("failure_injected"),
                "recoveries": log.count("component_recovered"),
                "group_managers_running": sum(
                    1 for gm in system.group_managers.values() if gm.is_running
                ),
                "local_controllers_assigned": system.assigned_lc_count(),
                "migrations_completed": system.migration_executor.stats.completed,
                "relocations": log.count("relocation"),
                "overload_events": log.count("overload_detected"),
                "underload_events": log.count("underload_detected"),
            },
            event_counts={category: log.count(category) for category in log.categories()},
            policies=self._resolved_policy_names(system),
            traffic=self.traffic.summary() if self.traffic is not None else {},
        )

    def _resolved_policy_names(self, system: SnoozeSystem) -> Dict[str, str]:
        """Hierarchy policy names plus the traffic autoscaling selection(s)."""
        names = {
            kind: str(entry["name"])
            for kind, entry in sorted(system.config.resolved_policies().items())
        }
        if self.spec.traffic is not None:
            autoscaling = self.spec.traffic.autoscaling_names()
            if autoscaling:
                selected = sorted(set(autoscaling.values()))
                names["autoscaling"] = (
                    selected[0] if len(selected) == 1 else ",".join(selected)
                )
        return names


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    duration: Optional[float] = None,
    record_interval: Optional[float] = None,
) -> ScenarioResult:
    """One-call convenience wrapper around :class:`ScenarioRunner`."""
    return ScenarioRunner(
        spec, seed=seed, duration=duration, record_interval=record_interval
    ).run()
