"""The named scenario catalog and its registry.

Scenarios register a zero-argument factory under a unique name; the factory
returns a fresh :class:`~repro.scenarios.spec.ScenarioSpec` each call so
callers can mutate their copy freely.  The CLI (``repro-sim scenario``), the
examples and the stress tests all resolve scenarios through this registry.

Catalog sizing note: entries are deliberately small (8-16 hosts, one to two
simulated hours) so that every entry runs in seconds on a laptop; scale knobs
(``local_controllers``, ``duration``, phase ``vm_count``) are plain data, so a
caller can dial any of them up via ``ScenarioSpec.from_dict`` overrides.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.cluster.topology import NodeClass
from repro.scenarios.spec import ScenarioSpec, TimelineEvent, WorkloadPhase

_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(factory: Callable[[], ScenarioSpec]) -> Callable[[], ScenarioSpec]:
    """Register a scenario factory under the name of the spec it produces.

    Usable as a decorator.  The factory is invoked once at registration to
    validate the spec and learn its name; duplicate names are rejected.
    """
    spec = factory()
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = factory
    return factory


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """A fresh spec for ``name``; raises ``KeyError`` with suggestions if unknown."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None
    return factory()


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """Fresh specs for every catalog entry, in name order."""
    for name in scenario_names():
        yield get_scenario(name)


# --------------------------------------------------------------------- catalog
@register_scenario
def _diurnal_datacenter() -> ScenarioSpec:
    """Day/night load with energy management suspending the idle valley."""
    return ScenarioSpec(
        name="diurnal-datacenter",
        description=(
            "A datacenter under compressed day/night load: diurnal CPU traces, "
            "idle-host suspend enabled, so the night valley powers hosts down."
        ),
        duration=7200.0,
        local_controllers=16,
        group_managers=2,
        config={
            "monitoring_interval": 30.0,
            "summary_interval": 30.0,
            "energy_sample_interval": 120.0,
            "power_manager": {
                "enabled": True,
                "idle_time_threshold": 300.0,
                "check_interval": 120.0,
                "min_powered_on_hosts": 2,
            },
        },
        phases=[
            WorkloadPhase(
                name="tenants",
                vm_count=24,
                arrival={"kind": "batch", "at": 0.0},
                demand={"kind": "uniform", "low": 0.15, "high": 0.35},
                trace={
                    "kind": "diurnal",
                    "base": 0.1,
                    "peak": 0.85,
                    "period": 3600.0,
                    "peak_time": 1800.0,
                },
            )
        ],
    )


@register_scenario
def _flash_crowd() -> ScenarioSpec:
    """A quiet cluster hit by a short, sharp burst of short-lived VMs."""
    return ScenarioSpec(
        name="flash-crowd",
        description=(
            "Baseline tenants, then a flash crowd: 40 short-lived VMs arrive "
            "within five minutes and drain away, stressing placement latency."
        ),
        duration=3600.0,
        local_controllers=12,
        group_managers=2,
        phases=[
            WorkloadPhase(
                name="baseline",
                vm_count=8,
                arrival={"kind": "batch", "at": 0.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.5},
            ),
            WorkloadPhase(
                name="crowd",
                vm_count=40,
                start=900.0,
                arrival={"kind": "uniform", "start": 0.0, "window": 300.0},
                demand={"kind": "uniform", "low": 0.05, "high": 0.15},
                trace={"kind": "constant", "level": 0.9},
                lifetime={"kind": "fixed", "seconds": 600.0},
            ),
        ],
    )


@register_scenario
def _steady_churn() -> ScenarioSpec:
    """Continuous arrivals and departures at equilibrium."""
    return ScenarioSpec(
        name="steady-churn",
        description=(
            "Poisson arrivals with exponential lifetimes: the cluster sits in "
            "a churn equilibrium where VMs constantly come and go."
        ),
        duration=3600.0,
        local_controllers=8,
        group_managers=2,
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=60,
                arrival={"kind": "poisson", "rate_per_hour": 240.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": 600.0, "minimum": 60.0},
            )
        ],
    )


@register_scenario
def _rolling_node_failures() -> ScenarioSpec:
    """Local Controllers crash one after another, then come back."""
    return ScenarioSpec(
        name="rolling-node-failures",
        description=(
            "A rolling outage: three Local Controllers fail in sequence "
            "(losing their VMs, paper Section II.E) and later recover."
        ),
        duration=3600.0,
        local_controllers=8,
        group_managers=2,
        phases=[
            WorkloadPhase(
                name="tenants",
                vm_count=16,
                arrival={"kind": "batch", "at": 0.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.6},
            )
        ],
        timeline=[
            TimelineEvent(at=600.0, action="kill_lc", params={"name": "lc-001"}),
            TimelineEvent(at=1200.0, action="kill_lc", params={"name": "lc-002"}),
            TimelineEvent(at=1800.0, action="kill_lc", params={"name": "lc-003"}),
            TimelineEvent(at=2400.0, action="recover", params={"name": "lc-001"}),
            TimelineEvent(at=2700.0, action="recover", params={"name": "lc-002"}),
            TimelineEvent(at=3000.0, action="recover", params={"name": "lc-003"}),
        ],
    )


@register_scenario
def _heterogeneous_fleet() -> ScenarioSpec:
    """Three hardware generations under churn."""
    return ScenarioSpec(
        name="heterogeneous-fleet",
        description=(
            "A mixed fleet (big-memory, standard and efficient nodes) serving "
            "medium-lived VMs; packing must respect per-class capacities."
        ),
        duration=3600.0,
        group_managers=2,
        node_classes=[
            NodeClass(name="bigmem", count=4, capacity=(1.5, 2.0, 1.0), p_idle=200.0, p_max=300.0),
            NodeClass(name="standard", count=8, capacity=(1.0, 1.0, 1.0)),
            NodeClass(
                name="efficient", count=4, capacity=(0.8, 0.8, 1.0), p_idle=120.0, p_max=180.0
            ),
        ],
        phases=[
            WorkloadPhase(
                name="mixed-tenants",
                vm_count=30,
                arrival={"kind": "poisson", "rate_per_hour": 360.0},
                demand={"kind": "correlated", "low": 0.1, "high": 0.5, "rho": 0.7},
                trace={"kind": "constant", "level": 0.8},
                lifetime={"kind": "uniform", "low": 900.0, "high": 2400.0},
            )
        ],
    )


@register_scenario
def _trace_replay() -> ScenarioSpec:
    """Replay an explicit utilization series against relocation thresholds."""
    # A two-peak hour: idle shoulders, a morning spike and an afternoon
    # plateau above the overload threshold (0.85) to trigger relocations.
    times = [float(t) for t in range(0, 3600, 300)]
    values = [0.2, 0.3, 0.5, 0.9, 0.95, 0.6, 0.4, 0.3, 0.7, 0.9, 0.85, 0.4]
    return ScenarioSpec(
        name="trace-replay",
        description=(
            "Every VM replays the same recorded utilization series (looped), "
            "the hook for driving scenarios from real production traces."
        ),
        duration=3600.0,
        local_controllers=8,
        group_managers=2,
        config={"monitoring_interval": 30.0},
        phases=[
            WorkloadPhase(
                name="replayed",
                vm_count=12,
                arrival={"kind": "batch", "at": 0.0},
                demand={"kind": "uniform", "low": 0.2, "high": 0.4},
                trace={"kind": "replay", "times": times, "values": values, "loop": True},
            )
        ],
    )


@register_scenario
def _aco_consolidation_cycle() -> ScenarioSpec:
    """Periodic ACO consolidation running inside the live hierarchy."""
    return ScenarioSpec(
        name="aco-consolidation-cycle",
        description=(
            "Best-fit placement plus periodic ACO-driven reconfiguration: the "
            "paper's consolidation algorithm re-packs moderately loaded hosts "
            "every 15 simulated minutes while churn keeps fragmenting them."
        ),
        duration=3600.0,
        local_controllers=10,
        group_managers=2,
        config={
            "monitoring_interval": 30.0,
            "summary_interval": 30.0,
            "reconfiguration_interval": 900.0,
            "max_migrations_per_round": 6,
        },
        policies={
            "placement": {"name": "best-fit"},
            "reconfiguration": {"name": "aco", "n_ants": 6, "n_cycles": 12},
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=36,
                arrival={"kind": "poisson", "rate_per_hour": 180.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.6},
                lifetime={"kind": "exponential", "mean": 1200.0, "minimum": 120.0},
            )
        ],
    )


@register_scenario
def _consolidation_at_scale() -> ScenarioSpec:
    """Warm-started incremental vectorized ACO consolidating a larger fleet."""
    return ScenarioSpec(
        name="consolidation-at-scale",
        description=(
            "Periodic consolidation on a 48-host fleet driven by the "
            "vectorized ACO: batched ant kernels re-pack only the hosts "
            "whose VM set or load changed since the last plan, warm-started "
            "from the previous plan's persisted pheromone summary."
        ),
        duration=3600.0,
        local_controllers=48,
        group_managers=4,
        config={
            "monitoring_interval": 30.0,
            "summary_interval": 30.0,
            "reconfiguration_interval": 600.0,
            "max_migrations_per_round": 12,
        },
        policies={
            "placement": {"name": "best-fit"},
            "reconfiguration": {
                "name": "aco-vectorized",
                "n_ants": 6,
                "n_cycles": 10,
                "warm_start": True,
                "incremental": True,
            },
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=160,
                arrival={"kind": "poisson", "rate_per_hour": 600.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.6},
                lifetime={"kind": "exponential", "mean": 1500.0, "minimum": 180.0},
            )
        ],
    )


@register_scenario
def _megafleet_steady() -> ScenarioSpec:
    """A 256-host fleet in churn equilibrium, exercising the vectorized hot path."""
    return ScenarioSpec(
        name="megafleet-steady",
        description=(
            "A 256-host fleet under steady Poisson churn on a deterministic "
            "management network: the array-backed telemetry plane, coalesced "
            "ticks/deadlines and batched deliveries keep the event queue flat "
            "at fleet scale."
        ),
        duration=1800.0,
        local_controllers=256,
        group_managers=8,
        nodes_per_rack=32,
        config={
            # Zero jitter/loss so same-instant deliveries coalesce into one
            # simulator event (the batching fast path is only taken on a
            # deterministic network; see Network.batch_delivery).
            "network": {"base_latency": 0.001, "jitter": 0.0, "loss_probability": 0.0},
        },
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=320,
                arrival={"kind": "poisson", "rate_per_hour": 1200.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.3},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": 900.0, "minimum": 60.0},
            )
        ],
    )


@register_scenario
def _megafleet_diurnal() -> ScenarioSpec:
    """A large fleet riding a day/night wave with energy management enabled."""
    return ScenarioSpec(
        name="megafleet-diurnal",
        description=(
            "192 hosts serving long-lived tenants with diurnal CPU traces and "
            "idle-host suspend: large-fleet energy management on the "
            "vectorized telemetry plane."
        ),
        duration=1800.0,
        local_controllers=192,
        group_managers=6,
        nodes_per_rack=32,
        config={
            "network": {"base_latency": 0.001, "jitter": 0.0, "loss_probability": 0.0},
            "monitoring_interval": 30.0,
            "summary_interval": 30.0,
            "energy_sample_interval": 120.0,
            "power_manager": {
                "enabled": True,
                "idle_time_threshold": 300.0,
                "check_interval": 120.0,
                "min_powered_on_hosts": 8,
            },
        },
        phases=[
            WorkloadPhase(
                name="tenants",
                vm_count=240,
                arrival={"kind": "uniform", "start": 0.0, "window": 600.0},
                demand={"kind": "uniform", "low": 0.15, "high": 0.35},
                trace={
                    "kind": "diurnal",
                    "base": 0.1,
                    "peak": 0.85,
                    "period": 1800.0,
                    "peak_time": 900.0,
                },
            )
        ],
    )


@register_scenario
def _steady_users_traffic() -> ScenarioSpec:
    """A fixed replica group serving steady request traffic (no autoscaling)."""
    return ScenarioSpec(
        name="steady-users-traffic",
        description=(
            "Three web replicas serve a constant 240 req/s stream with the "
            "analytic M/M/c latency model on: the SLA baseline every "
            "autoscaling scenario is compared against."
        ),
        duration=1800.0,
        local_controllers=8,
        group_managers=2,
        traffic={
            "services": [
                {
                    "name": "web",
                    "profile": {"kind": "constant", "level": 1.0, "peak_rps": 240.0},
                    "initial_replicas": 3,
                    "service_rate": 100.0,
                }
            ],
            "interval": 10.0,
        },
    )


@register_scenario
def _diurnal_users_autoscale() -> ScenarioSpec:
    """Day/night request traffic with target-utilization replica autoscaling."""
    return ScenarioSpec(
        name="diurnal-users-autoscale",
        description=(
            "A web service riding a compressed day/night demand wave: the "
            "target-utilization autoscaler grows the replica group into the "
            "peak and shrinks it through the valley, via the ordinary "
            "submission and termination paths."
        ),
        duration=3600.0,
        local_controllers=12,
        group_managers=2,
        traffic={
            "services": [
                {
                    "name": "web",
                    "profile": {
                        "kind": "diurnal",
                        "base": 0.15,
                        "peak": 1.0,
                        "period": 1800.0,
                        "peak_time": 900.0,
                        "peak_rps": 450.0,
                    },
                    "initial_replicas": 2,
                    "service_rate": 100.0,
                    "autoscaling": {
                        "name": "target-utilization",
                        "target": 0.6,
                        "min_replicas": 2,
                        "max_replicas": 10,
                    },
                }
            ],
            "interval": 10.0,
            "autoscale_interval": 60.0,
        },
    )


@register_scenario
def _flash_crowd_autoscale() -> ScenarioSpec:
    """A traffic spike against a latency-threshold autoscaler."""
    return ScenarioSpec(
        name="flash-crowd-autoscale",
        description=(
            "A front page goes viral at t=900s: offered load jumps from 90 to "
            "600 req/s against two replicas, and the latency-threshold "
            "autoscaler races the crowd to keep p99 and drops down."
        ),
        duration=2400.0,
        local_controllers=12,
        group_managers=2,
        traffic={
            "services": [
                {
                    "name": "frontpage",
                    "profile": {
                        "kind": "spike",
                        "before": 0.15,
                        "after": 1.0,
                        "at": 900.0,
                        "peak_rps": 600.0,
                    },
                    "initial_replicas": 2,
                    "service_rate": 100.0,
                    "autoscaling": {
                        "name": "latency-threshold",
                        "p99_target": 0.25,
                        "min_replicas": 2,
                        "max_replicas": 12,
                        "step": 2,
                    },
                }
            ],
            "interval": 10.0,
            "autoscale_interval": 30.0,
        },
    )


@register_scenario
def _leader_crash_under_load() -> ScenarioSpec:
    """Kill the Group Leader mid-churn, then tighten thresholds."""
    return ScenarioSpec(
        name="leader-crash-under-load",
        description=(
            "Churn workload with a Group Leader crash mid-run and a scripted "
            "administrator threshold change afterwards; tests self-healing."
        ),
        duration=2700.0,
        local_controllers=12,
        group_managers=3,
        phases=[
            WorkloadPhase(
                name="churn",
                vm_count=24,
                arrival={"kind": "poisson", "rate_per_hour": 120.0},
                demand={"kind": "uniform", "low": 0.1, "high": 0.35},
                trace={"kind": "constant", "level": 0.7},
                lifetime={"kind": "exponential", "mean": 900.0, "minimum": 120.0},
            )
        ],
        timeline=[
            TimelineEvent(at=900.0, action="kill_leader"),
            TimelineEvent(
                at=1800.0, action="set_thresholds", params={"underload": 0.3, "overload": 0.75}
            ),
        ],
    )
