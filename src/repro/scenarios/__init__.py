"""Scenario engine: declarative workload/fault scenarios over Snooze deployments.

The paper evaluates Snooze with a handful of hand-wired experiments; this
package turns "an experiment" into data.  A
:class:`~repro.scenarios.spec.ScenarioSpec` declares the cluster shape
(including heterogeneous :class:`~repro.cluster.topology.NodeClass` fleets),
configuration overrides, workload phases (arrival process x demand
distribution x utilization trace x VM lifetime) and a scripted event timeline;
the :class:`~repro.scenarios.runner.ScenarioRunner` compiles it into a wired
:class:`~repro.hierarchy.system.SnoozeSystem` run and returns a structured,
deterministic :class:`~repro.scenarios.runner.ScenarioResult`.

Catalog
-------

``diurnal-datacenter``
    Compressed day/night diurnal load with idle-host suspend powering down the
    night valley.
``flash-crowd``
    A quiet cluster hit by 40 short-lived VMs arriving within five minutes,
    then draining away.
``steady-churn``
    Poisson arrivals with exponential lifetimes: a continuous-churn
    equilibrium of VM arrivals and departures.
``rolling-node-failures``
    Three Local Controllers crash in sequence (losing their VMs) and later
    recover.
``heterogeneous-fleet``
    Big-memory, standard and efficient node classes serving medium-lived VMs
    under correlated demands.
``trace-replay``
    Every VM replays a recorded utilization series (looped) -- the hook for
    driving scenarios from real production traces.
``leader-crash-under-load``
    A Group Leader crash mid-churn followed by a scripted administrator
    threshold change.
``steady-users-traffic``
    Three fixed web replicas serving constant request traffic through the
    analytic M/M/c latency model -- the autoscaling comparison baseline.
``diurnal-users-autoscale``
    A web service on a day/night demand wave with target-utilization replica
    autoscaling growing into the peak and shrinking through the valley.
``flash-crowd-autoscale``
    Offered load jumps 90 -> 600 req/s mid-run; the latency-threshold
    autoscaler races the crowd to keep p99 and drops down.

Use ``repro-sim scenario list|describe|run`` from the CLI, or::

    from repro.scenarios import get_scenario, run_scenario
    result = run_scenario(get_scenario("steady-churn"), seed=0)
    print(result.to_json())
"""

from repro.scenarios.spec import (
    TIMELINE_ACTIONS,
    ScenarioSpec,
    TimelineEvent,
    WorkloadPhase,
)
from repro.scenarios.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.scenarios.catalog import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "TIMELINE_ACTIONS",
    "ScenarioSpec",
    "WorkloadPhase",
    "TimelineEvent",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "iter_scenarios",
]
