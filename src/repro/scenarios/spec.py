"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serializable description of one
experiment against a Snooze deployment:

* the **cluster shape**: how many Local Controllers, Group Managers and Entry
  Points, optionally a heterogeneous fleet of :class:`NodeClass` slices;
* **configuration overrides** for :class:`~repro.hierarchy.config.HierarchyConfig`
  (thresholds, energy management, intervals);
* a declarative **policies** section selecting the registered policy of every
  kind (placement, dispatching, assignment, relocation, reconfiguration) as
  ``{kind: {"name": ..., **params}}`` entries validated against
  :mod:`repro.policies`;
* **workload phases**: each phase names an arrival process, a demand
  distribution, a per-VM utilization trace and a VM lifetime distribution, all
  as ``{"kind": ..., **params}`` dictionaries compiled through the factories
  in :mod:`repro.workloads`;
* a scripted **event timeline**: component failures and recoveries, Group
  Leader kills and administrator threshold changes at fixed simulated times;
* an optional **traffic** section (:class:`~repro.traffic.spec.TrafficSpec`):
  request-serving services with arrival-rate profiles, per-replica service
  rates and autoscaling policies, evaluated by :mod:`repro.traffic`.

Specs round-trip losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (and therefore through JSON), which is what
makes the catalog listable, diffable and replayable from the CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.topology import ClusterSpec, NodeClass
from repro.energy.power_manager import PowerManagerConfig
from repro.hierarchy.config import HierarchyConfig
from repro.hierarchy.system import SystemSpec
from repro.network.transport import NetworkConfig
from repro.obs import ObservabilityConfig
from repro.policies.registry import validate_policy_selection
from repro.policies.thresholds import UtilizationThresholds
from repro.traffic.spec import TrafficSpec
from repro.workloads.distributions import make_distribution
from repro.workloads.generator import WorkloadGenerator, make_arrival, make_lifetime
from repro.workloads.traces import make_trace_factory

#: Actions a timeline event may script against a running deployment.
TIMELINE_ACTIONS = frozenset(
    {"kill_leader", "kill_gm", "kill_lc", "recover", "set_thresholds"}
)


def _compile_kind(table_name: str, factory, params: Dict[str, object]):
    """Split a ``{"kind": ..., **params}`` dict and run it through ``factory``."""
    if "kind" not in params:
        raise ValueError(f"{table_name} spec needs a 'kind' key, got {params!r}")
    kwargs = {key: value for key, value in params.items() if key != "kind"}
    return factory(str(params["kind"]), **kwargs)


@dataclass
class WorkloadPhase:
    """One workload phase: who arrives when, how big, how busy, how long-lived.

    ``start`` offsets the whole phase relative to scenario time zero (after the
    hierarchy has settled); arrival times produced by the arrival process are
    relative to the phase start.
    """

    name: str
    vm_count: int
    start: float = 0.0
    arrival: Dict[str, object] = field(default_factory=lambda: {"kind": "batch", "at": 0.0})
    demand: Dict[str, object] = field(
        default_factory=lambda: {"kind": "uniform", "low": 0.1, "high": 0.4}
    )
    trace: Dict[str, object] = field(default_factory=lambda: {"kind": "constant", "level": 1.0})
    lifetime: Dict[str, object] = field(default_factory=lambda: {"kind": "infinite"})

    def __post_init__(self) -> None:
        if self.vm_count < 0:
            raise ValueError("vm_count must be non-negative")
        if self.start < 0:
            raise ValueError("phase start must be non-negative")
        # Compile once now so a bad kind/parameter fails at spec construction,
        # not mid-run; the result is discarded (generators are rebuilt per run).
        self.build_generator()

    def build_generator(self) -> WorkloadGenerator:
        """Compile the declarative pieces into a :class:`WorkloadGenerator`."""
        trace_factory = _compile_kind("trace", make_trace_factory, self.trace)
        # Probe the trace factory so bad trace parameters surface immediately.
        trace_factory(np.random.default_rng(0))
        return WorkloadGenerator(
            demand_distribution=_compile_kind(
                "demand", lambda kind, **kw: make_distribution(kind, **kw), self.demand
            ),
            arrival_process=_compile_kind("arrival", make_arrival, self.arrival),
            trace_factory=trace_factory,
            lifetime_distribution=_compile_kind("lifetime", make_lifetime, self.lifetime),
        )

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {
            "name": self.name,
            "vm_count": self.vm_count,
            "start": self.start,
            "arrival": dict(self.arrival),
            "demand": dict(self.demand),
            "trace": dict(self.trace),
            "lifetime": dict(self.lifetime),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadPhase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            vm_count=int(data["vm_count"]),
            start=float(data.get("start", 0.0)),
            arrival=dict(data.get("arrival", {"kind": "batch", "at": 0.0})),
            demand=dict(data.get("demand", {"kind": "uniform", "low": 0.1, "high": 0.4})),
            trace=dict(data.get("trace", {"kind": "constant", "level": 1.0})),
            lifetime=dict(data.get("lifetime", {"kind": "infinite"})),
        )


@dataclass
class TimelineEvent:
    """A scripted action against the running deployment at simulated time ``at``.

    Actions and their parameters:

    * ``kill_leader`` -- crash whichever Group Manager currently leads.
    * ``kill_gm`` / ``kill_lc`` -- crash a named component (``{"name": ...}``).
    * ``recover`` -- recover a previously failed component (``{"name": ...}``).
    * ``set_thresholds`` -- administrator threshold change
      (``{"underload": ..., "overload": ...}``).
    """

    at: float
    action: str
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.action not in TIMELINE_ACTIONS:
            raise ValueError(
                f"unknown timeline action {self.action!r}; choose from {sorted(TIMELINE_ACTIONS)}"
            )
        if self.action in ("kill_gm", "kill_lc", "recover") and "name" not in self.params:
            raise ValueError(f"action {self.action!r} needs a 'name' parameter")
        if self.action == "set_thresholds":
            missing = {"underload", "overload"} - set(self.params)
            if missing:
                raise ValueError(f"set_thresholds needs parameters {sorted(missing)}")

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe)."""
        return {"at": self.at, "action": self.action, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "TimelineEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            at=float(data["at"]),
            action=str(data["action"]),
            params=dict(data.get("params", {})),
        )


@dataclass
class ScenarioSpec:
    """A complete declarative scenario (cluster + config + workload + timeline)."""

    name: str
    description: str = ""
    #: Simulated seconds to run after the hierarchy has settled.
    duration: float = 3600.0
    local_controllers: int = 16
    group_managers: int = 2
    entry_points: int = 1
    #: Heterogeneous fleet; empty means a homogeneous cluster of unit hosts.
    #: When given, ``local_controllers`` is forced to the sum of class counts.
    node_classes: List[NodeClass] = field(default_factory=list)
    nodes_per_rack: int = 24
    #: Random +-fraction jitter applied to node capacities (0 = exact).
    heterogeneity: float = 0.0
    #: Flat :class:`HierarchyConfig` overrides; the nested keys ``thresholds``,
    #: ``power_manager``, ``network`` and ``observability`` take parameter
    #: dictionaries.
    config: Dict[str, object] = field(default_factory=dict)
    #: Declarative policy selection: ``{kind: {"name": ..., **params}}``
    #: entries for the registered policy kinds (``placement``,
    #: ``dispatching``, ``assignment``, ``reconfiguration``,
    #: ``overload-relocation``, ``underload-relocation``).  Kinds omitted here
    #: fall back to the deployment defaults; entries are JSON-round-trippable
    #: and validated against the policy registry at construction.
    policies: Dict[str, Dict[str, object]] = field(default_factory=dict)
    phases: List[WorkloadPhase] = field(default_factory=list)
    timeline: List[TimelineEvent] = field(default_factory=list)
    #: Optional request-traffic section (:class:`~repro.traffic.spec.TrafficSpec`
    #: or its dict form): services, rate profiles and autoscaling.  ``None``
    #: runs the scenario without a traffic plane.
    traffic: Optional[TrafficSpec] = None
    #: Sampling interval of the time-series recorder attached to every run.
    record_interval: float = 60.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.record_interval <= 0:
            raise ValueError("record_interval must be positive")
        if self.node_classes:
            self.local_controllers = sum(nc.count for nc in self.node_classes)
        if self.local_controllers <= 0:
            raise ValueError("need at least one local controller")
        for event in self.timeline:
            if event.at > self.duration:
                raise ValueError(
                    f"timeline event at t={event.at} lies beyond duration {self.duration}"
                )
        unknown = set(self.config) - {f.name for f in dataclasses.fields(HierarchyConfig)}
        if unknown:
            raise ValueError(f"unknown HierarchyConfig overrides: {sorted(unknown)}")
        if "seed" in self.config:
            raise ValueError(
                "'seed' cannot be a config override: the run seed is supplied to "
                "ScenarioRunner so one spec can be replayed under many seeds"
            )
        if "policies" in self.config:
            raise ValueError(
                "'policies' cannot be a config override: use the scenario's own "
                "top-level 'policies' section instead"
            )
        for kind, entry in self.policies.items():
            validate_policy_selection(kind, entry)  # unknown kind/name/params -> ValueError
        if isinstance(self.traffic, dict):
            self.traffic = TrafficSpec.from_dict(self.traffic)

    # ------------------------------------------------------------- compilation
    def cluster_spec(self) -> ClusterSpec:
        """The cluster to build for this scenario."""
        return ClusterSpec(
            node_count=self.local_controllers,
            node_classes=list(self.node_classes) or None,
            nodes_per_rack=self.nodes_per_rack,
            heterogeneity=self.heterogeneity,
            name=self.name,
        )

    def system_spec(self) -> SystemSpec:
        """Deployment sizing for :class:`~repro.hierarchy.system.SnoozeSystem`."""
        return SystemSpec(
            local_controllers=self.local_controllers,
            group_managers=self.group_managers,
            entry_points=self.entry_points,
            cluster=self.cluster_spec(),
        )

    def hierarchy_config(self, seed: int) -> HierarchyConfig:
        """Materialize the configuration overrides into a fresh config."""
        kwargs: Dict[str, object] = dict(self.config)
        if "thresholds" in kwargs:
            kwargs["thresholds"] = UtilizationThresholds(**kwargs["thresholds"])
        if "power_manager" in kwargs:
            kwargs["power_manager"] = PowerManagerConfig(**kwargs["power_manager"])
        if "network" in kwargs:
            kwargs["network"] = NetworkConfig(**kwargs["network"])
        if "observability" in kwargs:
            kwargs["observability"] = ObservabilityConfig(**kwargs["observability"])
        if self.policies:
            kwargs["policies"] = {kind: dict(entry) for kind, entry in self.policies.items()}
        kwargs["seed"] = int(seed)
        return HierarchyConfig(**kwargs)

    # ----------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-data form; ``ScenarioSpec.from_dict(spec.to_dict()) == spec``."""
        return {
            "name": self.name,
            "description": self.description,
            "duration": self.duration,
            "local_controllers": self.local_controllers,
            "group_managers": self.group_managers,
            "entry_points": self.entry_points,
            "node_classes": [
                {
                    "name": nc.name,
                    "count": nc.count,
                    "capacity": list(nc.capacity),
                    "p_idle": nc.p_idle,
                    "p_max": nc.p_max,
                }
                for nc in self.node_classes
            ],
            "nodes_per_rack": self.nodes_per_rack,
            "heterogeneity": self.heterogeneity,
            "config": dict(self.config),
            "policies": {kind: dict(entry) for kind, entry in self.policies.items()},
            "phases": [phase.to_dict() for phase in self.phases],
            "timeline": [event.to_dict() for event in self.timeline],
            "traffic": self.traffic.to_dict() if self.traffic is not None else None,
            "record_interval": self.record_interval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded dictionaries)."""
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            duration=float(data.get("duration", 3600.0)),
            local_controllers=int(data.get("local_controllers", 16)),
            group_managers=int(data.get("group_managers", 2)),
            entry_points=int(data.get("entry_points", 1)),
            node_classes=[
                NodeClass(
                    name=str(nc["name"]),
                    count=int(nc["count"]),
                    capacity=tuple(float(v) for v in nc.get("capacity", (1.0, 1.0, 1.0))),
                    p_idle=float(nc.get("p_idle", 170.0)),
                    p_max=float(nc.get("p_max", 250.0)),
                )
                for nc in data.get("node_classes", [])
            ],
            nodes_per_rack=int(data.get("nodes_per_rack", 24)),
            heterogeneity=float(data.get("heterogeneity", 0.0)),
            config=dict(data.get("config", {})),
            policies={
                str(kind): dict(entry)
                for kind, entry in dict(data.get("policies", {})).items()
            },
            phases=[WorkloadPhase.from_dict(phase) for phase in data.get("phases", [])],
            timeline=[TimelineEvent.from_dict(event) for event in data.get("timeline", [])],
            traffic=(
                TrafficSpec.from_dict(data["traffic"])
                if data.get("traffic") is not None
                else None
            ),
            record_interval=float(data.get("record_interval", 60.0)),
        )

    def total_vms(self) -> int:
        """Total VMs submitted across all phases."""
        return sum(phase.vm_count for phase in self.phases)

    def timeline_events_after(self, duration: float) -> List[TimelineEvent]:
        """Timeline events a ``duration`` override would drop (``at > duration``).

        The one definition of "dropped event" shared by every caller that
        validates duration overrides (the runner, the sweep engine, tests).
        """
        return [event for event in self.timeline if event.at > duration]
