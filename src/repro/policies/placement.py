"""Group Manager placement policies (kind ``placement``).

Paper Section II.C: "At the GM level, the actual VM scheduling decisions are
taken. ... Policies of the former type (e.g. round robin or first-fit) are
triggered event-based to place incoming VMs on LCs."

A placement policy chooses one Local Controller host for one VM from a
:class:`~repro.policies.view.ClusterView` snapshot and returns a
:class:`~repro.policies.decisions.PlacementDecision`.  The scoring math is
vectorized over all nodes at once; the view is sorted by node id, so stable
``argmin``/``argmax`` reproduce the historical deterministic tie-breaks.

The legacy ``select(vm, nodes) -> PhysicalNode | None`` entry point is kept as
a convenience wrapper for existing call sites and tests.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.policies.decisions import PlacementDecision
from repro.policies.registry import register_policy
from repro.policies.view import ClusterView


class PlacementPolicy(abc.ABC):
    """Base class: choose a Local Controller host for one VM."""

    kind: str = "placement"
    name: str = "base"

    @abc.abstractmethod
    def decide(self, vm: VirtualMachine, view: ClusterView) -> PlacementDecision:
        """Choose a node from the snapshot for ``vm`` (or explain why none fits)."""

    def select(
        self, vm: VirtualMachine, nodes: Sequence[PhysicalNode]
    ) -> Optional[PhysicalNode]:
        """Legacy entry point: snapshot ``nodes`` and return the chosen node object."""
        view = ClusterView.from_nodes(nodes)
        decision = self.decide(vm, view)
        return view.node_by_id(decision.node_id) if decision.placed else None

    @staticmethod
    def _no_fit() -> PlacementDecision:
        return PlacementDecision(reason="no powered-on node fits the VM")


@register_policy("placement")
class FirstFitPlacement(PlacementPolicy):
    """First LC (in id order) with room -- packs hosts, leaving later ones idle."""

    name = "first-fit"

    def decide(self, vm: VirtualMachine, view: ClusterView) -> PlacementDecision:
        feasible = view.feasible_mask(vm.requested.values)
        hits = np.flatnonzero(feasible)
        if hits.size == 0:
            return self._no_fit()
        return PlacementDecision(node_id=view.node_ids[int(hits[0])])


@register_policy("placement")
class RoundRobinPlacement(PlacementPolicy):
    """Rotate across LCs -- spreads load, the paper's other example policy."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def decide(self, vm: VirtualMachine, view: ClusterView) -> PlacementDecision:
        feasible = np.flatnonzero(view.feasible_mask(vm.requested.values))
        if feasible.size == 0:
            return self._no_fit()
        choice = int(feasible[self._next % feasible.size])
        self._next += 1
        return PlacementDecision(node_id=view.node_ids[choice])


@register_policy("placement")
class BestFitPlacement(PlacementPolicy):
    """LC with the least remaining capacity that still fits the VM (dense packing)."""

    name = "best-fit"

    def decide(self, vm: VirtualMachine, view: ClusterView) -> PlacementDecision:
        demand = vm.requested.values
        feasible = view.feasible_mask(demand)
        if not feasible.any():
            return self._no_fit()
        scores = np.where(feasible, view.residual_after(demand), np.inf)
        # First occurrence of the minimum == smallest node id on ties.
        return PlacementDecision(node_id=view.node_ids[int(np.argmin(scores))])


@register_policy("placement")
class WorstFitPlacement(PlacementPolicy):
    """LC with the most remaining capacity (load balancing / overload avoidance)."""

    name = "worst-fit"

    def decide(self, vm: VirtualMachine, view: ClusterView) -> PlacementDecision:
        feasible = view.feasible_mask(vm.requested.values)
        if not feasible.any():
            return self._no_fit()
        scores = np.where(feasible, view.headroom_fractions(), -np.inf)
        # Ties historically break toward the *largest* node id: take the last
        # occurrence of the maximum.
        reversed_argmax = int(np.argmax(scores[::-1]))
        choice = len(view) - 1 - reversed_argmax
        return PlacementDecision(node_id=view.node_ids[choice])
