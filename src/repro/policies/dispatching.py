"""Group Leader dispatching policies (kind ``dispatching``).

Paper Section II.C: "At the GL level, VM to GM dispatching decisions are taken
based on the GM resource summary information. ... a list of candidate GMs is
provided by the dispatching policies. Based on this list, a linear search is
performed by issuing VM placement requests to the GMs."

A dispatching policy returns a :class:`~repro.policies.decisions.DispatchDecision`
holding an *ordered candidate list* of Group Manager ids, not a single choice;
the Group Leader probes the candidates in order until one accepts the VM.
"""

from __future__ import annotations

import abc
from typing import Dict, List

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.monitoring.summary import GroupManagerSummary
from repro.policies.decisions import DispatchDecision
from repro.policies.registry import register_policy


class DispatchingPolicy(abc.ABC):
    """Base class: rank Group Managers for an incoming VM request."""

    kind: str = "dispatching"
    name: str = "base"

    @abc.abstractmethod
    def decide(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> DispatchDecision:
        """Return GM ids ordered by preference for hosting ``demand``.

        GMs whose summary clearly cannot host the VM are filtered out; the GL
        still falls back to probing *all* GMs if the filtered list comes back
        empty, because summaries may be stale.
        """

    def candidates(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        """Legacy entry point: the ordered candidate id list."""
        return self.decide(demand, summaries).candidates

    def _plausible(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> List[str]:
        """GM ids whose summary does not rule out hosting the VM.

        One batched feasibility test over all summaries instead of two
        ``fits_within`` calls per GM: the Group Leader runs this once per
        submission, so the per-GM scalar path made dispatch latency grow
        linearly with the GM count.  Same tolerance, same result as
        ``summary.could_host(demand)`` per id.
        """
        if not summaries:
            return []
        gm_ids = list(summaries)
        free = np.asarray([summaries[gm_id].free_capacity().values for gm_id in gm_ids])
        slots = np.asarray([summaries[gm_id].largest_free_slot.values for gm_id in gm_ids])
        demanded = demand.values
        fits = np.all(demanded <= free + 1e-9, axis=1) & np.all(
            demanded <= slots + 1e-9, axis=1
        )
        plausible = [gm_id for gm_id, ok in zip(gm_ids, fits) if ok]
        return plausible or gm_ids


@register_policy("dispatching")
class RoundRobinDispatching(DispatchingPolicy):
    """Rotate through Group Managers independent of load (the paper's example policy)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def decide(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> DispatchDecision:
        plausible = sorted(self._plausible(demand, summaries))
        if not plausible:
            return DispatchDecision(reason="no group managers known")
        start = self._next % len(plausible)
        self._next += 1
        return DispatchDecision(candidates=plausible[start:] + plausible[:start])


@register_policy("dispatching")
class LeastLoadedDispatching(DispatchingPolicy):
    """Prefer the GM with the lowest reserved/total ratio (load balancing)."""

    name = "least-loaded"

    def decide(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> DispatchDecision:
        plausible = self._plausible(demand, summaries)
        if not plausible:
            return DispatchDecision(reason="no group managers known")
        return DispatchDecision(
            candidates=sorted(
                plausible, key=lambda gm_id: (summaries[gm_id].utilization(), gm_id)
            )
        )


@register_policy("dispatching")
class FirstFitDispatching(DispatchingPolicy):
    """Always probe GMs in a fixed (id-sorted) order -- packs GMs one after another.

    This is the energy-friendly choice: it concentrates VMs on the first GMs'
    Local Controllers so later GMs' hosts stay idle and can be suspended.
    """

    name = "first-fit"

    def decide(
        self, demand: ResourceVector, summaries: Dict[str, GroupManagerSummary]
    ) -> DispatchDecision:
        plausible = sorted(self._plausible(demand, summaries))
        if not plausible:
            return DispatchDecision(reason="no group managers known")
        return DispatchDecision(candidates=plausible)
