"""Autoscaling policies: size a VM replica group from its request traffic.

The Snooze paper infers SLA violations from host utilization; the traffic
plane (:mod:`repro.traffic`) measures them directly as request latency and
drops per *service* (a replica group of identical VMs).  An autoscaling policy
closes the loop: every autoscale tick it receives a :class:`ServiceSnapshot`
of one service and returns the desired replica count, which the traffic plane
then realizes through the ordinary submission/termination paths.

Policies register under the ``autoscaling`` kind, so selection is declarative
(``{"name": "target-utilization", "target": 0.6}`` inside a scenario's
``traffic`` section) and ``repro-sim policy list|describe`` covers them like
every other kind.  Decisions are pure functions of the snapshot -- no wall
clock, no randomness -- which keeps traffic scenarios byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.policies.registry import register_policy


@dataclass(frozen=True)
class ServiceSnapshot:
    """What one service looks like at an autoscale tick (the policy's input)."""

    #: Service name (for diagnostics; decisions must not depend on it).
    service: str
    #: Offered request arrival rate at the tick, in requests/second.
    arrival_rate: float
    #: Replicas currently serving traffic (placed and active).
    replicas: int
    #: Replica submissions still in flight (requested but not yet placed).
    pending: int
    #: Per-replica service rate in requests/second at full CPU.
    service_rate: float
    #: Offered utilization ``arrival_rate / (replicas * service_rate)``
    #: (clamped to [0, 1]; 1.0 when no replica is up but traffic is offered).
    utilization: float
    #: p99 request latency of the last traffic tick, in seconds.
    p99_latency: float
    #: Fraction of offered requests dropped at the last traffic tick.
    dropped_ratio: float

    @property
    def provisioned(self) -> int:
        """Replicas either serving or already requested."""
        return self.replicas + self.pending


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


@register_policy("autoscaling", "target-utilization")
class TargetUtilizationAutoscaling:
    """Size the group so offered per-replica utilization sits at ``target``.

    The desired count is the smallest ``c`` with
    ``arrival_rate <= c * service_rate * target`` -- the direct M/M/c sizing
    rule.  ``scale_in_headroom`` adds hysteresis: shrinking only happens when
    the smaller group would still sit below ``target / (1 + headroom)``, so a
    rate hovering at a sizing boundary does not flap the group.
    """

    name = "target-utilization"

    def __init__(
        self,
        target: float = 0.6,
        min_replicas: int = 1,
        max_replicas: int = 32,
        scale_in_headroom: float = 0.25,
    ) -> None:
        if not (0.0 < target <= 1.0):
            raise ValueError("target must be in (0, 1]")
        if min_replicas < 0 or max_replicas < max(min_replicas, 1):
            raise ValueError("require 0 <= min_replicas <= max_replicas and max >= 1")
        if scale_in_headroom < 0:
            raise ValueError("scale_in_headroom must be non-negative")
        self.target = float(target)
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.scale_in_headroom = float(scale_in_headroom)

    def decide(self, snapshot: ServiceSnapshot) -> int:
        """Desired replica count for ``snapshot`` (clamped to [min, max])."""
        if snapshot.service_rate <= 0:
            return _clamp(snapshot.provisioned, self.min_replicas, self.max_replicas)
        demand = snapshot.arrival_rate / snapshot.service_rate  # Erlangs offered
        desired = int(math.ceil(demand / self.target)) if demand > 0 else 0
        current = snapshot.provisioned
        if desired < current:
            # Hysteresis: only shrink to a size that stays comfortably below
            # target even if the rate ticks back up a little.
            conservative = int(math.ceil(demand * (1.0 + self.scale_in_headroom) / self.target))
            desired = max(desired, conservative)
            desired = min(desired, current)
        return _clamp(desired, self.min_replicas, self.max_replicas)


@register_policy("autoscaling", "latency-threshold")
class LatencyThresholdAutoscaling:
    """Step the group up while p99 latency or drops breach the SLA, down when idle.

    A reactive rule: add ``step`` replicas whenever the observed p99 latency
    exceeds ``p99_target`` seconds or any requests were dropped; remove one
    replica when utilization falls below ``scale_in_utilization`` (and nothing
    is breaching).  Between those bands the group holds steady.
    """

    name = "latency-threshold"

    def __init__(
        self,
        p99_target: float = 0.5,
        min_replicas: int = 1,
        max_replicas: int = 32,
        step: int = 1,
        scale_in_utilization: float = 0.3,
    ) -> None:
        if p99_target <= 0:
            raise ValueError("p99_target must be positive")
        if min_replicas < 0 or max_replicas < max(min_replicas, 1):
            raise ValueError("require 0 <= min_replicas <= max_replicas and max >= 1")
        if step <= 0:
            raise ValueError("step must be positive")
        if not (0.0 <= scale_in_utilization < 1.0):
            raise ValueError("scale_in_utilization must be in [0, 1)")
        self.p99_target = float(p99_target)
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.step = int(step)
        self.scale_in_utilization = float(scale_in_utilization)

    def decide(self, snapshot: ServiceSnapshot) -> int:
        """Desired replica count for ``snapshot`` (clamped to [min, max])."""
        current = snapshot.provisioned
        breaching = snapshot.p99_latency > self.p99_target or snapshot.dropped_ratio > 0.0
        if breaching:
            return _clamp(current + self.step, self.min_replicas, self.max_replicas)
        if snapshot.utilization < self.scale_in_utilization:
            return _clamp(current - 1, self.min_replicas, self.max_replicas)
        return _clamp(current, self.min_replicas, self.max_replicas)
