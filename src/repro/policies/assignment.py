"""Group Leader LC-to-GM assignment policies (kind ``assignment``).

Paper Section II.D: a joining Local Controller asks the Group Leader which
Group Manager to join.  This was the last decision point implemented as an
inline string comparison (``assignment_policy == "least-loaded"`` in the
Group Manager); it is now a registered policy kind like every other.
"""

from __future__ import annotations

import abc
from typing import Mapping, Optional, Sequence

from repro.policies.registry import register_policy


class AssignmentPolicy(abc.ABC):
    """Base class: pick the Group Manager a joining Local Controller should join."""

    kind: str = "assignment"
    name: str = "base"

    @abc.abstractmethod
    def choose(
        self, gm_ids: Sequence[str], lc_counts: Mapping[str, int]
    ) -> Optional[str]:
        """Return the chosen GM id (``None`` when ``gm_ids`` is empty).

        ``gm_ids`` is the sorted list of currently known Group Managers;
        ``lc_counts`` maps each of them to the number of Local Controllers it
        already manages (from its latest summary).
        """


@register_policy("assignment")
class RoundRobinAssignment(AssignmentPolicy):
    """Rotate LC assignments across Group Managers independent of load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(
        self, gm_ids: Sequence[str], lc_counts: Mapping[str, int]
    ) -> Optional[str]:
        if not gm_ids:
            return None
        chosen = gm_ids[self._next % len(gm_ids)]
        self._next += 1
        return chosen


@register_policy("assignment")
class LeastLoadedAssignment(AssignmentPolicy):
    """Assign the LC to the GM currently managing the fewest Local Controllers."""

    name = "least-loaded"

    def choose(
        self, gm_ids: Sequence[str], lc_counts: Mapping[str, int]
    ) -> Optional[str]:
        if not gm_ids:
            return None
        return min(gm_ids, key=lambda gm_id: (lc_counts.get(gm_id, 0), gm_id))
