"""Overload and underload relocation policies (kinds ``overload-relocation`` /
``underload-relocation``).

Paper Section II.C: "relocation policies are called when overload (resp.
underload) events arrive from LCs and aims at moving VMs away from heavily
(resp. lightly loaded) nodes":

* **Overload relocation** moves just enough VMs off the hot host to bring its
  utilization back under the overload threshold, choosing destinations with
  the most headroom so the problem is not simply pushed elsewhere.
* **Underload relocation** tries to move *all* VMs off a lightly loaded host
  onto moderately loaded hosts, so the now-idle host can be suspended by the
  energy manager -- but only if every VM fits elsewhere (otherwise nothing
  moves; partially evacuating a host saves no energy).

Both produce a :class:`~repro.policies.decisions.MigrationPlan`.  Destination
feasibility and scoring are vectorized over all candidate hosts per VM through
a :class:`~repro.policies.view.ClusterView` snapshot (candidate order is
preserved, keeping the historical deterministic tie-breaks).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.policies.decisions import MigrationPlan
from repro.policies.registry import register_policy
from repro.policies.thresholds import UtilizationThresholds
from repro.policies.view import ClusterView

#: Back-compat alias: relocation policies historically returned a
#: ``RelocationDecision``; the unified vocabulary calls it a MigrationPlan.
RelocationDecision = MigrationPlan


def _cpu_index(node: PhysicalNode) -> int:
    dims = node.capacity.dimensions
    return dims.index("cpu") if "cpu" in dims else 0


def _node_cpu_utilization(node: PhysicalNode) -> float:
    index = _cpu_index(node)
    capacity = node.capacity.values[index]
    if capacity <= 0:
        return 0.0
    return float(node.used().values[index] / capacity)


def _candidate_view(
    source: PhysicalNode,
    destinations: Sequence[PhysicalNode],
    require_busy: bool = False,
) -> ClusterView:
    """Snapshot the eligible destination hosts, preserving input order."""
    candidates = [
        node
        for node in destinations
        if node.node_id != source.node_id
        and node.is_available_for_placement
        and (node.vm_count > 0 if require_busy else True)
    ]
    return ClusterView.from_nodes(candidates, sort_by_id=False)


@register_policy("overload-relocation", name="greedy")
class OverloadRelocationPolicy:
    """Move the smallest sufficient set of VMs off an overloaded host."""

    kind = "overload-relocation"
    name = "greedy"

    def __init__(self, thresholds: Optional[UtilizationThresholds] = None) -> None:
        self.thresholds = thresholds or UtilizationThresholds()

    def decide(
        self, source: PhysicalNode, destinations: Sequence[PhysicalNode]
    ) -> MigrationPlan:
        """Pick VMs to migrate away from ``source`` and their destinations.

        Strategy (matching the "minimize migrations" spirit of the paper's
        relocation description): sort the source's VMs by decreasing CPU usage
        and keep moving the largest one that still has a feasible destination
        until the source drops below the overload threshold.  Destinations are
        chosen worst-fit (most headroom first) among nodes that stay below the
        overload threshold after receiving the VM.
        """
        plan = MigrationPlan()
        cpu = _cpu_index(source)
        source_capacity = source.capacity.values[cpu]
        if source_capacity <= 0:
            plan.reason = "source has no CPU capacity"
            return plan
        current_usage = source.used().values[cpu]
        target_usage = self.thresholds.overload * source_capacity
        if current_usage <= target_usage:
            plan.reason = "source not overloaded"
            return plan

        view = _candidate_view(source, destinations)
        # Hypothetical load added to each destination by earlier moves.
        added = np.zeros_like(view.capacities)
        cpu_cap = view.capacities[:, cpu] if len(view) else np.empty(0)
        vms = sorted(source.vms, key=lambda vm: vm.used.values[cpu], reverse=True)

        for vm in vms:
            if current_usage <= target_usage:
                break
            if len(view) == 0:
                break
            fits = view.feasible_mask(vm.requested.values, extra_load=added)
            usage_after = view.used[:, cpu] + added[:, cpu] + vm.used.values[cpu]
            feasible = fits & (usage_after <= self.thresholds.overload * cpu_cap)
            if not feasible.any():
                continue
            # Worst-fit: most CPU headroom after the hypothetical moves so far
            # (first occurrence wins ties, matching the historical scan order).
            headroom = cpu_cap - view.used[:, cpu] - added[:, cpu]
            choice = int(np.argmax(np.where(feasible, headroom, -np.inf)))
            plan.moves.append((vm, source, view.node_at(choice)))
            added[choice] += vm.requested.values
            current_usage -= vm.used.values[cpu]

        if plan.empty:
            plan.reason = "no feasible destination for any VM"
        return plan


@register_policy("underload-relocation", name="all-or-nothing")
class UnderloadRelocationPolicy:
    """Evacuate an underloaded host entirely (or not at all) to create idle time."""

    kind = "underload-relocation"
    name = "all-or-nothing"

    def __init__(self, thresholds: Optional[UtilizationThresholds] = None) -> None:
        self.thresholds = thresholds or UtilizationThresholds()

    def decide(
        self, source: PhysicalNode, destinations: Sequence[PhysicalNode]
    ) -> MigrationPlan:
        """Move every VM off ``source`` onto moderately loaded destinations, or nothing.

        Destinations must end up *below the overload threshold* and the policy
        deliberately prefers destinations that are already loaded ("move away
        VMs to moderately loaded LCs", Section II.C) so that consolidation
        does not create new lightly-loaded hosts.
        """
        plan = MigrationPlan()
        if source.vm_count == 0:
            plan.reason = "source already idle"
            return plan
        if _node_cpu_utilization(source) >= self.thresholds.underload:
            plan.reason = "source not underloaded"
            return plan

        cpu = _cpu_index(source)
        # Prefer already-busy hosts; empty ones stay suspendable.
        view = _candidate_view(source, destinations, require_busy=True)
        if len(view) == 0:
            plan.reason = "no busy destination hosts available"
            return plan

        added = np.zeros_like(view.capacities)
        cpu_cap = view.capacities[:, cpu]
        tentative: List[tuple] = []
        # Place the biggest VMs first (hardest to fit).
        for vm in sorted(source.vms, key=lambda vm: vm.requested.values[cpu], reverse=True):
            fits = view.feasible_mask(vm.requested.values, extra_load=added)
            usage_after = view.used[:, cpu] + added[:, cpu] + vm.used.values[cpu]
            feasible = fits & (usage_after <= self.thresholds.overload * cpu_cap)
            if not feasible.any():
                plan.reason = f"VM {vm.name} has no feasible destination; aborting evacuation"
                return plan  # all-or-nothing
            # Best-fit: most loaded destination that still fits (packs tightly,
            # first occurrence wins ties, matching the historical scan order).
            load = (view.used[:, cpu] + added[:, cpu]) / cpu_cap
            choice = int(np.argmax(np.where(feasible, load, -np.inf)))
            tentative.append((vm, source, view.node_at(choice)))
            added[choice] += vm.requested.values

        plan.moves = tentative
        return plan
