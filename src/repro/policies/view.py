"""A shared, numpy-backed snapshot of a set of physical nodes.

Every policy kind used to re-scan ``PhysicalNode`` lists with per-node Python
arithmetic (``node.reserved()`` sums VM vectors, ``node.available()`` builds
fresh ``ResourceVector`` objects, ...).  :class:`ClusterView` gathers that
state **once** into flat arrays so the actual decision math -- feasibility
masks, residual-capacity scores, utilization rankings, victim selection -- is
a handful of vectorized numpy expressions over all nodes at once.

The view is a *snapshot*: it does not track later mutations of the nodes.
Policies receive a fresh view per decision (or build one per relocation /
reconfiguration round) and map chosen indices back to nodes through the
stable ``node_ids`` ordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.node import PhysicalNode

#: Feasibility tolerance, matching ``ResourceVector.fits_within``.
FIT_TOLERANCE = 1e-9


class ClusterView:
    """Array view over a node set: capacities, reservations, usage, placeability."""

    __slots__ = (
        "nodes",
        "node_ids",
        "capacities",
        "reserved",
        "used",
        "placeable",
        "vm_counts",
        "cpu_index",
        "_index_by_id",
    )

    def __init__(
        self,
        nodes: Tuple[PhysicalNode, ...],
        node_ids: np.ndarray,
        capacities: np.ndarray,
        reserved: np.ndarray,
        used: np.ndarray,
        placeable: np.ndarray,
        vm_counts: np.ndarray,
        cpu_index: int,
    ) -> None:
        self.nodes = nodes
        #: Node ids aligned with every array row.
        self.node_ids = node_ids
        #: ``(n, d)`` total capacity per node.
        self.capacities = capacities
        #: ``(n, d)`` reserved (admission-control) load per node.
        self.reserved = reserved
        #: ``(n, d)`` used (monitoring) load per node.
        self.used = used
        #: ``(n,)`` bool: node is ON and accepts placements right now.
        self.placeable = placeable
        #: ``(n,)`` number of VMs currently hosted per node.
        self.vm_counts = vm_counts
        #: Index of the CPU dimension (utilization/threshold math).
        self.cpu_index = cpu_index
        self._index_by_id: Dict[str, int] = {
            node_id: index for index, node_id in enumerate(node_ids.tolist())
        }

    # ------------------------------------------------------------ construction
    @classmethod
    def from_nodes(
        cls, nodes: Sequence[PhysicalNode], sort_by_id: bool = True
    ) -> "ClusterView":
        """Snapshot ``nodes`` (sorted by node id by default, for stable tie-breaks)."""
        node_list = list(nodes)
        if sort_by_id:
            node_list.sort(key=lambda node: node.node_id)
        n = len(node_list)
        if n == 0:
            empty2 = np.empty((0, 0), dtype=float)
            return cls(
                nodes=(),
                node_ids=np.empty(0, dtype=object),
                capacities=empty2,
                reserved=empty2,
                used=empty2,
                placeable=np.empty(0, dtype=bool),
                vm_counts=np.empty(0, dtype=np.int64),
                cpu_index=0,
            )
        dims = node_list[0].capacity.dimensions
        d = len(dims)
        cpu_index = dims.index("cpu") if "cpu" in dims else 0
        capacities = np.empty((n, d), dtype=float)
        reserved = np.zeros((n, d), dtype=float)
        used = np.zeros((n, d), dtype=float)
        placeable = np.empty(n, dtype=bool)
        vm_counts = np.empty(n, dtype=np.int64)
        for index, node in enumerate(node_list):
            capacities[index] = node.capacity.values
            # Both aggregates come from the node's caches (the same
            # sequential sums, computed once per change -- VM set changes for
            # reservations, any hosted VM's usage write for usage -- instead
            # of per snapshot).
            reserved[index] = node.reserved_values()
            used[index] = node.used_values()
            placeable[index] = node.is_available_for_placement
            vm_counts[index] = node.vm_count
        return cls(
            nodes=tuple(node_list),
            node_ids=np.array([node.node_id for node in node_list], dtype=object),
            capacities=capacities,
            reserved=reserved,
            used=used,
            placeable=placeable,
            vm_counts=vm_counts,
            cpu_index=cpu_index,
        )

    # -------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self.nodes)

    def index_of(self, node_id: str) -> Optional[int]:
        """Row index of ``node_id`` (None if absent from the snapshot)."""
        return self._index_by_id.get(node_id)

    def node_at(self, index: int) -> PhysicalNode:
        """The node behind row ``index``."""
        return self.nodes[index]

    def node_by_id(self, node_id: str) -> Optional[PhysicalNode]:
        """The node with ``node_id`` (None if absent)."""
        index = self._index_by_id.get(node_id)
        return None if index is None else self.nodes[index]

    # ------------------------------------------------------------ decision math
    def feasible_mask(
        self, demand: np.ndarray, extra_load: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Bool mask of nodes that are placeable and fit ``demand`` on top of reservations.

        ``extra_load`` (``(n, d)``) adds hypothetical load per node -- used by
        relocation policies to account for moves already planned this round.
        """
        if len(self) == 0:
            return np.empty(0, dtype=bool)
        reserved = self.reserved if extra_load is None else self.reserved + extra_load
        fits = np.all(
            reserved + np.asarray(demand, dtype=float) <= self.capacities + FIT_TOLERANCE,
            axis=1,
        )
        return fits & self.placeable

    def residual_after(self, demand: np.ndarray) -> np.ndarray:
        """Per-node normalized residual capacity if ``demand`` were placed there.

        ``sum_k (capacity_k - reserved_k - demand_k) / capacity_k`` -- the
        best-fit score (smaller = tighter packing).  Only meaningful where
        :meth:`feasible_mask` is True.
        """
        remaining = self.capacities - self.reserved - np.asarray(demand, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self.capacities > 0, remaining / self.capacities, 0.0)
        return np.sum(fractions, axis=1)

    def headroom_fractions(self) -> np.ndarray:
        """Per-node normalized free capacity ``sum_k max(0, cap_k - reserved_k) / cap_k``."""
        free = np.clip(self.capacities - self.reserved, 0.0, None)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self.capacities > 0, free / self.capacities, 0.0)
        return np.sum(fractions, axis=1)

    def cpu_capacity(self) -> np.ndarray:
        """``(n,)`` CPU capacity per node."""
        return self.capacities[:, self.cpu_index]

    def cpu_used(self) -> np.ndarray:
        """``(n,)`` CPU usage per node (monitoring view)."""
        return self.used[:, self.cpu_index]

    def cpu_utilization(self) -> np.ndarray:
        """``(n,)`` CPU utilization fractions (0 where capacity is 0)."""
        capacity = self.cpu_capacity()
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(capacity > 0, self.cpu_used() / capacity, 0.0)

    def placeable_nodes(self) -> List[PhysicalNode]:
        """The nodes currently accepting placements, in view order."""
        return [node for node, ok in zip(self.nodes, self.placeable) if ok]
