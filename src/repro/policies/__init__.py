"""Unified policy API: one registry, one cluster view, one decision vocabulary.

The paper's manageability claim is that every VM-management decision point is
a pluggable policy.  This package makes that claim structural:

* :mod:`repro.policies.registry` -- the central registry.  Policies register
  with ``@register_policy(kind, name)`` and are constructed with
  :func:`make_policy`; :class:`PolicySpec` metadata (parameter schema derived
  from the factory signature) powers ``repro-sim policy list|describe``.
* :mod:`repro.policies.view` -- :class:`ClusterView`, the shared numpy-backed
  snapshot of node capacities/reservations/usage/placeability that every
  policy kind consumes, replacing per-policy Python scans over
  ``PhysicalNode`` lists with vectorized decision math.
* :mod:`repro.policies.decisions` -- the common result vocabulary
  (:class:`PlacementDecision`, :class:`DispatchDecision`,
  :class:`MigrationPlan`) so the hierarchy calls every policy the same way.
* the policy kinds themselves: ``placement``, ``dispatching``,
  ``assignment``, ``overload-relocation``, ``underload-relocation``,
  ``reconfiguration`` (which bridges every :mod:`repro.core` consolidation
  algorithm -- ACO, distributed ACO, FFD, BFD, WFD -- into the live
  hierarchy) and ``autoscaling`` (sizing the VM replica group of a
  :mod:`repro.traffic` service from its request traffic).

Selection is declarative end-to-end: ``HierarchyConfig.policies`` holds
``{kind: {"name": ..., **params}}`` entries, ``ScenarioSpec.policies`` carries
the same (JSON-round-trippable) block, and the CLI overrides them with
``scenario run --policy kind=name``.
"""

from repro.policies.registry import (
    ParamSpec,
    PolicySpec,
    get_policy_spec,
    iter_policy_specs,
    make_policy,
    policy_kinds,
    policy_names,
    register_policy,
)
from repro.policies.view import ClusterView
from repro.policies.plane import DecisionPlane
from repro.policies.decisions import DispatchDecision, MigrationPlan, PlacementDecision
from repro.policies.thresholds import LoadBand, UtilizationThresholds
from repro.policies.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    WorstFitPlacement,
)
from repro.policies.dispatching import (
    DispatchingPolicy,
    FirstFitDispatching,
    LeastLoadedDispatching,
    RoundRobinDispatching,
)
from repro.policies.assignment import (
    AssignmentPolicy,
    LeastLoadedAssignment,
    RoundRobinAssignment,
)
from repro.policies.relocation import (
    OverloadRelocationPolicy,
    RelocationDecision,
    UnderloadRelocationPolicy,
)
from repro.policies.reconfiguration import ReconfigurationPolicy
from repro.policies.autoscaling import (
    LatencyThresholdAutoscaling,
    ServiceSnapshot,
    TargetUtilizationAutoscaling,
)

__all__ = [
    "ParamSpec",
    "PolicySpec",
    "register_policy",
    "make_policy",
    "get_policy_spec",
    "policy_kinds",
    "policy_names",
    "iter_policy_specs",
    "ClusterView",
    "DecisionPlane",
    "PlacementDecision",
    "DispatchDecision",
    "MigrationPlan",
    "UtilizationThresholds",
    "LoadBand",
    "PlacementPolicy",
    "FirstFitPlacement",
    "BestFitPlacement",
    "WorstFitPlacement",
    "RoundRobinPlacement",
    "DispatchingPolicy",
    "RoundRobinDispatching",
    "LeastLoadedDispatching",
    "FirstFitDispatching",
    "AssignmentPolicy",
    "RoundRobinAssignment",
    "LeastLoadedAssignment",
    "OverloadRelocationPolicy",
    "UnderloadRelocationPolicy",
    "RelocationDecision",
    "ReconfigurationPolicy",
    "ServiceSnapshot",
    "TargetUtilizationAutoscaling",
    "LatencyThresholdAutoscaling",
]
