"""Utilization thresholds: overload / underload / moderate bands.

Local Controllers "detect local overload/underload anomaly situations and
report them to the assigned GM" (paper Section II.A).  The thresholds below
define those situations and are also used by the reconfiguration policy to
select the "moderately loaded" hosts it is allowed to re-pack (Section II.C).
Values follow the adaptive-threshold literature the paper cites ([8]
Beloglazov & Buyya): 85-90 % overload, ~20 % underload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LoadBand(enum.Enum):
    """Classification of a host's utilization."""

    UNDERLOADED = "underloaded"
    MODERATE = "moderate"
    OVERLOADED = "overloaded"


@dataclass(frozen=True)
class UtilizationThresholds:
    """The two cut points separating the three load bands."""

    #: Below this CPU utilization a host is underloaded (candidate for evacuation + suspend).
    underload: float = 0.2
    #: Above this CPU utilization a host is overloaded (VMs risk performance degradation).
    overload: float = 0.85

    def __post_init__(self) -> None:
        if not (0.0 <= self.underload < self.overload <= 1.0):
            raise ValueError(
                f"thresholds must satisfy 0 <= underload < overload <= 1, "
                f"got underload={self.underload}, overload={self.overload}"
            )

    def classify(self, utilization: float) -> LoadBand:
        """Map a utilization fraction to its band."""
        if utilization > self.overload:
            return LoadBand.OVERLOADED
        if utilization < self.underload:
            return LoadBand.UNDERLOADED
        return LoadBand.MODERATE

    def is_overloaded(self, utilization: float) -> bool:
        """True if the utilization exceeds the overload threshold."""
        return utilization > self.overload

    def is_underloaded(self, utilization: float) -> bool:
        """True if the utilization is below the underload threshold (but the host is in use)."""
        return utilization < self.underload

    def headroom(self, utilization: float) -> float:
        """Distance to the overload threshold (how much more load fits safely)."""
        return max(0.0, self.overload - utilization)
