"""The common decision vocabulary every policy kind speaks.

Before the unified policy API each policy kind returned its own ad-hoc shape
(a bare node, an id list, a ``RelocationDecision``, a ``ReconfigurationPlan``).
The hierarchy components now consume exactly three result types:

* :class:`PlacementDecision` -- one VM, one chosen node (or a reason why not);
* :class:`DispatchDecision` -- an ordered Group Manager candidate list;
* :class:`MigrationPlan` -- a batch of VM moves (relocation and
  reconfiguration both produce this, so Group Managers execute them through
  one code path).

All three are plain dataclasses with ``reason`` strings for the "no decision"
cases, so call sites never need policy-specific branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.node import PhysicalNode


@dataclass
class PlacementDecision:
    """Outcome of a placement policy for one VM: the chosen node, or why none."""

    #: Chosen node id; ``None`` when no node fits.
    node_id: Optional[str] = None
    #: Human-readable reason when ``node_id`` is ``None``.
    reason: str = ""

    @property
    def placed(self) -> bool:
        """True when the policy selected a node."""
        return self.node_id is not None


@dataclass
class DispatchDecision:
    """Outcome of a dispatching policy: Group Manager ids ordered by preference."""

    candidates: List[str] = field(default_factory=list)
    #: Human-readable reason when the candidate list is empty.
    reason: str = ""

    @property
    def empty(self) -> bool:
        """True when no candidate Group Manager was produced."""
        return not self.candidates

    def __len__(self) -> int:
        return len(self.candidates)


@dataclass
class MigrationPlan:
    """A batch of VM moves, as produced by relocation and reconfiguration policies."""

    #: ``(vm, source node, destination node)`` triples, in execution order.
    moves: List[tuple] = field(default_factory=list)
    #: Human-readable reason when no moves are proposed.
    reason: str = ""
    #: Nodes the plan leaves without any VMs (suspension candidates).
    released_nodes: List[PhysicalNode] = field(default_factory=list)
    #: Hosts used before / after, for reporting (reconfiguration rounds).
    hosts_before: int = 0
    hosts_after: int = 0
    #: The consolidation algorithm's own result summary (runtime, iterations, ...).
    consolidation_summary: dict = field(default_factory=dict)

    @property
    def empty(self) -> bool:
        """True if the policy decided not to move anything."""
        return not self.moves

    @property
    def hosts_saved(self) -> int:
        """Net reduction in active hosts if the plan executes fully."""
        return max(0, self.hosts_before - self.hosts_after)

    def __len__(self) -> int:
        return len(self.moves)
