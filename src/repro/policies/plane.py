"""Resident, incrementally maintained decision arrays for one Group Manager.

:class:`~repro.policies.view.ClusterView` is a *snapshot*: every placement
attempt and relocation round used to rebuild it from scratch with a Python
loop over all of a GM's Local Controller nodes (``from_nodes``), which is
exactly the per-event O(group size) work that makes events/sec decay with
fleet size (ROADMAP item 2).  :class:`DecisionPlane` keeps the group's
capacity/reserved/used/placeable arrays **resident** and maintains them
incrementally:

* **Structural changes** (LC join / removal) rebuild the sorted arrays once --
  they are rare (startup, failures) and O(group size) by nature.
* **Row changes** (VM placed/removed, a hosted VM's usage write, a power-state
  transition) are pushed by the :meth:`~repro.cluster.node.PhysicalNode.watch`
  hook into a dirty set and folded into the arrays lazily, so a placement
  decision costs O(changed rows) + the vectorized policy kernel instead of
  O(group size) Python per event.

:meth:`view` hands policies a :class:`ClusterView` that *shares* the resident
arrays (including the ``node_id -> row`` index), so the existing vectorized
placement kernels run unchanged.  Exclusions (retry after an LC rejected a
placement) are expressed by masking the excluded rows' ``placeable`` flags in
a copy of that one column -- the feasible set, and therefore every policy's
choice, is identical to rebuilding the view without those nodes, because all
placement kernels select strictly within the feasible mask and row order is
the same sorted-by-node-id order ``from_nodes`` produces.

The plane also owns the two group-local indexes the hot paths need:
``node_id -> lc_name`` (replacing the O(n) identity scan in ``_lc_of_node``)
and the join-ordered node list (replacing the per-anomaly ``managed_nodes()``
rebuild; relocation semantics depend on join order, so the plane preserves
it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.policies.view import ClusterView


class DecisionPlane:
    """Incrementally maintained :class:`ClusterView` arrays over a GM's LC nodes."""

    def __init__(self) -> None:
        #: lc_name -> node, in join order (insertion-ordered dict).
        self._nodes_by_lc: Dict[str, PhysicalNode] = {}
        #: node_id -> lc_name (satellite index for ``_lc_of_node``).
        self._lc_by_node_id: Dict[str, str] = {}
        #: Join-ordered node list, resident (callers must not mutate).
        self._join_order: List[PhysicalNode] = []
        # Resident sorted-by-node-id arrays (rebuilt on structural changes).
        self._sorted_nodes: tuple = ()
        self._node_ids = np.empty(0, dtype=object)
        self._capacities = np.empty((0, 0), dtype=float)
        self._reserved = np.empty((0, 0), dtype=float)
        self._used = np.empty((0, 0), dtype=float)
        self._placeable = np.empty(0, dtype=bool)
        self._vm_counts = np.empty(0, dtype=np.int64)
        self._cpu_index = 0
        self._row_by_id: Dict[str, int] = {}
        self._row_by_lc: Dict[str, int] = {}
        #: node_ids whose row needs a refresh before the next view.
        self._dirty: Set[str] = set()
        self._structural = False

    # ------------------------------------------------------------- membership
    def __len__(self) -> int:
        return len(self._nodes_by_lc)

    def __contains__(self, lc_name: str) -> bool:
        return lc_name in self._nodes_by_lc

    def add(self, lc_name: str, node: PhysicalNode) -> None:
        """Register a joined LC's node (idempotent for an already-known LC)."""
        if lc_name in self._nodes_by_lc:
            return
        self._nodes_by_lc[lc_name] = node
        self._lc_by_node_id[node.node_id] = lc_name
        self._join_order.append(node)
        node.watch(self._mark_dirty)
        self._structural = True

    def remove(self, lc_name: str) -> None:
        """Drop a removed/failed LC's node (no-op for an unknown LC)."""
        node = self._nodes_by_lc.pop(lc_name, None)
        if node is None:
            return
        if self._lc_by_node_id.get(node.node_id) == lc_name:
            del self._lc_by_node_id[node.node_id]
        self._join_order.remove(node)
        node.unwatch(self._mark_dirty)
        self._structural = True

    def clear(self) -> None:
        """Forget every node (GM failure): unwatch and reset all state."""
        for node in self._nodes_by_lc.values():
            node.unwatch(self._mark_dirty)
        self._nodes_by_lc.clear()
        self._lc_by_node_id.clear()
        self._join_order.clear()
        self._dirty.clear()
        self._structural = True

    # ---------------------------------------------------------------- indexes
    def lc_of(self, node: PhysicalNode) -> Optional[str]:
        """The LC name managing ``node`` (identity-checked, like the old scan)."""
        lc_name = self._lc_by_node_id.get(node.node_id)
        if lc_name is None or self._nodes_by_lc.get(lc_name) is not node:
            return None
        return lc_name

    def nodes_in_join_order(self) -> List[PhysicalNode]:
        """The resident join-ordered node list (read-only; do not mutate)."""
        return self._join_order

    # ------------------------------------------------------------ maintenance
    def _mark_dirty(self, node: PhysicalNode) -> None:
        self._dirty.add(node.node_id)

    def _rebuild(self) -> None:
        node_list = sorted(self._nodes_by_lc.values(), key=lambda node: node.node_id)
        n = len(node_list)
        self._sorted_nodes = tuple(node_list)
        self._node_ids = np.array([node.node_id for node in node_list], dtype=object)
        if n == 0:
            self._capacities = np.empty((0, 0), dtype=float)
            self._reserved = np.empty((0, 0), dtype=float)
            self._used = np.empty((0, 0), dtype=float)
            self._placeable = np.empty(0, dtype=bool)
            self._vm_counts = np.empty(0, dtype=np.int64)
            self._cpu_index = 0
        else:
            dims = node_list[0].capacity.dimensions
            d = len(dims)
            self._cpu_index = dims.index("cpu") if "cpu" in dims else 0
            self._capacities = np.empty((n, d), dtype=float)
            self._reserved = np.empty((n, d), dtype=float)
            self._used = np.empty((n, d), dtype=float)
            self._placeable = np.empty(n, dtype=bool)
            self._vm_counts = np.empty(n, dtype=np.int64)
            for row, node in enumerate(node_list):
                self._capacities[row] = node.capacity.values
                self._reserved[row] = node.reserved_values()
                self._used[row] = node.used_values()
                self._placeable[row] = node.is_available_for_placement
                self._vm_counts[row] = node.vm_count
        self._row_by_id = {node_id: row for row, node_id in enumerate(self._node_ids.tolist())}
        self._row_by_lc = {
            lc_name: self._row_by_id[node.node_id]
            for lc_name, node in self._nodes_by_lc.items()
        }
        self._dirty.clear()
        self._structural = False

    def refresh(self) -> None:
        """Fold pending changes into the resident arrays."""
        if self._structural:
            self._rebuild()
            return
        if not self._dirty:
            return
        for node_id in self._dirty:
            row = self._row_by_id.get(node_id)
            if row is None:  # marked dirty, then removed before the refresh
                continue
            node = self._sorted_nodes[row]
            self._reserved[row] = node.reserved_values()
            self._used[row] = node.used_values()
            self._placeable[row] = node.is_available_for_placement
            self._vm_counts[row] = node.vm_count
        self._dirty.clear()

    # ----------------------------------------------------------------- views
    def view(self, exclude_lcs: Optional[Set[str]] = None) -> ClusterView:
        """A :class:`ClusterView` over the resident arrays, sorted by node id.

        ``exclude_lcs`` masks those LCs' rows unplaceable (a copy of the one
        boolean column; all other arrays are shared).  Policies must treat the
        view as read-only, which every registered policy already does.
        """
        self.refresh()
        placeable = self._placeable
        if exclude_lcs:
            placeable = placeable.copy()
            for lc_name in exclude_lcs:
                row = self._row_by_lc.get(lc_name)
                if row is not None:
                    placeable[row] = False
        view = ClusterView.__new__(ClusterView)
        view.nodes = self._sorted_nodes
        view.node_ids = self._node_ids
        view.capacities = self._capacities
        view.reserved = self._reserved
        view.used = self._used
        view.placeable = placeable
        view.vm_counts = self._vm_counts
        view.cpu_index = self._cpu_index
        view._index_by_id = self._row_by_id
        return view

    def join_order_view(self) -> ClusterView:
        """A :class:`ClusterView` in LC *join* order (what relocation and
        reconfiguration historically consumed via ``from_nodes(...,
        sort_by_id=False)``): a numpy row gather of the resident arrays, no
        per-node attribute reads."""
        self.refresh()
        rows = np.asarray(
            [self._row_by_id[node.node_id] for node in self._join_order], dtype=np.intp
        )
        view = ClusterView.__new__(ClusterView)
        view.nodes = tuple(self._join_order)
        view.node_ids = self._node_ids[rows]
        view.capacities = self._capacities[rows]
        view.reserved = self._reserved[rows]
        view.used = self._used[rows]
        view.placeable = self._placeable[rows]
        view.vm_counts = self._vm_counts[rows]
        view.cpu_index = self._cpu_index
        view._index_by_id = {
            node.node_id: row for row, node in enumerate(self._join_order)
        }
        return view
