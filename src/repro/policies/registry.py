"""The central policy registry: one API for every pluggable decision point.

The paper's core manageability claim is that every VM-management decision
(dispatching, placement, LC assignment, relocation, reconfiguration) is a
pluggable policy.  This module is where that claim becomes mechanical: a
policy implementation registers itself once with :func:`register_policy` and
is from then on constructible by ``(kind, name)`` through :func:`make_policy`,
enumerable through :func:`policy_names` / :func:`iter_policy_specs`, and
introspectable through its :class:`PolicySpec` (parameter schema derived from
the factory signature, description derived from the docstring).

No call site outside :mod:`repro.policies` should ever compare policy names
as strings; the registry is the single source of truth.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Sentinel for "parameter has no default" (the parameter is required).
_REQUIRED = object()

#: Parameter names that carry live runtime objects wired in by the deployment
#: (thresholds come from ``HierarchyConfig.thresholds``, random generators
#: from the run seed).  They are constructor parameters, not declarative
#: knobs: scenario/config ``policies`` entries may not set them.
RUNTIME_PARAMS = frozenset({"thresholds", "rng"})

#: kind -> name -> PolicySpec
_REGISTRY: Dict[str, Dict[str, "PolicySpec"]] = {}


def _json_safe(value: object) -> object:
    """Best-effort JSON-safe rendering of a parameter default."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


@dataclass(frozen=True)
class ParamSpec:
    """One constructor parameter of a registered policy."""

    name: str
    #: The declared default; :data:`_REQUIRED` when the parameter is mandatory.
    default: object = _REQUIRED
    #: True for parameters wired in at runtime (see :data:`RUNTIME_PARAMS`);
    #: these cannot be set from declarative ``policies`` blocks.
    runtime: bool = False

    @property
    def required(self) -> bool:
        """True when the parameter has no default."""
        return self.default is _REQUIRED

    def describe(self) -> dict:
        """JSON-safe description used by ``repro-sim policy describe``."""
        info: dict = {"name": self.name, "required": self.required}
        if not self.required:
            info["default"] = _json_safe(self.default)
        if self.runtime:
            info["runtime"] = True
        return info


@dataclass(frozen=True)
class PolicySpec:
    """Introspectable metadata + factory for one registered policy."""

    kind: str
    name: str
    factory: Callable[..., object]
    description: str
    params: Tuple[ParamSpec, ...]
    #: True when the factory accepts **kwargs (no parameter-name validation).
    accepts_extra: bool = False

    def param_names(self) -> List[str]:
        """Names of the declared constructor parameters."""
        return [param.name for param in self.params]

    def defaults(self) -> Dict[str, object]:
        """The declared defaults (required parameters are omitted)."""
        return {param.name: param.default for param in self.params if not param.required}

    def build(self, **params) -> object:
        """Construct the policy, validating parameter names against the schema."""
        if not self.accepts_extra:
            unknown = set(params) - set(self.param_names())
            if unknown:
                raise ValueError(
                    f"unknown parameter(s) {sorted(unknown)} for {self.kind} policy "
                    f"{self.name!r}; valid parameters: {self.param_names()}"
                )
        missing = [
            param.name for param in self.params if param.required and param.name not in params
        ]
        if missing:
            raise ValueError(
                f"{self.kind} policy {self.name!r} requires parameter(s) {missing}"
            )
        return self.factory(**params)

    def describe(self) -> dict:
        """JSON-safe description used by the CLI and the docs."""
        return {
            "kind": self.kind,
            "name": self.name,
            "description": self.description,
            "params": [param.describe() for param in self.params],
        }


def _signature_params(factory: Callable) -> Tuple[Tuple[ParamSpec, ...], bool]:
    """Derive the parameter schema from a class ``__init__`` or plain factory."""
    if inspect.isclass(factory):
        if factory.__init__ is object.__init__:  # no constructor parameters at all
            return (), False
        target = factory.__init__  # type: ignore[misc]
    else:
        target = factory
    try:
        signature = inspect.signature(target)
    except (TypeError, ValueError):  # e.g. object.__init__ on a no-arg class
        return (), False
    params: List[ParamSpec] = []
    accepts_extra = False
    for parameter in signature.parameters.values():
        if parameter.name == "self":
            continue
        if parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            accepts_extra = True
            continue
        default = _REQUIRED if parameter.default is inspect.Parameter.empty else parameter.default
        params.append(
            ParamSpec(
                name=parameter.name,
                default=default,
                runtime=parameter.name in RUNTIME_PARAMS,
            )
        )
    return tuple(params), accepts_extra


def _first_doc_line(factory: Callable) -> str:
    doc = inspect.getdoc(factory) or ""
    return doc.splitlines()[0].strip() if doc else ""


def register_policy(
    kind: str, name: Optional[str] = None, description: Optional[str] = None
) -> Callable:
    """Class/function decorator registering a policy factory under ``(kind, name)``.

    ``name`` defaults to the factory's ``name`` class attribute (policies
    already carry one); ``description`` defaults to the first docstring line.
    Registering the same ``(kind, name)`` twice is an error.
    """

    def decorator(factory: Callable) -> Callable:
        policy_name = name or getattr(factory, "name", None)
        if not policy_name or not isinstance(policy_name, str):
            raise ValueError(
                f"policy factory {factory!r} needs an explicit name or a 'name' attribute"
            )
        # Lookups lower-case the requested name (historical factory behaviour),
        # so registered names must be lower-case to stay reachable.
        policy_name = policy_name.lower()
        params, accepts_extra = _signature_params(factory)
        spec = PolicySpec(
            kind=str(kind),
            name=policy_name,
            factory=factory,
            description=description or _first_doc_line(factory),
            params=params,
            accepts_extra=accepts_extra,
        )
        bucket = _REGISTRY.setdefault(spec.kind, {})
        if spec.name in bucket:
            raise ValueError(f"{spec.kind} policy {spec.name!r} already registered")
        bucket[spec.name] = spec
        return factory

    return decorator


def policy_kinds() -> List[str]:
    """Sorted names of every policy kind with at least one registration."""
    return sorted(_REGISTRY)


def policy_names(kind: str) -> List[str]:
    """Sorted names registered under ``kind``; raises for unknown kinds."""
    return sorted(_kind_bucket(kind))


def _kind_bucket(kind: str) -> Dict[str, PolicySpec]:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown policy kind {kind!r}; choose from {policy_kinds()}"
        ) from None


def get_policy_spec(kind: str, name: str) -> PolicySpec:
    """The :class:`PolicySpec` for ``(kind, name)``; unknown names list the valid ones."""
    bucket = _kind_bucket(kind)
    try:
        return bucket[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown {kind} policy {name!r}; choose from {sorted(bucket)}"
        ) from None


def make_policy(kind: str, name: str, **params) -> object:
    """Construct a registered policy by kind and name.

    Unknown kinds, names and parameter names all raise :class:`ValueError`
    messages that enumerate the valid alternatives (the registry makes this
    free for every policy kind at once).
    """
    return get_policy_spec(kind, name).build(**params)


def validate_policy_selection(kind: str, entry: object) -> PolicySpec:
    """Validate one declarative ``{kind: {"name": ..., **params}}`` entry.

    Shared by :class:`~repro.hierarchy.config.HierarchyConfig` and
    :class:`~repro.scenarios.spec.ScenarioSpec` so both fail fast with the
    same messages (unknown kinds/names/parameters list the alternatives).
    Returns the resolved :class:`PolicySpec`.
    """
    if not isinstance(entry, dict) or "name" not in entry:
        raise ValueError(
            f"policies[{kind!r}] must be a {{'name': ..., **params}} dictionary, got {entry!r}"
        )
    spec = get_policy_spec(kind, str(entry["name"]))
    params = set(entry) - {"name"}
    unknown = params - set(spec.param_names())
    if unknown and not spec.accepts_extra:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for {kind} policy "
            f"{spec.name!r}; valid parameters: {spec.param_names()}"
        )
    runtime = params & {param.name for param in spec.params if param.runtime}
    if runtime:
        raise ValueError(
            f"parameter(s) {sorted(runtime)} of {kind} policy {spec.name!r} are "
            "wired in at runtime (thresholds from the deployment configuration, "
            "random streams from the run seed) and cannot be set declaratively"
        )
    return spec


def merge_policy_selections(
    policies: Dict[str, Dict[str, object]], overrides: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Merge declarative policy overrides over an existing ``policies`` block.

    A *bare* override entry (``{"name": ...}`` only) selecting the name
    already in use keeps the existing entry's tuned parameters; any other
    entry replaces the block wholesale.  The one merge rule shared by the CLI
    (``scenario run --policy``, ``sweep run --policy``) and sweep expansion.
    """
    merged = {kind: dict(entry) for kind, entry in policies.items()}
    for kind, override in overrides.items():
        existing = merged.get(kind)
        if (
            existing is not None
            and existing.get("name") == override.get("name")
            and set(override) == {"name"}
        ):
            continue
        merged[kind] = dict(override)
    return merged


def iter_policy_specs(kind: Optional[str] = None) -> Iterator[PolicySpec]:
    """All registered specs (optionally of one kind), in (kind, name) order."""
    kinds = [kind] if kind is not None else policy_kinds()
    for each_kind in kinds:
        bucket = _kind_bucket(each_kind)
        for name in sorted(bucket):
            yield bucket[name]


#: Method names that constitute a policy's decision surface.  Every registered
#: policy exposes its decision through one of these.
DECISION_METHODS = ("decide", "plan", "choose")


def instrument_policy(policy: object, observe: Callable[[str, float], None]) -> object:
    """Time every decision call of ``policy`` with ``observe(method, seconds)``.

    Wrapping is per-instance: the decision methods are shadowed by timed
    closures on the instance, so the class and its other instances stay
    untouched and plain attribute access (``policy.thresholds`` mutation by
    runtime control, for example) keeps working.  The wall-clock sample is
    reported even when the decision raises, and timing never alters the
    decision result -- determinism is untouched by construction.
    """
    for method_name in DECISION_METHODS:
        method = getattr(policy, method_name, None)
        if not callable(method):
            continue

        def timed(*args, _method=method, _name=method_name, **kwargs):
            begin = perf_counter()
            try:
                return _method(*args, **kwargs)
            finally:
                observe(_name, perf_counter() - begin)

        timed.__name__ = method_name
        setattr(policy, method_name, timed)
    return policy
