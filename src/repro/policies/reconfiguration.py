"""Periodic reconfiguration policies (kind ``reconfiguration``).

Paper Section II.C: "reconfiguration policies can be specified which will be
called periodically according to the system administrator specified interval
to further optimize the VM placement of moderately loaded nodes. For example,
a VM consolidation policy can be enabled to weekly optimize the VM placement
by packing VMs on as few nodes as possible."

The :class:`ReconfigurationPolicy` glues three pieces together:

1. select the hosts that may participate (powered-on, not overloaded -- the
   paper restricts reconfiguration to moderately loaded nodes so that hot
   hosts are handled by overload relocation instead);
2. run a consolidation algorithm from :mod:`repro.core` over the
   participating hosts' VMs;
3. translate the new placement into an ordered
   :class:`~repro.policies.decisions.MigrationPlan` and report which hosts the
   plan frees entirely (candidates for suspension).

The **bridge** at the bottom registers every :mod:`repro.core` consolidation
algorithm (ACO scalar and vectorized, distributed ACO, FFD, BFD, WFD) as a
``reconfiguration`` policy, so scenarios can run e.g. ACO-driven periodic
consolidation inside the live hierarchy by name -- not only offline through
the benchmark harness.

Two warehouse-scale modes ride on the vectorized algorithm (ROADMAP item 5):

* **warm start** -- after every accepted plan the policy distills the
  VM-to-host pairs into a persisted
  :class:`~repro.core.aco_vectorized.PheromoneSummary`; the next round seeds
  the pheromone matrix from it, so per-cycle re-optimization starts at the
  incumbent placement instead of from scratch.
* **incremental** -- only *dirty* hosts participate: nodes whose VM set or
  measured load changed since the previous plan (plus nodes never seen
  before).  Unchanged corners of the fleet are skipped entirely, which is
  what makes periodic consolidation affordable on warehouse-size groups.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.aco_vectorized import PheromoneSummary, VectorizedACOConsolidation
from repro.core.base import ConsolidationAlgorithm
from repro.core.distributed_aco import DistributedACOConsolidation
from repro.core.ffd import BestFitDecreasing, FirstFitDecreasing, WorstFitDecreasing
from repro.core.migration_plan import plan_migrations
from repro.core.placement import placement_from_view
from repro.policies.decisions import MigrationPlan
from repro.policies.registry import register_policy
from repro.policies.thresholds import UtilizationThresholds
from repro.policies.view import ClusterView


class ReconfigurationPolicy:
    """Periodic consolidation driver used by Group Managers."""

    kind = "reconfiguration"
    name = "consolidation"

    def __init__(
        self,
        algorithm: Optional[ConsolidationAlgorithm] = None,
        thresholds: Optional[UtilizationThresholds] = None,
        max_migrations: Optional[int] = None,
        include_overloaded: bool = False,
        warm_start: bool = False,
        incremental: bool = False,
    ) -> None:
        self.algorithm = algorithm or ACOConsolidation()
        self.thresholds = thresholds or UtilizationThresholds()
        self.max_migrations = max_migrations
        self.include_overloaded = include_overloaded
        #: Seed the next round's pheromone matrix from the previous plan
        #: (only honoured by algorithms advertising ``supports_warm_start``).
        self.warm_start = bool(warm_start)
        #: Restrict each round to nodes whose VM set or load changed since
        #: the previous round.
        self.incremental = bool(incremental)
        self._summary = PheromoneSummary()
        self._node_signatures: Dict[str, Tuple] = {}

    # ------------------------------------------------------------------ run
    def plan(
        self, nodes: Sequence[PhysicalNode], view: Optional[ClusterView] = None
    ) -> MigrationPlan:
        """Compute a reconfiguration plan over the given Local Controller hosts.

        ``view`` optionally supplies a pre-built snapshot of ``nodes`` *in the
        same order* (the Group Manager passes its resident decision-plane
        arrays): the eligibility screen and the consolidation instance are
        then numpy gathers off those arrays instead of fresh per-node reads,
        with byte-identical plans (parity-tested).
        """
        if view is None:
            view = ClusterView.from_nodes(nodes, sort_by_id=False)
        eligible = self._eligible_nodes(view)
        plan = MigrationPlan()
        participants = self._participants(eligible)
        vms: List[VirtualMachine] = [vm for node in participants for vm in node.vms]
        if len(participants) < 2 or not vms:
            return plan

        rows = [view.index_of(node.node_id) for node in participants]
        current, vm_list, node_list = placement_from_view(view, vms, rows=rows)
        plan.hosts_before = current.hosts_used()

        result = self._consolidate(current, vm_list, node_list)
        target = result.placement
        plan.consolidation_summary = result.summary()

        if not (target.fully_assigned and target.is_feasible()):
            # A consolidation result that cannot be executed is discarded; the
            # current placement remains in force (fail-safe behaviour).
            plan.hosts_after = plan.hosts_before
            plan.reason = "consolidation result infeasible; keeping current placement"
            return plan

        plan.hosts_after = target.hosts_used()
        for migration in plan_migrations(current, target, max_migrations=self.max_migrations):
            plan.moves.append(
                (
                    vm_list[migration.vm_index],
                    node_list[migration.source_host],
                    node_list[migration.target_host],
                )
            )

        if self.warm_start and getattr(self.algorithm, "supports_warm_start", False):
            # Persist the *target* pairs: the plan the search converged to is
            # what the next round should resume from, even if execution defers
            # some moves (deferred moves re-surface as dirty nodes).
            for row, vm in enumerate(vm_list):
                self._summary.pairs[vm.vm_id] = node_list[int(target.assignment[row])].node_id

        # Nodes emptied by the executed moves (not merely by the ideal target,
        # which may be partially deferred).
        simulated_population = {node.node_id: node.vm_count for node in participants}
        for _vm, source, destination in plan.moves:
            simulated_population[source.node_id] -= 1
            simulated_population[destination.node_id] += 1
        plan.released_nodes = [
            node
            for node in participants
            if simulated_population[node.node_id] == 0 and node.vm_count > 0
        ]
        return plan

    # ----------------------------------------------------------- incremental
    def _participants(self, eligible: List[PhysicalNode]) -> List[PhysicalNode]:
        """The nodes this round actually consolidates.

        In incremental mode only *dirty* nodes participate: nodes whose VM set
        or measured load changed since the previous round, plus nodes never
        seen before.  The signature snapshot is refreshed every round, so a
        node touched by this round's moves shows up dirty on the next one and
        gets re-packed then.
        """
        if not self.incremental:
            return eligible
        signatures = {node.node_id: self._node_signature(node) for node in eligible}
        if self._node_signatures:
            participants = [
                node
                for node in eligible
                if self._node_signatures.get(node.node_id) != signatures[node.node_id]
            ]
        else:
            participants = eligible
        self._node_signatures = signatures
        return participants

    @staticmethod
    def _node_signature(node: PhysicalNode) -> Tuple:
        """Cheap change-detection key: VM identity set + rounded load vector."""
        return (
            node.vm_count,
            tuple(sorted(vm.vm_id for vm in node.vms)),
            tuple(np.round(np.asarray(node.used_values(), dtype=float), 6).tolist()),
        )

    # ------------------------------------------------------------ warm start
    def _consolidate(self, current, vm_list, node_list):
        """Run the algorithm, warm-started from the persisted summary if possible."""
        if self.warm_start and getattr(self.algorithm, "supports_warm_start", False):
            initial = self._summary.matrix(
                [vm.vm_id for vm in vm_list],
                [node.node_id for node in node_list],
                self.algorithm.parameters,
            )
            if initial is not None:
                return self.algorithm.consolidate(current, initial_pheromone=initial)
        return self.algorithm.consolidate(current)

    # -------------------------------------------------------------- selection
    def _eligible_nodes(self, nodes) -> List[PhysicalNode]:
        """Powered-on hosts allowed to participate in this round.

        Accepts either a node sequence (snapshotted here, order preserved) or
        an already-built :class:`ClusterView`.  Overload screening is
        vectorized over the snapshot: hosts above the overload threshold are
        left to event-based relocation instead.
        """
        view = (
            nodes
            if isinstance(nodes, ClusterView)
            else ClusterView.from_nodes(nodes, sort_by_id=False)
        )
        if len(view) == 0:
            return []
        keep = view.placeable.copy()
        if not self.include_overloaded:
            utilization = np.minimum(view.cpu_utilization(), 1.0)
            keep &= utilization <= self.thresholds.overload
        return [node for node, ok in zip(view.nodes, keep) if ok]


# --------------------------------------------------------------------- bridge
# Every repro.core consolidation algorithm doubles as a reconfiguration policy.

def _policy(
    algorithm: ConsolidationAlgorithm,
    thresholds: Optional[UtilizationThresholds],
    max_migrations: Optional[int],
    include_overloaded: bool,
    warm_start: bool = False,
    incremental: bool = False,
) -> ReconfigurationPolicy:
    return ReconfigurationPolicy(
        algorithm=algorithm,
        thresholds=thresholds,
        max_migrations=max_migrations,
        include_overloaded=include_overloaded,
        warm_start=warm_start,
        incremental=incremental,
    )


@register_policy("reconfiguration", name="aco")
def aco_reconfiguration(
    n_ants: int = 8,
    n_cycles: int = 30,
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ReconfigurationPolicy:
    """Ant Colony Optimization consolidation (the paper's core algorithm)."""
    algorithm = ACOConsolidation(
        ACOParameters(n_ants=int(n_ants), n_cycles=int(n_cycles)), rng=rng
    )
    return _policy(algorithm, thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="aco-vectorized")
def vectorized_aco_reconfiguration(
    n_ants: int = 8,
    n_cycles: int = 30,
    n_colonies: int = 1,
    jobs: int = 1,
    warm_start: bool = True,
    incremental: bool = False,
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ReconfigurationPolicy:
    """Warehouse-scale ACO: batched ant kernels, warm start, dirty subsets."""
    algorithm = VectorizedACOConsolidation(
        ACOParameters(n_ants=int(n_ants), n_cycles=int(n_cycles)),
        rng=rng,
        n_colonies=int(n_colonies),
        jobs=int(jobs),
    )
    return _policy(
        algorithm,
        thresholds,
        max_migrations,
        include_overloaded,
        warm_start=bool(warm_start),
        incremental=bool(incremental),
    )


@register_policy("reconfiguration", name="distributed-aco")
def distributed_aco_reconfiguration(
    n_partitions: int = 2,
    n_ants: int = 8,
    n_cycles: int = 30,
    exchange_round: bool = True,
    jobs: int = 1,
    vectorized: bool = False,
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ReconfigurationPolicy:
    """Partitioned ACO: one independent colony per Group Manager partition."""
    algorithm = DistributedACOConsolidation(
        n_partitions=int(n_partitions),
        parameters=ACOParameters(n_ants=int(n_ants), n_cycles=int(n_cycles)),
        exchange_round=bool(exchange_round),
        rng=rng,
        jobs=int(jobs),
        vectorized=bool(vectorized),
    )
    return _policy(algorithm, thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="ffd")
def ffd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """First-Fit Decreasing consolidation (the paper's greedy baseline)."""
    return _policy(FirstFitDecreasing(), thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="bfd")
def bfd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """Best-Fit Decreasing consolidation (tighter greedy packing)."""
    return _policy(BestFitDecreasing(), thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="wfd")
def wfd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """Worst-Fit Decreasing: the load-balancing anti-baseline (spreads, not packs)."""
    return _policy(WorstFitDecreasing(), thresholds, max_migrations, include_overloaded)
