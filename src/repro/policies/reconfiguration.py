"""Periodic reconfiguration policies (kind ``reconfiguration``).

Paper Section II.C: "reconfiguration policies can be specified which will be
called periodically according to the system administrator specified interval
to further optimize the VM placement of moderately loaded nodes. For example,
a VM consolidation policy can be enabled to weekly optimize the VM placement
by packing VMs on as few nodes as possible."

The :class:`ReconfigurationPolicy` glues three pieces together:

1. select the hosts that may participate (powered-on, not overloaded -- the
   paper restricts reconfiguration to moderately loaded nodes so that hot
   hosts are handled by overload relocation instead);
2. run a consolidation algorithm from :mod:`repro.core` over the
   participating hosts' VMs;
3. translate the new placement into an ordered
   :class:`~repro.policies.decisions.MigrationPlan` and report which hosts the
   plan frees entirely (candidates for suspension).

The **bridge** at the bottom registers every :mod:`repro.core` consolidation
algorithm (ACO, distributed ACO, FFD, BFD, WFD) as a ``reconfiguration``
policy, so scenarios can run e.g. ACO-driven periodic consolidation inside the
live hierarchy by name -- not only offline through the benchmark harness.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine
from repro.core.aco import ACOConsolidation, ACOParameters
from repro.core.base import ConsolidationAlgorithm
from repro.core.distributed_aco import DistributedACOConsolidation
from repro.core.ffd import BestFitDecreasing, FirstFitDecreasing, WorstFitDecreasing
from repro.core.migration_plan import plan_migrations
from repro.core.placement import placement_from_nodes
from repro.policies.decisions import MigrationPlan
from repro.policies.registry import register_policy
from repro.policies.thresholds import UtilizationThresholds
from repro.policies.view import ClusterView


class ReconfigurationPolicy:
    """Periodic consolidation driver used by Group Managers."""

    kind = "reconfiguration"
    name = "consolidation"

    def __init__(
        self,
        algorithm: Optional[ConsolidationAlgorithm] = None,
        thresholds: Optional[UtilizationThresholds] = None,
        max_migrations: Optional[int] = None,
        include_overloaded: bool = False,
    ) -> None:
        self.algorithm = algorithm or ACOConsolidation()
        self.thresholds = thresholds or UtilizationThresholds()
        self.max_migrations = max_migrations
        self.include_overloaded = include_overloaded

    # ------------------------------------------------------------------ run
    def plan(self, nodes: Sequence[PhysicalNode]) -> MigrationPlan:
        """Compute a reconfiguration plan over the given Local Controller hosts."""
        eligible = self._eligible_nodes(nodes)
        plan = MigrationPlan()
        vms: List[VirtualMachine] = [vm for node in eligible for vm in node.vms]
        if len(eligible) < 2 or not vms:
            return plan

        current, vm_list, node_list = placement_from_nodes(eligible, vms)
        plan.hosts_before = current.hosts_used()

        result = self.algorithm.consolidate(current)
        target = result.placement
        plan.consolidation_summary = result.summary()

        if not (target.fully_assigned and target.is_feasible()):
            # A consolidation result that cannot be executed is discarded; the
            # current placement remains in force (fail-safe behaviour).
            plan.hosts_after = plan.hosts_before
            plan.reason = "consolidation result infeasible; keeping current placement"
            return plan

        plan.hosts_after = target.hosts_used()
        for migration in plan_migrations(current, target, max_migrations=self.max_migrations):
            plan.moves.append(
                (
                    vm_list[migration.vm_index],
                    node_list[migration.source_host],
                    node_list[migration.target_host],
                )
            )

        # Nodes emptied by the executed moves (not merely by the ideal target,
        # which may be partially deferred).
        simulated_population = {node.node_id: node.vm_count for node in eligible}
        for _vm, source, destination in plan.moves:
            simulated_population[source.node_id] -= 1
            simulated_population[destination.node_id] += 1
        plan.released_nodes = [
            node
            for node in eligible
            if simulated_population[node.node_id] == 0 and node.vm_count > 0
        ]
        return plan

    # -------------------------------------------------------------- selection
    def _eligible_nodes(self, nodes: Sequence[PhysicalNode]) -> List[PhysicalNode]:
        """Powered-on hosts allowed to participate in this round.

        Overload screening is vectorized over the snapshot: hosts above the
        overload threshold are left to event-based relocation instead.
        """
        view = ClusterView.from_nodes(nodes, sort_by_id=False)
        if len(view) == 0:
            return []
        keep = view.placeable.copy()
        if not self.include_overloaded:
            utilization = np.minimum(view.cpu_utilization(), 1.0)
            keep &= utilization <= self.thresholds.overload
        return [node for node, ok in zip(view.nodes, keep) if ok]


# --------------------------------------------------------------------- bridge
# Every repro.core consolidation algorithm doubles as a reconfiguration policy.

def _policy(
    algorithm: ConsolidationAlgorithm,
    thresholds: Optional[UtilizationThresholds],
    max_migrations: Optional[int],
    include_overloaded: bool,
) -> ReconfigurationPolicy:
    return ReconfigurationPolicy(
        algorithm=algorithm,
        thresholds=thresholds,
        max_migrations=max_migrations,
        include_overloaded=include_overloaded,
    )


@register_policy("reconfiguration", name="aco")
def aco_reconfiguration(
    n_ants: int = 8,
    n_cycles: int = 30,
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ReconfigurationPolicy:
    """Ant Colony Optimization consolidation (the paper's core algorithm)."""
    algorithm = ACOConsolidation(
        ACOParameters(n_ants=int(n_ants), n_cycles=int(n_cycles)), rng=rng
    )
    return _policy(algorithm, thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="distributed-aco")
def distributed_aco_reconfiguration(
    n_partitions: int = 2,
    n_ants: int = 8,
    n_cycles: int = 30,
    exchange_round: bool = True,
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> ReconfigurationPolicy:
    """Partitioned ACO: one independent colony per Group Manager partition."""
    algorithm = DistributedACOConsolidation(
        n_partitions=int(n_partitions),
        parameters=ACOParameters(n_ants=int(n_ants), n_cycles=int(n_cycles)),
        exchange_round=bool(exchange_round),
        rng=rng,
    )
    return _policy(algorithm, thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="ffd")
def ffd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """First-Fit Decreasing consolidation (the paper's greedy baseline)."""
    return _policy(FirstFitDecreasing(), thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="bfd")
def bfd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """Best-Fit Decreasing consolidation (tighter greedy packing)."""
    return _policy(BestFitDecreasing(), thresholds, max_migrations, include_overloaded)


@register_policy("reconfiguration", name="wfd")
def wfd_reconfiguration(
    thresholds: Optional[UtilizationThresholds] = None,
    max_migrations: Optional[int] = None,
    include_overloaded: bool = False,
    rng: Optional[np.random.Generator] = None,  # noqa: ARG001 - deterministic algorithm
) -> ReconfigurationPolicy:
    """Worst-Fit Decreasing: the load-balancing anti-baseline (spreads, not packs)."""
    return _policy(WorstFitDecreasing(), thresholds, max_migrations, include_overloaded)
