"""Live migration model.

Snooze "ships with integrated live migration support" (Section IV) and both
relocation and reconfiguration rely on it.  The reproduction models the cost
of a pre-copy live migration -- duration driven by VM memory size, dirtying
rate and the network bandwidth between the two hosts -- and executes it on the
simulator: the VM occupies *both* hosts for the migration duration (memory is
reserved at the destination while still running at the source), then switches
over after a short downtime.
"""

from repro.migration.model import MigrationCostModel, MigrationExecutor, MigrationStats

__all__ = ["MigrationCostModel", "MigrationExecutor", "MigrationStats"]
