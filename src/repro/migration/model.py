"""Pre-copy live migration: cost model and simulated executor.

The cost model follows the standard pre-copy analysis: each round copies the
memory dirtied during the previous round, so with page-dirty rate ``d`` and
bandwidth ``b`` the total transferred volume is roughly
``M * (1 - (d/b)^k) / (1 - d/b)`` for ``k`` rounds, converging to ``M / (1 -
d/b)`` when ``d < b``.  The reproduction uses the closed form plus a fixed
downtime, which is accurate enough for management-layer experiments (the paper
never models migration internals, only their existence and cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.node import PhysicalNode
from repro.cluster.vm import VirtualMachine, VMState
from repro.simulation.engine import Simulator


@dataclass(frozen=True)
class MigrationCostModel:
    """Estimate duration and transferred volume of one live migration."""

    #: Fraction of the VM's memory dirtied per second relative to bandwidth use.
    dirty_rate_mbps: float = 100.0
    #: Switch-over downtime in seconds (stop-and-copy of the last round).
    downtime_seconds: float = 0.3
    #: Fixed protocol overhead in seconds (connection setup, hypervisor calls).
    setup_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.dirty_rate_mbps < 0 or self.downtime_seconds < 0 or self.setup_seconds < 0:
            raise ValueError("cost model parameters must be non-negative")

    def transferred_mb(self, memory_mb: float, bandwidth_mbps: float) -> float:
        """Total megabytes moved over the network for one migration."""
        if memory_mb < 0:
            raise ValueError("memory_mb must be non-negative")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        ratio = min(self.dirty_rate_mbps / bandwidth_mbps, 0.9)
        return memory_mb / (1.0 - ratio)

    def duration_seconds(self, memory_mb: float, bandwidth_mbps: float) -> float:
        """Wall-clock duration of one migration (setup + copy rounds + downtime)."""
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        transfer_seconds = self.transferred_mb(memory_mb, bandwidth_mbps) * 8.0 / bandwidth_mbps
        return self.setup_seconds + transfer_seconds + self.downtime_seconds


@dataclass
class MigrationStats:
    """Aggregate migration counters for reports."""

    started: int = 0
    completed: int = 0
    failed: int = 0
    total_transferred_mb: float = 0.0
    total_duration_seconds: float = 0.0
    per_vm_counts: dict = field(default_factory=dict)


class MigrationExecutor:
    """Execute live migrations on the simulator, one at a time per VM."""

    def __init__(
        self,
        sim: Simulator,
        cost_model: Optional[MigrationCostModel] = None,
        bandwidth_lookup: Optional[Callable[[str, str], float]] = None,
        default_bandwidth_mbps: float = 1000.0,
    ) -> None:
        self.sim = sim
        self.cost_model = cost_model or MigrationCostModel()
        #: Callable ``(source_id, destination_id) -> Mbps``; defaults to a flat LAN.
        self.bandwidth_lookup = bandwidth_lookup
        self.default_bandwidth_mbps = float(default_bandwidth_mbps)
        self.stats = MigrationStats()
        self._in_flight: set[int] = set()

    # ----------------------------------------------------------------- query
    def is_migrating(self, vm: VirtualMachine) -> bool:
        """True while a migration of this VM is in flight."""
        return vm.vm_id in self._in_flight

    def _bandwidth(self, source: PhysicalNode, destination: PhysicalNode) -> float:
        if self.bandwidth_lookup is not None:
            return float(self.bandwidth_lookup(source.node_id, destination.node_id))
        return self.default_bandwidth_mbps

    # --------------------------------------------------------------- execute
    def migrate(
        self,
        vm: VirtualMachine,
        source: PhysicalNode,
        destination: PhysicalNode,
        on_complete: Optional[Callable[[VirtualMachine], None]] = None,
        on_failed: Optional[Callable[[VirtualMachine, str], None]] = None,
    ) -> bool:
        """Start a live migration; returns False if it cannot start.

        Preconditions: the VM runs on ``source``, is not already migrating and
        the destination is powered on with room for the VM's reservation.  The
        destination capacity is reserved for the whole migration (as a real
        hypervisor does), and the VM switches hosts when it completes.
        """
        if self.is_migrating(vm):
            if on_failed is not None:
                on_failed(vm, "already migrating")
            return False
        if not source.hosts_vm(vm):
            if on_failed is not None:
                on_failed(vm, "vm not on source host")
            return False
        if not destination.is_available_for_placement or not destination.fits(vm):
            if on_failed is not None:
                on_failed(vm, "destination cannot host the vm")
            return False

        bandwidth = self._bandwidth(source, destination)
        duration = self.cost_model.duration_seconds(vm.memory_mb, bandwidth)
        transferred = self.cost_model.transferred_mb(vm.memory_mb, bandwidth)

        # Reserve at the destination immediately (dual occupancy during pre-copy).
        destination.place_vm(vm, now=self.sim.now)
        # place_vm marked the VM as running on the destination; correct the
        # state to reflect the ongoing migration and keep the source as the
        # authoritative host until switch-over.
        vm.state = VMState.MIGRATING
        vm.host_id = source.node_id

        self._in_flight.add(vm.vm_id)
        self.stats.started += 1
        self.stats.total_transferred_mb += transferred
        self.stats.total_duration_seconds += duration
        self.sim.schedule(
            duration, self._finish, vm, source, destination, on_complete, on_failed
        )
        return True

    def _finish(
        self,
        vm: VirtualMachine,
        source: PhysicalNode,
        destination: PhysicalNode,
        on_complete: Optional[Callable[[VirtualMachine], None]],
        on_failed: Optional[Callable[[VirtualMachine, str], None]],
    ) -> None:
        self._in_flight.discard(vm.vm_id)
        if vm.state is not VMState.MIGRATING:
            # The VM finished or failed mid-migration (e.g. source host crash).
            if destination.hosts_vm(vm):
                destination.remove_vm(vm, self.sim.now)
            self.stats.failed += 1
            if on_failed is not None:
                on_failed(vm, f"vm state changed to {vm.state.value} during migration")
            return
        if source.hosts_vm(vm):
            source.remove_vm(vm, self.sim.now)
        vm.state = VMState.RUNNING
        vm.host_id = destination.node_id
        vm.migrations += 1
        self.stats.completed += 1
        self.stats.per_vm_counts[vm.vm_id] = self.stats.per_vm_counts.get(vm.vm_id, 0) + 1
        if on_complete is not None:
            on_complete(vm)
