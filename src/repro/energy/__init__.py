"""Energy management and accounting.

Paper Sections I and III: "In order to conserve energy, Snooze automatically
transitions idle servers into a low-power mode (e.g. suspend)" and wakes them
up "in case either not enough capacity is available to handle incoming VM
placement decisions or overload situations on the LCs occur."

* :class:`~repro.energy.power_manager.PowerStateManager` implements the
  idle-time threshold, the suspend/wake-up transitions (with their latencies)
  and the break-even guard.
* :class:`~repro.energy.accounting.EnergyMeter` integrates per-node power over
  simulated time (Joules), including transition energies and -- for experiment
  E2 -- the energy charged to consolidation algorithm computation.
"""

from repro.energy.accounting import EnergyMeter, EnergyReport
from repro.energy.power_manager import PowerManagerConfig, PowerStateManager

__all__ = [
    "EnergyMeter",
    "EnergyReport",
    "PowerStateManager",
    "PowerManagerConfig",
]
