"""Energy metering: integrate node power over simulated time.

The meter samples each node's instantaneous power whenever something relevant
changes (VM placed/removed, power-state transition, periodic tick) and
integrates with a piecewise-constant rule: energy between two samples is the
power at the *previous* sample times the elapsed time.  This matches how the
consolidation literature (and the authors' GRID'11 evaluation) computes energy
from utilization time series.

Two extra buckets exist beyond per-node energy:

* **transition energy** -- the fixed Joules charged per suspend/wake-up,
  reported separately so E5 can show how much of the saving the transitions
  eat back;
* **computation energy** -- the energy attributed to running a consolidation
  algorithm (its wall-clock runtime times a configurable CPU power), which is
  what lets E2 reproduce "4.1 % of energy ... including energy spent into the
  computation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.cluster.node import PhysicalNode
from repro.simulation.engine import Simulator
from repro.simulation.timers import PeriodicTimer


@dataclass
class EnergyReport:
    """Summary of the energy consumed over a metering period."""

    horizon_seconds: float
    node_energy_joules: Dict[str, float] = field(default_factory=dict)
    transition_energy_joules: float = 0.0
    computation_energy_joules: float = 0.0

    @property
    def infrastructure_energy_joules(self) -> float:
        """Energy drawn by the hosts themselves (excluding algorithm computation)."""
        return sum(self.node_energy_joules.values()) + self.transition_energy_joules

    @property
    def total_energy_joules(self) -> float:
        """Everything: hosts, transitions and algorithm computation."""
        return self.infrastructure_energy_joules + self.computation_energy_joules

    @property
    def total_energy_kwh(self) -> float:
        """Total energy in kilowatt-hours (the unit the paper's figures use)."""
        return self.total_energy_joules / 3.6e6

    def average_power_watts(self) -> float:
        """Mean cluster power over the metering horizon."""
        if self.horizon_seconds <= 0:
            return 0.0
        return self.total_energy_joules / self.horizon_seconds


class EnergyMeter:
    """Integrates the power draw of a set of nodes inside a simulation."""

    SERVICE_NAME = "energy"

    def __init__(
        self,
        sim: Simulator,
        nodes: Iterable[PhysicalNode],
        sample_interval: float = 60.0,
        sleep_power: float = 10.0,
        computation_power_watts: float = 120.0,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sim = sim
        self.nodes = list(nodes)
        self.sleep_power = float(sleep_power)
        self.computation_power_watts = float(computation_power_watts)
        self.start_time = sim.now
        self._energy: Dict[str, float] = {node.node_id: 0.0 for node in self.nodes}
        self._last_power: Dict[str, float] = {
            node.node_id: node.current_power(self.sleep_power) for node in self.nodes
        }
        self._last_time = sim.now
        self.transition_energy = 0.0
        self.computation_energy = 0.0
        self._timer = PeriodicTimer(sim, sample_interval, self.update, name="energy-meter")
        if not sim.has_service(self.SERVICE_NAME):
            sim.register_service(self.SERVICE_NAME, self)

    # -------------------------------------------------------------- sampling
    def update(self) -> None:
        """Integrate energy since the last update and refresh the power snapshot.

        Called periodically by the meter's own timer and explicitly by the
        hierarchy whenever a node's power changes discontinuously (VM placed,
        suspend/wake-up), so discontinuities never smear across an interval.
        """
        now = self.sim.now
        elapsed = now - self._last_time
        if elapsed > 0:
            for node in self.nodes:
                self._energy[node.node_id] += self._last_power[node.node_id] * elapsed
        for node in self.nodes:
            self._last_power[node.node_id] = node.current_power(self.sleep_power)
        self._last_time = now

    def add_transition_energy(self, joules: float) -> None:
        """Charge a suspend/wake-up transition."""
        if joules < 0:
            raise ValueError("transition energy must be non-negative")
        self.transition_energy += float(joules)

    def add_computation_energy(self, joules: float) -> None:
        """Charge consolidation-algorithm computation directly in Joules."""
        if joules < 0:
            raise ValueError("computation energy must be non-negative")
        self.computation_energy += float(joules)

    def charge_computation_runtime(self, runtime_seconds: float) -> float:
        """Charge algorithm runtime at ``computation_power_watts``; returns the Joules added."""
        if runtime_seconds < 0:
            raise ValueError("runtime must be non-negative")
        joules = runtime_seconds * self.computation_power_watts
        self.computation_energy += joules
        return joules

    # ---------------------------------------------------------------- report
    def report(self) -> EnergyReport:
        """Finalize integration up to now and return the accumulated energies."""
        self.update()
        return EnergyReport(
            horizon_seconds=self.sim.now - self.start_time,
            node_energy_joules=dict(self._energy),
            transition_energy_joules=self.transition_energy,
            computation_energy_joules=self.computation_energy,
        )

    def stop(self) -> None:
        """Stop the periodic sampling timer (end of experiment)."""
        self._timer.stop()


def static_placement_energy(
    hosts_used: int,
    average_utilization: float,
    duration_seconds: float,
    p_idle: float = 170.0,
    p_max: float = 250.0,
) -> float:
    """Energy (Joules) of running ``hosts_used`` hosts at a constant utilization.

    The GRID'11 comparison charges each algorithm the energy of the hosts its
    placement keeps on for a fixed evaluation horizon; unused hosts are
    assumed suspended (zero marginal energy).  This helper reproduces that
    accounting for the E2 benchmark without running a full simulation.
    """
    if hosts_used < 0 or duration_seconds < 0:
        raise ValueError("hosts_used and duration must be non-negative")
    if not (0.0 <= average_utilization <= 1.0):
        raise ValueError("average_utilization must be in [0, 1]")
    power_per_host = p_idle + (p_max - p_idle) * average_utilization
    return hosts_used * power_per_host * duration_seconds
