"""Power-state management: suspend idle hosts, wake them on demand.

Paper Section III: "each GM integrates mechanisms to detect idle LCs and
automatically transition them in a low-power state (e.g. suspend) after a
system administrator pre-defined idle-time threshold has been reached.
Moreover, LCs are woken up by the GM in case either not enough capacity is
available to handle incoming VM placement decisions or overload situations on
the LCs occur."

The :class:`PowerStateManager` owns those mechanisms for one Group Manager's
set of Local Controller hosts.  It is deliberately independent of the
messaging layer so it can be unit-tested and reused by the standalone energy
example; the Group Manager component wires its callbacks to actual LC
commands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.node import NodeState, PhysicalNode
from repro.cluster.power import DEFAULT_POWER_STATES, PowerStateSpec
from repro.energy.accounting import EnergyMeter
from repro.simulation.engine import Simulator
from repro.simulation.timers import PeriodicTimer


@dataclass
class PowerManagerConfig:
    """Administrator-facing knobs of the energy manager."""

    #: Seconds a host must stay idle before it is suspended (the paper's
    #: "system administrator pre-defined idle-time threshold").
    idle_time_threshold: float = 120.0
    #: Which low-power state to use (key into DEFAULT_POWER_STATES or a custom spec).
    power_state: str = "suspend"
    #: How often the manager scans for idle hosts.
    check_interval: float = 30.0
    #: Keep at least this many hosts powered on as a placement reserve, so a
    #: burst of submissions does not stall on wake-up latency.
    min_powered_on_hosts: int = 1
    #: If True, refuse to suspend when the expected saving cannot repay the
    #: transition energy within the idle-time threshold (break-even guard).
    respect_break_even: bool = True
    #: Enable/disable the whole mechanism (the paper's "when energy savings are enabled").
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.idle_time_threshold < 0:
            raise ValueError("idle_time_threshold must be non-negative")
        if self.check_interval <= 0:
            raise ValueError("check_interval must be positive")
        if self.min_powered_on_hosts < 0:
            raise ValueError("min_powered_on_hosts must be non-negative")


class PowerStateManager:
    """Suspend idle hosts after a threshold; wake hosts on demand."""

    def __init__(
        self,
        sim: Simulator,
        nodes: List[PhysicalNode],
        config: Optional[PowerManagerConfig] = None,
        spec: Optional[PowerStateSpec] = None,
        energy_meter: Optional[EnergyMeter] = None,
        on_suspend: Optional[Callable[[PhysicalNode], None]] = None,
        on_wakeup: Optional[Callable[[PhysicalNode], None]] = None,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.config = config or PowerManagerConfig()
        self.spec = spec or DEFAULT_POWER_STATES.get(self.config.power_state, DEFAULT_POWER_STATES["suspend"])
        self.energy_meter = energy_meter
        self.on_suspend = on_suspend
        self.on_wakeup = on_wakeup
        self.suspend_count = 0
        self.wakeup_count = 0
        self._timer: Optional[PeriodicTimer] = None
        if self.config.enabled:
            self._timer = PeriodicTimer(
                sim, self.config.check_interval, self.check_idle_hosts, name="power-manager"
            )

    # ------------------------------------------------------------------ scan
    def check_idle_hosts(self) -> List[PhysicalNode]:
        """Suspend every host idle longer than the threshold (honouring the reserve)."""
        if not self.config.enabled:
            return []
        suspended: List[PhysicalNode] = []
        powered_on = [node for node in self.nodes if node.state is NodeState.ON]
        reserve = self.config.min_powered_on_hosts
        for node in sorted(powered_on, key=lambda n: n.node_id, reverse=True):
            if len(powered_on) - len(suspended) <= reserve:
                break
            if not node.is_idle:
                continue
            if node.idle_duration(self.sim.now) < self.config.idle_time_threshold:
                continue
            if self.config.respect_break_even:
                break_even = self.spec.break_even_seconds(node.power_model)
                if break_even == float("inf"):
                    continue
            self.suspend(node)
            suspended.append(node)
        return suspended

    # ----------------------------------------------------------- transitions
    def suspend(self, node: PhysicalNode) -> bool:
        """Begin suspending an idle host; returns False if it cannot be suspended now."""
        if node.state is not NodeState.ON or not node.is_idle:
            return False
        if self.energy_meter is not None:
            self.energy_meter.update()
        node.state = NodeState.SUSPENDING
        node.suspend_count += 1
        self.suspend_count += 1
        if self.energy_meter is not None:
            self.energy_meter.add_transition_energy(self.spec.suspend_energy)
        self.sim.schedule(self.spec.suspend_latency, self._finish_suspend, node)
        return True

    def _finish_suspend(self, node: PhysicalNode) -> None:
        if node.state is NodeState.SUSPENDING:
            if self.energy_meter is not None:
                self.energy_meter.update()
            node.state = NodeState.SUSPENDED
            if self.on_suspend is not None:
                self.on_suspend(node)

    def wakeup(self, node: PhysicalNode, on_ready: Optional[Callable[[PhysicalNode], None]] = None) -> bool:
        """Begin waking a suspended host; ``on_ready`` fires when it is usable again."""
        if node.state is NodeState.SUSPENDED:
            if self.energy_meter is not None:
                self.energy_meter.update()
            node.state = NodeState.WAKING
            node.wakeup_count += 1
            self.wakeup_count += 1
            if self.energy_meter is not None:
                self.energy_meter.add_transition_energy(self.spec.wakeup_energy)
            self.sim.schedule(self.spec.wakeup_latency, self._finish_wakeup, node, on_ready)
            return True
        if node.state is NodeState.SUSPENDING:
            # Caught mid-transition: finish suspending, then immediately wake up.
            self.sim.schedule(
                self.spec.suspend_latency, lambda: self.wakeup(node, on_ready)
            )
            return True
        return False

    def _finish_wakeup(self, node: PhysicalNode, on_ready: Optional[Callable[[PhysicalNode], None]]) -> None:
        if node.state is NodeState.WAKING:
            if self.energy_meter is not None:
                self.energy_meter.update()
            node.state = NodeState.ON
            node.idle_since = self.sim.now
            if self.on_wakeup is not None:
                self.on_wakeup(node)
            if on_ready is not None:
                on_ready(node)

    # ------------------------------------------------------------- capacity
    def wake_one(self, on_ready: Optional[Callable[[PhysicalNode], None]] = None) -> bool:
        """Wake the first suspended host; returns False when none is suspended.

        Used by the Group Manager when a placement fails for lack of
        powered-on capacity: each pending placement that cannot be satisfied
        wakes one more host, so concurrent placements fan out over distinct
        hosts instead of all waiting on the same wake-up.
        """
        for node in self.nodes:
            if node.state is NodeState.SUSPENDED:
                return self.wakeup(node, on_ready)
        return False

    def ensure_capacity(
        self, needed: int, on_ready: Optional[Callable[[PhysicalNode], None]] = None
    ) -> int:
        """Wake enough suspended hosts so at least ``needed`` are (or will be) ON.

        Returns the number of wake-ups initiated.  Used by the Group Manager
        when placement fails for lack of powered-on capacity (Section III).
        """
        available = sum(
            1 for node in self.nodes if node.state in (NodeState.ON, NodeState.WAKING)
        )
        woken = 0
        for node in self.nodes:
            if available + woken >= needed:
                break
            if node.state is NodeState.SUSPENDED:
                if self.wakeup(node, on_ready):
                    woken += 1
        return woken

    def powered_on_count(self) -> int:
        """Number of hosts currently ON."""
        return sum(1 for node in self.nodes if node.state is NodeState.ON)

    def suspended_count(self) -> int:
        """Number of hosts currently suspended (or suspending)."""
        return sum(
            1 for node in self.nodes if node.state in (NodeState.SUSPENDED, NodeState.SUSPENDING)
        )

    def stop(self) -> None:
        """Stop the periodic idle scan (end of experiment)."""
        if self._timer is not None:
            self._timer.stop()
