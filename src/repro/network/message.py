"""Message types exchanged by Snooze components.

Messages carry a :class:`MessageType` tag so receiving components can route
them without inspecting payload structure.  The set of types mirrors the
interactions described in Section II of the paper: heartbeats at every level,
monitoring summaries flowing upward, management commands flowing downward, and
the client-facing VM submission path (Entry Point -> Group Leader -> Group
Manager -> Local Controller).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class MessageType(enum.Enum):
    """Tags for every message exchanged in the Snooze hierarchy."""

    # Heartbeats (paper Section II.D: multicast heartbeat protocols at all levels).
    GL_HEARTBEAT = "gl_heartbeat"
    GM_HEARTBEAT = "gm_heartbeat"
    LC_HEARTBEAT = "lc_heartbeat"

    # Join / self-organization.
    GM_JOIN_REQUEST = "gm_join_request"
    GM_JOIN_ACK = "gm_join_ack"
    LC_ASSIGNMENT_REQUEST = "lc_assignment_request"
    LC_ASSIGNMENT_REPLY = "lc_assignment_reply"
    LC_JOIN_REQUEST = "lc_join_request"
    LC_JOIN_ACK = "lc_join_ack"

    # Monitoring (Section II.B).
    LC_MONITORING = "lc_monitoring"
    GM_SUMMARY = "gm_summary"

    # VM life cycle / client path (Section II.C).
    VM_SUBMIT = "vm_submit"
    VM_SUBMIT_REPLY = "vm_submit_reply"
    VM_DISPATCH = "vm_dispatch"
    VM_PLACEMENT_REQUEST = "vm_placement_request"
    VM_PLACEMENT_REPLY = "vm_placement_reply"
    VM_START = "vm_start"
    VM_START_ACK = "vm_start_ack"
    VM_TERMINATE = "vm_terminate"
    VM_MIGRATE = "vm_migrate"
    VM_MIGRATE_DONE = "vm_migrate_done"

    # Anomaly events (Section II.C: overload / underload relocation).
    OVERLOAD_EVENT = "overload_event"
    UNDERLOAD_EVENT = "underload_event"

    # Energy management (Section III).
    SUSPEND_HOST = "suspend_host"
    WAKEUP_HOST = "wakeup_host"
    HOST_POWER_STATE = "host_power_state"

    # Entry point discovery (client layer).
    GL_DISCOVER = "gl_discover"
    GL_DISCOVER_REPLY = "gl_discover_reply"

    # Generic RPC plumbing.
    RPC_REQUEST = "rpc_request"
    RPC_REPLY = "rpc_reply"


_message_counter = itertools.count()


@dataclass(slots=True)
class Message:
    """An addressed, typed payload travelling through the simulated network.

    ``slots=True``: hundreds of thousands of messages exist per simulated
    minute at fleet scale, so the per-instance ``__dict__`` is worth dropping.
    """

    msg_type: MessageType
    sender: str
    recipient: str
    payload: Any = None
    #: Correlation id for request/response matching (set by the RPC layer).
    correlation_id: Optional[int] = None
    #: Unique id assigned at construction (useful for tracing/debugging).
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    #: Simulated send time, stamped by the transport.
    sent_at: Optional[float] = None
    #: Simulated delivery time, stamped by the transport.
    delivered_at: Optional[float] = None
    #: Causal trace context ``(trace_id, span_id)``.  Stamped by the transport
    #: from the tracer's active context when tracing is enabled (or set
    #: explicitly, e.g. by the RPC layer); the transport re-activates it
    #: around delivery so receiving handlers inherit the sender's causality.
    trace_ctx: Optional[tuple] = None

    def reply(self, msg_type: MessageType, payload: Any = None) -> "Message":
        """Build a response addressed back to the sender, preserving correlation."""
        return Message(
            msg_type=msg_type,
            sender=self.recipient,
            recipient=self.sender,
            payload=payload,
            correlation_id=self.correlation_id,
        )

    @property
    def latency(self) -> Optional[float]:
        """Observed delivery latency (None until delivered)."""
        if self.sent_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.msg_type.value} {self.sender} -> {self.recipient}>"
        )
