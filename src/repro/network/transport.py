"""Simulated unicast transport with latency, jitter, loss and partitions.

Components register an :class:`Endpoint` (a named message handler).  Sending
schedules delivery after a sampled latency; disconnected endpoints silently
drop traffic, which is exactly how the failure-injection experiments model a
crashed Group Leader / Group Manager / Local Controller (the paper's Section
II.E failure scenarios are all "heartbeats are lost").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.network.message import Message
from repro.simulation.engine import Event, Simulator


@dataclass
class NetworkConfig:
    """Latency/loss characteristics of the simulated management network."""

    #: Mean one-way latency in seconds (LAN-scale by default).
    base_latency: float = 0.001
    #: Uniform jitter added on top of the base latency (seconds).
    jitter: float = 0.0005
    #: Probability that a message is silently dropped.
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not (0.0 <= self.loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")


class Endpoint:
    """A registered network participant: a name plus a message handler."""

    def __init__(self, name: str, handler: Callable[[Message], None]) -> None:
        self.name = name
        self.handler = handler
        self.connected = True
        #: Counters for the overhead experiments (messages in/out).
        self.sent_count = 0
        self.received_count = 0

    def deliver(self, message: Message) -> None:
        """Invoke the handler if the endpoint is still connected."""
        if not self.connected:
            return
        self.received_count += 1
        self.handler(message)

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<Endpoint {self.name} {state}>"


class Network:
    """The shared simulated network all hierarchy components attach to."""

    SERVICE_NAME = "network"

    def __init__(
        self,
        sim: Simulator,
        config: Optional[NetworkConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self.rng = rng or np.random.default_rng(0)
        self._endpoints: Dict[str, Endpoint] = {}
        #: Aggregate counters used by the management-overhead experiment (E3/E8).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        #: Coalesce same-instant deliveries into one simulator event when the
        #: network is deterministic (no jitter, no loss).  Behaviour-neutral:
        #: batched messages arrive at the same simulated time, in the same
        #: order, as individually scheduled ones -- only the event count drops.
        self.batch_delivery = True
        self._open_batch: Optional[List[Message]] = None
        self._open_batch_time = -1.0
        self._open_batch_event: Optional[Event] = None
        #: Observability plane + tracer (None when the plane is not built).
        self.obs = None
        self._tracer = None
        if not sim.has_service(self.SERVICE_NAME):
            sim.register_service(self.SERVICE_NAME, self)
        if sim.has_service("observability"):
            self.use_observability(sim.get_service("observability"))

    def use_observability(self, plane) -> None:
        """Attach an observability plane.

        Tracing hooks the per-message path (context stamping / activation);
        metrics are mirrored through a registry *collector* that copies
        :meth:`stats` at exposition time, so the send/deliver hot path carries
        no metric writes at all.
        """
        self.obs = plane
        self._tracer = plane.tracer
        if plane.registry is not None:
            plane.watch_network(self)

    # -------------------------------------------------------------- endpoints
    def register(self, name: str, handler: Callable[[Message], None]) -> Endpoint:
        """Attach a named endpoint; re-registering a name replaces the handler.

        Re-registration is deliberate: a rejoining component (e.g. a Group
        Manager restarting after a failure) reuses its address.
        """
        endpoint = Endpoint(name, handler)
        self._endpoints[name] = endpoint
        return endpoint

    def unregister(self, name: str) -> None:
        """Remove an endpoint entirely (component decommissioned)."""
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> Optional[Endpoint]:
        """Look up an endpoint by name."""
        return self._endpoints.get(name)

    def is_connected(self, name: str) -> bool:
        """True if the endpoint exists and is not disconnected."""
        endpoint = self._endpoints.get(name)
        return endpoint is not None and endpoint.connected

    # -------------------------------------------------------- failure control
    def disconnect(self, name: str) -> None:
        """Cut an endpoint off the network (crash injection): traffic to/from it is dropped."""
        endpoint = self._endpoints.get(name)
        if endpoint is not None:
            endpoint.connected = False

    def reconnect(self, name: str) -> None:
        """Restore a previously disconnected endpoint."""
        endpoint = self._endpoints.get(name)
        if endpoint is not None:
            endpoint.connected = True

    # ------------------------------------------------------------------ send
    def send(
        self,
        message: Message,
        size_bytes: int = 512,
        sender: Optional[Endpoint] = None,
    ) -> bool:
        """Send a unicast message; returns False if it was dropped immediately.

        Immediate drops happen when the sender is disconnected or the message
        is lost; an existing-but-disconnected *recipient* is only discovered at
        delivery time (the sender cannot know), matching real UDP/TCP-on-LAN
        behaviour closely enough for the protocols involved.

        ``sender`` lets a component pass its own registered :class:`Endpoint`
        and skip the directory probe -- at fleet scale the directory holds
        thousands of entries and the per-send hash probe stops being
        cache-resident, so the highest-rate senders (heartbeats, monitoring
        reports) resolve themselves once at registration instead.
        """
        self.messages_sent += 1
        self.bytes_sent += int(size_bytes)
        tracer = self._tracer
        if tracer is not None and message.trace_ctx is None:
            message.trace_ctx = tracer.current
        if sender is None:
            sender = self._endpoints.get(message.sender)
        if sender is not None:
            sender.sent_count += 1
            if not sender.connected:
                self.messages_dropped += 1
                return False
        config = self.config
        if config.loss_probability > 0 and self.rng.random() < config.loss_probability:
            self.messages_dropped += 1
            return False
        message.sent_at = self.sim.now
        latency = config.base_latency
        if config.jitter > 0:
            latency += float(self.rng.uniform(0.0, config.jitter))
        elif self.batch_delivery and config.loss_probability == 0:
            # Deterministic network: every message sent this instant arrives
            # at the same time in send order, so one event can carry them all.
            if (
                self._open_batch is not None
                and self._open_batch_time == self.sim.now
                and self._open_batch_event is not None
                and self._open_batch_event.pending
            ):
                self._open_batch.append(message)
                return True
            batch: List[Message] = [message]
            self._open_batch = batch
            self._open_batch_time = self.sim.now
            self._open_batch_event = self.sim.schedule(
                latency, self._deliver_batch, batch, priority=Simulator.PRIORITY_HIGH
            )
            return True
        self.sim.schedule(latency, self._deliver, message, priority=Simulator.PRIORITY_HIGH)
        return True

    def send_many(self, sender: str, messages: List[Message], size_bytes: int = 512) -> int:
        """Bulk unicast from one sender: the multicast fan-out fast path.

        Equivalent to calling :meth:`send` per message (same counters, same
        stamps, same delivery batching and order), but the per-message sender
        lookup, connectivity check and config reads are hoisted out of the
        loop -- at fleet scale a Group Leader heartbeat fans out to thousands
        of subscribers, and those dictionary probes dominated the publish.
        Falls back to :meth:`send` on lossy/jittery networks, where each
        message needs its own random draws.
        """
        n = len(messages)
        if n == 0:
            return 0
        config = self.config
        if config.loss_probability > 0 or config.jitter > 0 or not self.batch_delivery:
            sent = 0
            for message in messages:
                sent += 1 if self.send(message, size_bytes=size_bytes) else 0
            return sent
        self.messages_sent += n
        self.bytes_sent += int(size_bytes) * n
        tracer = self._tracer
        if tracer is not None:
            ctx = tracer.current
            for message in messages:
                if message.trace_ctx is None:
                    message.trace_ctx = ctx
        endpoint = self._endpoints.get(sender)
        if endpoint is not None:
            endpoint.sent_count += n
            if not endpoint.connected:
                self.messages_dropped += n
                return 0
        now = self.sim.now
        for message in messages:
            message.sent_at = now
        if (
            self._open_batch is not None
            and self._open_batch_time == now
            and self._open_batch_event is not None
            and self._open_batch_event.pending
        ):
            self._open_batch.extend(messages)
            return n
        batch: List[Message] = list(messages)
        self._open_batch = batch
        self._open_batch_time = now
        self._open_batch_event = self.sim.schedule(
            config.base_latency, self._deliver_batch, batch, priority=Simulator.PRIORITY_HIGH
        )
        return n

    def _deliver_batch(self, batch: List[Message]) -> None:
        # Batch-local recipient memo: a same-instant batch at fleet scale
        # carries thousands of messages to a few dozen recipients (every LC's
        # heartbeat to its GM, say), and each probe of the full endpoint
        # directory walks a dictionary too large to stay cache-resident.
        # Connectivity is still read per message from the endpoint object, so
        # a handler disconnecting an endpoint mid-batch drops the rest of its
        # traffic exactly as per-message resolution did.
        resolved: Dict[str, Optional[Endpoint]] = {}
        endpoints_get = self._endpoints.get
        resolved_get = resolved.get
        for message in batch:
            name = message.recipient
            recipient = resolved_get(name)
            if recipient is None and name not in resolved:
                recipient = endpoints_get(name)
                resolved[name] = recipient
            self._deliver(message, recipient)

    def _deliver(self, message: Message, recipient: Optional[Endpoint] = None) -> None:
        if recipient is None:
            recipient = self._endpoints.get(message.recipient)
        if recipient is None or not recipient.connected:
            self.messages_dropped += 1
            return
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        tracer = self._tracer
        if tracer is None:
            recipient.deliver(message)
            return
        # Activate the sender's causal context for the handler and restore it
        # afterwards, so batched same-instant deliveries cannot leak context
        # from one message's handler into the next.
        previous = tracer.activate(message.trace_ctx)
        try:
            recipient.deliver(message)
        finally:
            tracer.restore(previous)

    # ---------------------------------------------------------------- metrics
    def stats(self) -> dict:
        """Counters snapshot for reports."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "endpoints": len(self._endpoints),
        }
