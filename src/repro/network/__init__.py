"""Simulated messaging substrate.

Snooze components are distributed processes talking over a real network
(Java RESTful services plus multicast heartbeats).  In the reproduction they
talk over this simulated substrate instead:

* :class:`~repro.network.message.Message` -- typed, addressed payloads.
* :class:`~repro.network.transport.Network` -- unicast delivery with
  configurable latency, jitter and loss; per-endpoint registration; failure
  injection by disconnecting endpoints.
* :class:`~repro.network.multicast.MulticastGroup` -- the heartbeat channels
  of the paper ("multicast-based heartbeat protocols ... at all levels").
* :class:`~repro.network.rpc.RpcChannel` -- request/response on top of the
  transport, used for VM submission, placement requests and commands.
"""

from repro.network.message import Message, MessageType
from repro.network.transport import Endpoint, Network, NetworkConfig
from repro.network.multicast import MulticastGroup, MulticastRegistry
from repro.network.rpc import RpcChannel, RpcError, RpcTimeout

__all__ = [
    "Message",
    "MessageType",
    "Endpoint",
    "Network",
    "NetworkConfig",
    "MulticastGroup",
    "MulticastRegistry",
    "RpcChannel",
    "RpcError",
    "RpcTimeout",
]
