"""Multicast groups for heartbeat dissemination.

The paper: "To support failure detection and self-organization, multicast-
based heartbeat protocols are implemented at all levels of the hierarchy."
A :class:`MulticastGroup` fans one published message out to every current
subscriber through the unicast transport, so per-subscriber latency, loss and
disconnection still apply (a crashed listener simply stops receiving).

Snooze uses two well-known groups: the Group Leader heartbeat group (joined by
Group Managers, Entry Points and unassigned Local Controllers waiting to
discover the leader) and one heartbeat group per Group Manager (joined by its
Local Controllers).
"""

from __future__ import annotations

from typing import Dict, List

from repro.network.message import Message, MessageType
from repro.network.transport import Network


class MulticastGroup:
    """A named publish/subscribe channel built on the unicast transport."""

    def __init__(self, network: Network, group_name: str) -> None:
        self.network = network
        self.group_name = group_name
        #: Subscription order drives fan-out order (and therefore delivery
        #: order among same-instant sends), so the list is authoritative; the
        #: set exists purely for O(1) membership at fleet scale.
        self._subscribers: List[str] = []
        self._subscriber_set: set = set()
        #: Number of publish calls (for overhead accounting).
        self.publish_count = 0
        self._publish_metric = None

    # ---------------------------------------------------------- subscription
    def subscribe(self, endpoint_name: str) -> None:
        """Add an endpoint to the group (idempotent)."""
        if endpoint_name not in self._subscriber_set:
            self._subscriber_set.add(endpoint_name)
            self._subscribers.append(endpoint_name)

    def unsubscribe(self, endpoint_name: str) -> None:
        """Remove an endpoint from the group (idempotent)."""
        if endpoint_name in self._subscriber_set:
            self._subscriber_set.discard(endpoint_name)
            self._subscribers.remove(endpoint_name)

    @property
    def subscribers(self) -> List[str]:
        """Snapshot of current subscriber endpoint names."""
        return list(self._subscribers)

    def __contains__(self, endpoint_name: str) -> bool:
        return endpoint_name in self._subscriber_set

    def __len__(self) -> int:
        return len(self._subscribers)

    # ---------------------------------------------------------------- publish
    def publish(self, sender: str, msg_type: MessageType, payload=None, size_bytes: int = 256) -> int:
        """Send ``payload`` to every subscriber except the sender; returns fan-out size.

        On a deterministic network (no jitter/loss) the transport coalesces
        the whole fan-out into a single delivery event (see
        :attr:`~repro.network.transport.Network.batch_delivery`), so a
        heartbeat to thousands of Local Controllers costs one simulator event
        instead of one per subscriber.
        """
        self.publish_count += 1
        if self._publish_metric is None:
            obs = self.network.obs
            if obs is not None and obs.registry is not None:
                self._publish_metric = obs.registry.counter(
                    "multicast_publishes_total",
                    help="Publish calls per multicast group.",
                ).labels(group=self.group_name)
        if self._publish_metric is not None:
            self._publish_metric.inc()
        fanout = 0
        send = self.network.send
        for subscriber in list(self._subscribers):
            if subscriber == sender:
                continue
            send(
                Message(msg_type=msg_type, sender=sender, recipient=subscriber, payload=payload),
                size_bytes=size_bytes,
            )
            fanout += 1
        return fanout

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.group_name} subscribers={len(self._subscribers)}>"


class MulticastRegistry:
    """Registry of named multicast groups shared by all components."""

    SERVICE_NAME = "multicast"

    def __init__(self, network: Network) -> None:
        self.network = network
        self._groups: Dict[str, MulticastGroup] = {}
        sim = network.sim
        if not sim.has_service(self.SERVICE_NAME):
            sim.register_service(self.SERVICE_NAME, self)

    def group(self, name: str) -> MulticastGroup:
        """Return the group ``name``, creating it on first use."""
        if name not in self._groups:
            self._groups[name] = MulticastGroup(self.network, name)
        return self._groups[name]

    def groups(self) -> Dict[str, MulticastGroup]:
        """All groups created so far."""
        return dict(self._groups)
