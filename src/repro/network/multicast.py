"""Multicast groups for heartbeat dissemination.

The paper: "To support failure detection and self-organization, multicast-
based heartbeat protocols are implemented at all levels of the hierarchy."
A :class:`MulticastGroup` fans one published message out to every current
subscriber through the unicast transport, so per-subscriber latency, loss and
disconnection still apply (a crashed listener simply stops receiving).

Snooze uses two well-known groups: the Group Leader heartbeat group (joined by
Group Managers, Entry Points and unassigned Local Controllers waiting to
discover the leader) and one heartbeat group per Group Manager (joined by its
Local Controllers).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.network.message import Message, MessageType
from repro.network.transport import Network


class MulticastGroup:
    """A named publish/subscribe channel built on the unicast transport."""

    def __init__(self, network: Network, group_name: str) -> None:
        self.network = network
        self.group_name = group_name
        #: Subscription order drives fan-out order (and therefore delivery
        #: order among same-instant sends), so the list is authoritative; the
        #: set exists purely for O(1) membership at fleet scale.
        self._subscribers: List[str] = []
        self._subscriber_set: set = set()
        #: Number of publish calls (for overhead accounting).
        self.publish_count = 0
        self._publish_metric = None
        #: Members with delivery paused (see :meth:`pause`); they keep their
        #: slot in ``_subscribers`` so resuming restores the exact fan-out
        #: order a continuously subscribed member would have had.
        self._paused: set = set()
        #: Recent publishes ``(time, sender, payload)`` -- the latch a paused
        #: member reads to observe exactly what a delivery would have told it.
        self._latch: deque = deque(maxlen=8)
        #: Paused members whose only interest in the channel is restarting a
        #: failure detector: ``name -> (endpoint, deadline_handle)``.  Each
        #: publish re-arms them in one vectorized call instead of a delivery.
        self._deadline_sinks: Dict[str, Tuple[Any, Any]] = {}

    # ---------------------------------------------------------- subscription
    def subscribe(self, endpoint_name: str) -> None:
        """Add an endpoint to the group (idempotent)."""
        if endpoint_name not in self._subscriber_set:
            self._subscriber_set.add(endpoint_name)
            self._subscribers.append(endpoint_name)

    def unsubscribe(self, endpoint_name: str) -> None:
        """Remove an endpoint from the group (idempotent)."""
        if endpoint_name in self._subscriber_set:
            self._subscriber_set.discard(endpoint_name)
            self._subscribers.remove(endpoint_name)
            self._paused.discard(endpoint_name)
            self._deadline_sinks.pop(endpoint_name, None)

    # --------------------------------------------------------- paused members
    def pause(self, endpoint_name: str, deadline=None) -> None:
        """Stop delivering to a member without giving up its fan-out slot.

        A paused member stays in the subscriber list (so :meth:`resume`
        restores the exact same-instant delivery order an uninterrupted
        subscription would have produced) but receives no messages; it can
        observe missed publishes through :meth:`last_delivered`.  The steady
        state of a fleet-scale deployment is thousands of Local Controllers
        subscribed to a Group Leader channel they only consult while
        *rejoining* -- pausing them removes that entire fan-out from the per-
        heartbeat hot path without changing what any component ever reads.

        ``deadline`` registers a *deadline sink*: a
        :class:`~repro.simulation.batch.DeadlineHandle` whose entry each
        publish re-arms to delivery time (publish time + base latency) plus
        its duration -- the exact deadline the member's handler would have
        set on receipt.  That turns a heartbeat fan-out whose every listener
        only restarts a failure detector into one vectorized table write per
        publish.  Members whose endpoint is disconnected at publish time are
        skipped, mirroring their deliveries being dropped.
        """
        if endpoint_name in self._subscriber_set:
            self._paused.add(endpoint_name)
            if deadline is not None:
                endpoint = self.network.endpoint(endpoint_name)
                self._deadline_sinks[endpoint_name] = (endpoint, deadline)

    def resume(self, endpoint_name: str) -> None:
        """Resume deliveries to a paused member (idempotent)."""
        self._paused.discard(endpoint_name)
        self._deadline_sinks.pop(endpoint_name, None)

    def is_paused(self, endpoint_name: str) -> bool:
        """True if the member is subscribed but currently paused."""
        return endpoint_name in self._paused

    def last_delivered(self, now: float, latency: float) -> Optional[Tuple[str, Any]]:
        """``(sender, payload)`` of the latest publish already delivered.

        "Delivered" means ``publish_time + latency <= now`` -- on a
        deterministic network that is precisely the publish whose message a
        subscribed member would have processed last (same-instant deliveries
        run at high priority, before any equal-time timer/deadline event).
        Returns None when nothing qualifies.
        """
        for time, sender, payload in reversed(self._latch):
            if time + latency <= now:
                return sender, payload
        return None

    @property
    def subscribers(self) -> List[str]:
        """Snapshot of current subscriber endpoint names."""
        return list(self._subscribers)

    def __contains__(self, endpoint_name: str) -> bool:
        return endpoint_name in self._subscriber_set

    def __len__(self) -> int:
        return len(self._subscribers)

    # ---------------------------------------------------------------- publish
    def publish(self, sender: str, msg_type: MessageType, payload=None, size_bytes: int = 256) -> int:
        """Send ``payload`` to every subscriber except the sender; returns fan-out size.

        On a deterministic network (no jitter/loss) the transport coalesces
        the whole fan-out into a single delivery event (see
        :attr:`~repro.network.transport.Network.batch_delivery`), so a
        heartbeat to thousands of Local Controllers costs one simulator event
        instead of one per subscriber.
        """
        self.publish_count += 1
        if self._publish_metric is None:
            obs = self.network.obs
            if obs is not None and obs.registry is not None:
                self._publish_metric = obs.registry.counter(
                    "multicast_publishes_total",
                    help="Publish calls per multicast group.",
                ).labels(group=self.group_name)
        if self._publish_metric is not None:
            self._publish_metric.inc()
        self._latch.append((self.network.sim.now, sender, payload))
        paused = self._paused
        if paused:
            messages = [
                Message(msg_type=msg_type, sender=sender, recipient=subscriber, payload=payload)
                for subscriber in self._subscribers
                if subscriber != sender and subscriber not in paused
            ]
            if self._deadline_sinks and self.network.is_connected(sender):
                self._restart_deadline_sinks()
        else:
            messages = [
                Message(msg_type=msg_type, sender=sender, recipient=subscriber, payload=payload)
                for subscriber in self._subscribers
                if subscriber != sender
            ]
        self.network.send_many(sender, messages, size_bytes=size_bytes)
        return len(messages)

    def _restart_deadline_sinks(self) -> None:
        """Re-arm every connected sink's failure detector at delivery time.

        Handles are collected in subscriber (fan-out) order, so the restart
        stamps -- the tie-break for simultaneous expiries -- match what the
        per-delivery restarts of an unpaused fan-out would have produced.
        """
        base = self.network.sim.now + self.network.config.base_latency
        sinks = self._deadline_sinks
        tables: Dict[int, Tuple[Any, List[Any]]] = {}
        for name in self._subscribers:
            sink = sinks.get(name)
            if sink is None:
                continue
            endpoint, handle = sink
            if endpoint is None or not endpoint.connected:
                continue  # its delivery would have been dropped
            entry = tables.get(id(handle.table))
            if entry is None:
                tables[id(handle.table)] = (handle.table, [handle])
            else:
                entry[1].append(handle)
        for table, handles in tables.values():
            table.restart_handles(handles, base)

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.group_name} subscribers={len(self._subscribers)}>"


class MulticastRegistry:
    """Registry of named multicast groups shared by all components."""

    SERVICE_NAME = "multicast"

    def __init__(self, network: Network) -> None:
        self.network = network
        self._groups: Dict[str, MulticastGroup] = {}
        sim = network.sim
        if not sim.has_service(self.SERVICE_NAME):
            sim.register_service(self.SERVICE_NAME, self)

    def group(self, name: str) -> MulticastGroup:
        """Return the group ``name``, creating it on first use."""
        if name not in self._groups:
            self._groups[name] = MulticastGroup(self.network, name)
        return self._groups[name]

    def groups(self) -> Dict[str, MulticastGroup]:
        """All groups created so far."""
        return dict(self._groups)
