"""Request/response RPC on top of the simulated transport.

Snooze's components expose RESTful services; in the reproduction the
equivalent is a thin RPC layer: a caller sends an ``RPC_REQUEST`` carrying an
operation name and arguments, the callee's registered operation handler runs
and its return value travels back in an ``RPC_REPLY``.  Calls carry a timeout
so callers can survive crashed callees (e.g. the Group Leader probing a failed
Group Manager during dispatching).

Because the whole simulation is single-threaded, RPC completion is delivered
via callbacks rather than blocking: ``call(..., on_reply=..., on_timeout=...)``.
The hierarchy code is written in this continuation style throughout.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from repro.network.message import Message, MessageType
from repro.network.transport import Network
from repro.simulation.batch import DeadlineTable
from repro.simulation.engine import Event


class RpcError(RuntimeError):
    """Raised locally for invalid RPC usage (unknown operation, double completion)."""


class RpcTimeout(RuntimeError):
    """Passed to ``on_timeout`` callbacks when a call expires without a reply."""


class RpcChannel:
    """Per-component RPC endpoint: dispatches incoming requests, tracks outgoing calls."""

    _correlation = itertools.count(1)

    def __init__(self, network: Network, owner_name: str) -> None:
        self.network = network
        self.sim = network.sim
        self.owner_name = owner_name
        self._operations: Dict[str, Callable[..., Any]] = {}
        self._pending: Dict[int, dict] = {}
        self._timeout_table: Optional[DeadlineTable] = None

    # -------------------------------------------------------------- serve side
    def register_operation(self, name: str, handler: Callable[..., Any]) -> None:
        """Expose ``handler(**kwargs)`` under operation ``name``."""
        if name in self._operations:
            raise RpcError(f"operation {name!r} already registered on {self.owner_name}")
        self._operations[name] = handler

    def handle_message(self, message: Message) -> bool:
        """Process an RPC message; returns True if it was consumed.

        Component message handlers call this first and fall through to their
        own protocol handling when it returns False.
        """
        if message.msg_type is MessageType.RPC_REQUEST:
            self._serve(message)
            return True
        if message.msg_type is MessageType.RPC_REPLY:
            self._complete(message)
            return True
        return False

    def _serve(self, message: Message) -> None:
        operation = message.payload.get("operation")
        kwargs = message.payload.get("kwargs", {})
        handler = self._operations.get(operation)
        if handler is None:
            reply_payload = {"ok": False, "error": f"unknown operation {operation!r}"}
        else:
            try:
                result = handler(**kwargs)
            except Exception as exc:  # deliberate: faults travel back to the caller
                reply_payload = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            else:
                if isinstance(result, Event):
                    # Deferred reply: the handler needs to wait for downstream
                    # work (e.g. a Group Manager probing its Local Controllers)
                    # before it can answer.  The reply is sent when the event
                    # is triggered with the result value.
                    result.add_listener(
                        lambda event, ok: self.network.send(
                            message.reply(
                                MessageType.RPC_REPLY,
                                {"ok": ok, "result": event.value}
                                if ok
                                else {"ok": False, "error": "deferred reply cancelled"},
                            )
                        )
                    )
                    return
                reply_payload = {"ok": True, "result": result}
        self.network.send(message.reply(MessageType.RPC_REPLY, reply_payload))

    # --------------------------------------------------------------- call side
    def call(
        self,
        recipient: str,
        operation: str,
        kwargs: Optional[dict] = None,
        on_reply: Optional[Callable[[Any], None]] = None,
        on_error: Optional[Callable[[str], None]] = None,
        on_timeout: Optional[Callable[[], None]] = None,
        timeout: float = 5.0,
        trace_ctx: Optional[tuple] = None,
    ) -> int:
        """Invoke ``operation`` on ``recipient``; returns the correlation id.

        Exactly one of the three callbacks fires per call: ``on_reply(result)``
        on success, ``on_error(message)`` if the remote handler raised or the
        operation is unknown, ``on_timeout()`` if no reply arrives in time.

        ``trace_ctx`` pins the request to a specific causal span; without it
        the transport stamps whatever context is active at send time, which is
        wrong for calls issued outside the originating chain (retries after a
        timeout, wake-up continuations).
        """
        correlation_id = next(self._correlation)
        message = Message(
            msg_type=MessageType.RPC_REQUEST,
            sender=self.owner_name,
            recipient=recipient,
            payload={"operation": operation, "kwargs": kwargs or {}},
            correlation_id=correlation_id,
            trace_ctx=trace_ctx,
        )
        record = {
            "on_reply": on_reply,
            "on_error": on_error,
            "on_timeout": on_timeout,
            "timer": None,
        }
        self._pending[correlation_id] = record
        if timeout is not None and timeout > 0:
            # A pooled deadline instead of a per-call heap event: almost every
            # call completes (reply cancels the timer), and per-event Timeout
            # cancellation leaves a tombstone in the event heap until the
            # deadline passes -- at fleet scale thousands of them at any
            # instant, growing every heap operation's log factor.
            record["timer"] = self._timeouts().arm(timeout, self._expire, correlation_id)
        self.network.send(message)
        return correlation_id

    def _timeouts(self) -> DeadlineTable:
        table = self._timeout_table
        if table is None:
            table = self._timeout_table = DeadlineTable.shared(self.sim, "rpc-timeouts")
        return table

    def _expire(self, correlation_id: int) -> None:
        record = self._pending.pop(correlation_id, None)
        if record is None:
            return
        if record["timer"] is not None:
            record["timer"].release()
        if record["on_timeout"] is not None:
            record["on_timeout"]()

    def _complete(self, message: Message) -> None:
        record = self._pending.pop(message.correlation_id, None)
        if record is None:
            # Late reply after timeout: ignore (the caller already moved on).
            return
        if record["timer"] is not None:
            record["timer"].release()
        payload = message.payload or {}
        if payload.get("ok"):
            if record["on_reply"] is not None:
                record["on_reply"](payload.get("result"))
        else:
            if record["on_error"] is not None:
                record["on_error"](payload.get("error", "unknown error"))

    # ------------------------------------------------------------------ misc
    @property
    def pending_calls(self) -> int:
        """Number of calls still waiting for a reply."""
        return len(self._pending)

    def cancel_all(self) -> None:
        """Drop all outstanding calls without firing callbacks (owner crashed)."""
        for record in self._pending.values():
            if record["timer"] is not None:
                record["timer"].release()
        self._pending.clear()
