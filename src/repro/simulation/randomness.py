"""Reproducible named random streams.

Every stochastic component of the reproduction (workload generation, ACO
decision rule, heartbeat jitter, network latency noise, failure injection)
draws from its own named stream derived from a single experiment seed via
``numpy.random.SeedSequence.spawn``-style key hashing.  Two properties follow:

* the whole experiment is reproducible from one integer seed, and
* adding randomness to one subsystem does not perturb the draws seen by the
  others (streams are independent), so ablations stay comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np


def spawn_seed_sequences(base_seed: int, count: int) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of ``base_seed`` via ``SeedSequence.spawn``.

    This is the one sanctioned way to derive per-run randomness wherever runs
    are *enumerated* (sweeps, replicate loops, paired algorithm comparisons).
    ``seed + i`` arithmetic must not be used for that purpose: nearby integer
    seeds feed nearly identical entropy pools into the bit generator, so
    parallel runs can end up with subtly correlated streams.  Spawned child
    sequences carry distinct ``spawn_key``s and are statistically independent
    by construction.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return np.random.SeedSequence(int(base_seed)).spawn(int(count))


def derive_run_seeds(base_seed: int, count: int) -> List[int]:
    """``count`` independent integer seeds for enumerated runs.

    Each seed is drawn from its own spawned child of ``base_seed`` (see
    :func:`spawn_seed_sequences`), so the list is deterministic in
    ``(base_seed, count)`` yet free of the stream-correlation hazard of
    ``[base_seed + i for i in range(count)]``.
    """
    return [
        int(child.generate_state(1, dtype=np.uint64)[0])
        for child in spawn_seed_sequences(base_seed, count)
    ]


def spawn_generator(base_seed: int, index: int = 0) -> np.random.Generator:
    """A generator seeded from the ``index``-th spawned child of ``base_seed``.

    Replaces ad-hoc ``default_rng(seed + offset)`` derivations at call sites
    that need a second stream decorrelated from ``default_rng(base_seed)``.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    children = np.random.SeedSequence(int(base_seed)).spawn(int(index) + 1)
    return np.random.default_rng(children[index])


class RandomRouter:
    """Factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._base = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically on first use."""
        if name not in self._streams:
            # Deterministic child sequence keyed by the stream name so that the
            # creation *order* of streams does not matter.
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._base.entropy, spawn_key=tuple(int(b) for b in key)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> Dict[str, np.random.Generator]:
        """Materialize several streams at once."""
        return {name: self.stream(name) for name in names}

    def reseed(self, seed: int) -> None:
        """Reset the router with a new base seed, discarding all existing streams."""
        self.seed = int(seed)
        self._base = np.random.SeedSequence(self.seed)
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomRouter seed={self.seed} streams={sorted(self._streams)}>"
