"""Reproducible named random streams.

Every stochastic component of the reproduction (workload generation, ACO
decision rule, heartbeat jitter, network latency noise, failure injection)
draws from its own named stream derived from a single experiment seed via
``numpy.random.SeedSequence.spawn``-style key hashing.  Two properties follow:

* the whole experiment is reproducible from one integer seed, and
* adding randomness to one subsystem does not perturb the draws seen by the
  others (streams are independent), so ablations stay comparable.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np


class RandomRouter:
    """Factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._base = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically on first use."""
        if name not in self._streams:
            # Deterministic child sequence keyed by the stream name so that the
            # creation *order* of streams does not matter.
            key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._base.entropy, spawn_key=tuple(int(b) for b in key)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> Dict[str, np.random.Generator]:
        """Materialize several streams at once."""
        return {name: self.stream(name) for name in names}

    def reseed(self, seed: int) -> None:
        """Reset the router with a new base seed, discarding all existing streams."""
        self.seed = int(seed)
        self._base = np.random.SeedSequence(self.seed)
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomRouter seed={self.seed} streams={sorted(self._streams)}>"
