"""The discrete-event simulation engine.

The engine is deliberately small and deterministic:

* Events are ordered by ``(time, priority, sequence)``.  The monotonically
  increasing sequence number guarantees FIFO ordering among events scheduled
  for the same instant with the same priority, which keeps runs reproducible
  regardless of heap tie-breaking.
* Callbacks run synchronously; anything they schedule is processed in the
  same :meth:`Simulator.run` loop.
* Cancelling an event is O(1): the event is flagged and skipped when popped
  (the standard "lazy deletion" technique for binary-heap schedulers).

The engine knows nothing about VMs or clouds -- higher layers (network,
hierarchy, energy accounting) are built on top of it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterator, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the simulator (e.g. scheduling in the past)."""


class EventCancelled(RuntimeError):
    """Raised when waiting on an event that has been cancelled."""


@dataclass(order=False)
class Event:
    """A callback scheduled at a point in simulated time.

    Events support *listeners*: other parties (typically
    :class:`~repro.simulation.process.Process` instances) may register a
    callable invoked when the event fires or is cancelled.  This is what lets
    processes ``yield`` an event and be resumed when it triggers.
    """

    time: float
    priority: int
    seq: int
    callback: Optional[Callable[..., Any]]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    cancelled: bool = False
    fired: bool = False
    #: Value produced by the callback (or set explicitly via :meth:`succeed`).
    value: Any = None
    _listeners: list = field(default_factory=list)

    def cancel(self) -> None:
        """Cancel the event.  A cancelled event never runs its callback.

        Listeners are notified with ``ok=False`` so that waiting processes
        receive an :class:`EventCancelled` error instead of hanging forever.
        """
        if self.fired:
            return
        self.cancelled = True
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            listener(self, False)

    def add_listener(self, listener: Callable[["Event", bool], None]) -> None:
        """Register ``listener(event, ok)`` called on fire (ok=True) or cancel (ok=False)."""
        if self.fired:
            listener(self, True)
        elif self.cancelled:
            listener(self, False)
        else:
            self._listeners.append(listener)

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not (self.fired or self.cancelled)

    # Internal -------------------------------------------------------------
    def _fire(self) -> None:
        self.fired = True
        if self.callback is not None:
            self.value = self.callback(*self.args, **self.kwargs)
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            listener(self, True)

    def __lt__(self, other: "Event") -> bool:  # heap ordering
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)


class Simulator:
    """The event loop: a priority queue of :class:`Event` plus a clock.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, print, "hello at t=5")
        sim.run(until=10.0)

    The simulator also carries a registry of named *services* so that loosely
    coupled subsystems (network, energy accounting, metrics) can find each
    other without global state.
    """

    #: Default priority for ordinary events.
    PRIORITY_NORMAL = 0
    #: Priority used by the network layer so message deliveries at time t
    #: precede timers scheduled for the same instant.
    PRIORITY_HIGH = -10
    #: Priority for bookkeeping that should run after everything else at t.
    PRIORITY_LOW = 10

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulated time -- a plain attribute (read on every hot-path
        #: operation; property dispatch is measurable at fleet scale).
        self.now = float(start_time)
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._services: dict[str, Any] = {}
        self._running = False
        self._processed = 0
        #: Optional :class:`~repro.obs.profiling.EventLoopProfiler`.  When set
        #: (before the first run), every handler invocation is timed with
        #: ``perf_counter``; when None the loop pays one predicate per event.
        self.profiler = None

    # ------------------------------------------------------------------ time
    @property
    def processed_events(self) -> int:
        """Number of events executed so far (useful for overhead metrics)."""
        return self._processed

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Optional[Callable[..., Any]] = None,
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        return self.schedule_at(self.now + delay, callback, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        callback: Optional[Callable[..., Any]] = None,
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past (t={time} < now={self.now})"
            )
        event = Event(
            time=float(time),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
        )
        heapq.heappush(self._queue, event)
        return event

    def create_at(
        self,
        time: float,
        callback: Optional[Callable[..., Any]] = None,
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Build an event -- drawing its sequence number now -- without queueing it.

        Paired with :meth:`enqueue`.  Callers that know a whole series of
        future events up front (a scenario's arrival list, say) can draw the
        tie-breaking sequence numbers immediately, preserving the exact firing
        order that pre-scheduling every event would give, while keeping only
        O(1) of them in the heap at a time.
        """
        if math.isnan(time):
            raise SimulationError("cannot create an event at NaN time")
        return Event(
            time=float(time),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
        )

    def enqueue(self, event: Event) -> Event:
        """Queue an event previously built with :meth:`create_at`."""
        if event.time < self.now:
            raise SimulationError(
                f"cannot enqueue event in the past (t={event.time} < now={self.now})"
            )
        heapq.heappush(self._queue, event)
        return event

    def event(self) -> Event:
        """Create an unscheduled event that fires only when :meth:`trigger` is called.

        Used as a one-shot signal / future: processes can wait on it and any
        code can later complete it with a value.
        """
        return Event(
            time=math.inf,
            priority=self.PRIORITY_NORMAL,
            seq=next(self._seq),
            callback=None,
        )

    def trigger(self, event: Event, value: Any = None) -> None:
        """Complete an unscheduled event *now*, delivering ``value`` to waiters."""
        if not event.pending:
            raise SimulationError("event already fired or cancelled")
        event.time = self.now
        event.value = value
        event.fired = True
        listeners, event._listeners = event._listeners, []
        for listener in listeners:
            listener(event, True)

    # ---------------------------------------------------------------- running
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` processed.

        Returns the simulation time at which the run stopped.  When ``until``
        is given, the clock is advanced to exactly ``until`` even if the last
        event fired earlier (so that energy integration over a fixed horizon
        is exact).
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        processed_this_run = 0
        profiler = self.profiler  # hoisted: attach before the first run
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and processed_this_run >= max_events:
                    break
                heapq.heappop(self._queue)
                self.now = event.time
                if profiler is None:
                    event._fire()
                else:
                    begin = perf_counter()
                    event._fire()
                    profiler.record(event.callback, perf_counter() - begin)
                self._processed += 1
                processed_this_run += 1
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = float(until)
        return self.now

    def step(self) -> Optional[Event]:
        """Execute the single next pending event; return it (or None if queue empty)."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            if self.profiler is None:
                event._fire()
            else:
                begin = perf_counter()
                event._fire()
                self.profiler.record(event.callback, perf_counter() - begin)
            self._processed += 1
            return event
        return None

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none are scheduled."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else math.inf

    def pending_events(self) -> Iterator[Event]:
        """Iterate over not-yet-cancelled queued events (diagnostics only)."""
        return (event for event in self._queue if not event.cancelled)

    def __len__(self) -> int:
        return sum(1 for _ in self.pending_events())

    # --------------------------------------------------------------- services
    def register_service(self, name: str, service: Any) -> None:
        """Expose a shared subsystem (network, energy meter, metrics) under ``name``."""
        if name in self._services:
            raise SimulationError(f"service {name!r} already registered")
        self._services[name] = service

    def get_service(self, name: str) -> Any:
        """Fetch a previously registered service; raises ``KeyError`` if missing."""
        return self._services[name]

    def has_service(self, name: str) -> bool:
        """True if a service was registered under ``name``."""
        return name in self._services

def schedule_series(
    sim: Simulator,
    items: "list[tuple[float, Any]]",
    action: Callable[[Any], Any],
) -> None:
    """Fire ``action(payload)`` at each ``(time, payload)``, one heap entry at a time.

    Drop-in replacement for scheduling every item with :meth:`Simulator.schedule_at`
    up front: each item's event (and its tie-breaking sequence number) is created
    immediately, in list order, so firing order -- including order among
    same-instant items and against unrelated events -- is identical.  But only
    the next pending item sits in the event heap; each firing enqueues its
    successor.  A fleet-scale scenario pre-scheduling thousands of VM arrivals
    otherwise keeps the heap large for the whole run, and every unrelated heap
    operation pays the extra ``log n``.
    """
    events = [sim.create_at(time, None) for time, _ in items]
    payloads = [payload for _, payload in items]
    order = sorted(range(len(events)), key=lambda i: (events[i].time, events[i].seq))

    def _fire(rank: int) -> None:
        if rank + 1 < len(order):
            sim.enqueue(events[order[rank + 1]])
        action(payloads[order[rank]])

    for rank, index in enumerate(order):
        event = events[index]
        event.callback = _fire
        event.args = (rank,)
    if order:
        sim.enqueue(events[order[0]])
