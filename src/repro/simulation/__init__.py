"""Discrete-event simulation kernel.

This package provides the substrate on which the whole reproduction runs:

* :class:`~repro.simulation.engine.Simulator` -- the event loop and clock.
* :class:`~repro.simulation.engine.Event` -- a scheduled callback.
* :class:`~repro.simulation.process.Process` -- generator-based cooperative
  processes (``yield`` a delay to sleep, ``yield`` an event to wait on it).
* :class:`~repro.simulation.timers.PeriodicTimer` -- repeating callbacks used
  for heartbeats, monitoring intervals and reconfiguration periods.
* :class:`~repro.simulation.randomness.RandomRouter` -- named, reproducible
  random streams derived from a single seed.

The paper's evaluation was performed on a real testbed (Grid'5000); this
kernel is the substitution that lets the same management-layer protocols run
on a laptop (see DESIGN.md section 1).
"""

from repro.simulation.engine import Event, EventCancelled, Simulator, SimulationError
from repro.simulation.process import Process, ProcessKilled, sleep, wait
from repro.simulation.timers import PeriodicTimer, Timeout
from repro.simulation.randomness import RandomRouter

__all__ = [
    "Event",
    "EventCancelled",
    "Simulator",
    "SimulationError",
    "Process",
    "ProcessKilled",
    "sleep",
    "wait",
    "PeriodicTimer",
    "Timeout",
    "RandomRouter",
]
