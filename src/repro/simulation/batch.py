"""Batched periodic events and coalesced failure-detection deadlines.

At fleet scale the simulator's event queue is dominated by two per-component
patterns:

* every Local Controller owns its own :class:`~repro.simulation.timers.PeriodicTimer`
  per periodic duty (monitoring tick, heartbeat send) -- thousands of heap
  events per interval that all fire at the same instants;
* every heartbeat *restarts* a :class:`~repro.simulation.timers.Timeout`
  (cancel + push), so a healthy fleet churns the heap at heartbeat rate for
  deadlines that almost never expire.

This module replaces both patterns without changing observable behaviour:

:class:`CoalescedTicker`
    groups periodic registrations that share an ``(interval, next-fire-time)``
    grid into **one** self-rescheduling event per group.  Members fire in
    registration order -- exactly the order per-component timers created at
    the same instants would have fired -- and may register *phased* callback
    tuples (all members run phase 0, then all run phase 1, ...) so fleet-wide
    work such as monitoring can sample everything before reporting anything.

:class:`DeadlineTable`
    a liveness bitmap plus a float64 deadline array with **one** pending
    simulator event at the earliest armed deadline.  Restarting a deadline is
    an O(1) array write; expiries fire at exactly the same simulated time a
    per-entry :class:`Timeout` would have fired, tie-broken by restart order.
    Deadline *extensions* are lazy: the pending event fires, finds nothing
    due, and re-arms at the new minimum.

Both are drop-in life-cycle citizens: handles expose ``stop()`` /
``cancel()`` / ``restart()`` so :class:`~repro.hierarchy.common.Component`
teardown treats them like the timers they replace.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulation.engine import Event, SimulationError, Simulator

#: Initial entry capacity of a deadline table (grown geometrically).
_INITIAL_DEADLINES = 32


class TickHandle:
    """One member of a coalesced tick group (quacks like a PeriodicTimer)."""

    __slots__ = ("callbacks", "name", "fired_count", "_running")

    def __init__(self, callbacks: Tuple[Callable[[], Any], ...], name: str) -> None:
        self.callbacks = callbacks
        self.name = name
        self.fired_count = 0
        self._running = True

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return self._running

    def stop(self) -> None:
        """Stop firing; the group drops the member at its next tick."""
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"<TickHandle {self.name} {state}>"


class _TickGroup:
    """One event chain firing every member sharing an (interval, grid) pair."""

    def __init__(self, ticker: "CoalescedTicker", interval: float, first_fire: float) -> None:
        self.ticker = ticker
        self.interval = float(interval)
        self.next_fire = float(first_fire)
        self.members: List[TickHandle] = []
        self._pending: Optional[Event] = None
        self._pending = ticker.sim.schedule_at(first_fire, self._tick)

    def _tick(self) -> None:
        self.members = [member for member in self.members if member._running]
        if not self.members:
            self.ticker._drop_group(self)
            self._pending = None
            return
        phases = max(len(member.callbacks) for member in self.members)
        profiler = self.ticker.profiler
        for phase in range(phases):
            for member in self.members:
                if member._running and phase < len(member.callbacks):
                    if phase == 0:
                        member.fired_count += 1
                    if profiler is None:
                        member.callbacks[phase]()
                    else:
                        # Coalesced members share one kernel event; attribute
                        # wall clock to each member callback individually.
                        begin = perf_counter()
                        member.callbacks[phase]()
                        profiler.record(member.callbacks[phase], perf_counter() - begin)
        self.next_fire = self.ticker.sim.now + self.interval
        self._pending = self.ticker.sim.schedule_at(self.next_fire, self._tick)

    def cancel(self) -> None:
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = None


class CoalescedTicker:
    """Registry of coalesced periodic tick groups for one simulator."""

    SERVICE_NAME = "coalesced-ticker"

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._groups: Dict[Tuple[float, float], _TickGroup] = {}
        #: Optional :class:`~repro.obs.profiling.EventLoopProfiler` timing
        #: each member callback (a group tick is one kernel event).
        self.profiler = None

    @classmethod
    def shared(cls, sim: Simulator) -> "CoalescedTicker":
        """The per-simulation shared ticker (created on first use)."""
        if sim.has_service(cls.SERVICE_NAME):
            return sim.get_service(cls.SERVICE_NAME)
        ticker = cls(sim)
        sim.register_service(cls.SERVICE_NAME, ticker)
        return ticker

    def register(
        self,
        interval: float,
        *callbacks: Callable[[], Any],
        name: Optional[str] = None,
    ) -> TickHandle:
        """Join (or create) the group firing every ``interval`` seconds from now.

        ``callbacks`` are the member's phases; with several, phase ``k`` of
        every member runs before phase ``k + 1`` of any member.  The first
        fire is ``interval`` seconds from now -- registrations made at the
        same instant with the same interval share one group and fire in
        registration order, matching the order dedicated per-member timers
        created back-to-back would have fired.
        """
        if interval <= 0:
            raise SimulationError(f"tick interval must be positive, got {interval}")
        if not callbacks:
            raise SimulationError("a tick registration needs at least one callback")
        first_fire = self.sim.now + float(interval)
        key = (float(interval), first_fire)
        group = self._groups.get(key)
        if group is None or group.next_fire != first_fire:
            group = _TickGroup(self, interval, first_fire)
            self._groups[key] = group
        handle = TickHandle(
            tuple(callbacks), name or getattr(callbacks[0], "__name__", "tick")
        )
        group.members.append(handle)
        return handle

    def _drop_group(self, group: _TickGroup) -> None:
        for key, candidate in list(self._groups.items()):
            if candidate is group:
                del self._groups[key]

    def group_count(self) -> int:
        """Number of live tick groups (diagnostics)."""
        return len(self._groups)

    def member_count(self) -> int:
        """Number of registered running members across groups (diagnostics)."""
        return sum(
            sum(1 for member in group.members if member._running)
            for group in self._groups.values()
        )


class DeadlineHandle:
    """A restartable deadline inside a :class:`DeadlineTable` (quacks like Timeout)."""

    __slots__ = ("table", "index", "generation")

    def __init__(self, table: "DeadlineTable", index: int, generation: int) -> None:
        self.table = table
        self.index = index
        self.generation = generation

    def _valid(self) -> bool:
        return self.table._generations[self.index] == self.generation

    @property
    def armed(self) -> bool:
        """True while the deadline is counting down."""
        return self._valid() and bool(self.table._active[self.index])

    @property
    def expired(self) -> bool:
        """True once the deadline fired (and was not re-armed since)."""
        return self._valid() and bool(self.table._expired[self.index])

    def restart(self, duration: Optional[float] = None) -> None:
        """(Re-)arm the deadline ``duration`` (default: current duration) from now."""
        if not self._valid():
            raise SimulationError("deadline handle was released")
        self.table._restart(self.index, duration)

    def restart_later(self, base: float) -> None:
        """Re-arm to ``base + duration``, where ``base`` may lie in the future.

        The unicast twin of :meth:`DeadlineTable.restart_handles`: a
        heartbeat *sender* re-arms its peer's failure detector at delivery
        time (send time + latency) without materializing the message.  A
        released or recycled handle is skipped silently -- exactly as the
        peer dropping the delivery of an already-forgotten sender would be.
        """
        if self._valid():
            self.table._restart(self.index, None, base)

    def cancel(self) -> None:
        """Disarm without firing (idempotent; the entry stays claimable via restart)."""
        if self._valid():
            self.table._deactivate(self.index)

    def release(self) -> None:
        """Disarm and return the entry to the table's free pool (handle goes inert).

        Discard path for detectors that will never be restarted (a removed
        peer, a component tearing down) so long-running churny deployments do
        not grow the deadline arrays monotonically.
        """
        self.table.release(self)


class DeadlineTable:
    """Vectorized pool of failure-detection deadlines with one pending event.

    State is columnar: a float64 deadline per entry, a liveness bitmap, and a
    restart stamp for deterministic tie-breaking.  The table keeps at most one
    scheduled simulator event -- at the earliest armed deadline -- and re-arms
    lazily, so the steady-state cost of a fleet of constantly-refreshed
    failure detectors is an array write per heartbeat instead of a heap
    cancel + push per heartbeat.
    """

    @classmethod
    def shared(cls, sim: Simulator, name: str) -> "DeadlineTable":
        """A named per-simulation shared table (created on first use)."""
        service = f"deadline-table:{name}"
        if sim.has_service(service):
            return sim.get_service(service)
        table = cls(sim, name=name)
        sim.register_service(service, table)
        return table

    def __init__(self, sim: Simulator, name: str = "deadlines") -> None:
        self.sim = sim
        self.name = name
        self._deadlines = np.full(0, math.inf, dtype=float)
        self._active = np.zeros(0, dtype=bool)
        self._expired = np.zeros(0, dtype=bool)
        self._order = np.zeros(0, dtype=np.int64)
        self._generations = np.zeros(0, dtype=np.int64)
        self._durations = np.zeros(0, dtype=float)
        self._callbacks: List[Optional[Tuple[Callable[..., Any], tuple]]] = []
        self._release_on_fire: List[bool] = []
        self._free: List[int] = []
        self._stamp = 0
        self._pending: Optional[Event] = None
        self._pending_time = math.inf

    # ---------------------------------------------------------------- entries
    def __len__(self) -> int:
        return int(self._active.sum())

    def _grow(self) -> None:
        old = len(self._durations)
        new = max(_INITIAL_DEADLINES, 2 * old)
        for attr, fill, dtype in (
            ("_deadlines", math.inf, float),
            ("_active", False, bool),
            ("_expired", False, bool),
            ("_order", 0, np.int64),
            ("_generations", 0, np.int64),
            ("_durations", 0.0, float),
        ):
            fresh = np.full(new, fill, dtype=dtype)
            fresh[:old] = getattr(self, attr)
            setattr(self, attr, fresh)
        self._callbacks.extend([None] * (new - old))
        self._release_on_fire.extend([False] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def arm(
        self,
        duration: float,
        callback: Callable[..., Any],
        *args: Any,
        release_on_fire: bool = False,
    ) -> DeadlineHandle:
        """Claim an entry and arm it ``duration`` seconds from now.

        ``release_on_fire=True`` recycles the entry into the free pool as soon
        as the deadline fires -- for fire-and-forget one-shots (a VM's exact
        lifetime expiry, say) whose callers never hold the handle, so a churny
        run does not grow the table by one dead entry per event.
        """
        if duration <= 0:
            raise SimulationError(f"deadline duration must be positive, got {duration}")
        if not self._free:
            self._grow()
        index = self._free.pop()
        self._generations[index] += 1
        self._durations[index] = float(duration)
        self._callbacks[index] = (callback, args)
        self._release_on_fire[index] = bool(release_on_fire)
        handle = DeadlineHandle(self, index, int(self._generations[index]))
        self._restart(index, None)
        return handle

    def release(self, handle: DeadlineHandle) -> None:
        """Disarm and recycle an entry (its handle becomes inert)."""
        if handle._valid():
            self._deactivate(handle.index)
            self._generations[handle.index] += 1
            self._callbacks[handle.index] = None
            self._free.append(handle.index)

    # ----------------------------------------------------------------- arming
    def restart_handles(self, handles: Sequence[DeadlineHandle], base: float) -> None:
        """Re-arm a batch of entries to ``base + duration`` each, in sequence order.

        The vectorized twin of calling ``handle.restart()`` on every handle
        with the clock at ``base``: one numpy write re-arms the batch,
        restart-order stamps are assigned in sequence order (the tie-break
        per-entry restarts would have produced), and released or stale
        handles are silently skipped -- exactly as the deliveries that would
        have restarted them would have been dropped.  ``base`` may lie in the
        future: a heartbeat publisher restarts its listeners' detectors at
        *delivery* time (publish time + latency) without waiting for the
        delivery event.
        """
        n = len(handles)
        if n == 0:
            return
        idx = np.fromiter((h.index for h in handles), dtype=np.int64, count=n)
        gens = np.fromiter((h.generation for h in handles), dtype=np.int64, count=n)
        valid = self._generations[idx] == gens
        if not bool(valid.all()):
            idx = idx[valid]
            n = int(idx.size)
            if n == 0:
                return
        deadlines = float(base) + self._durations[idx]
        self._deadlines[idx] = deadlines
        self._active[idx] = True
        self._expired[idx] = False
        self._order[idx] = np.arange(self._stamp + 1, self._stamp + n + 1, dtype=np.int64)
        self._stamp += n
        earliest = float(deadlines.min())
        if earliest < self._pending_time:
            self._schedule(earliest)

    def _restart(self, index: int, duration: Optional[float], base: Optional[float] = None) -> None:
        if duration is not None:
            if duration <= 0:
                raise SimulationError("deadline duration must be positive")
            self._durations[index] = float(duration)
        start = self.sim.now if base is None else float(base)
        deadline = start + float(self._durations[index])
        self._deadlines[index] = deadline
        self._active[index] = True
        self._expired[index] = False
        self._stamp += 1
        self._order[index] = self._stamp
        if deadline < self._pending_time:
            self._schedule(deadline)

    def _deactivate(self, index: int) -> None:
        self._active[index] = False
        self._deadlines[index] = math.inf

    def _schedule(self, time: float) -> None:
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = self.sim.schedule_at(time, self._sweep)
        self._pending_time = time

    # ------------------------------------------------------------------ sweep
    def _sweep(self) -> None:
        self._pending = None
        self._pending_time = math.inf
        now = self.sim.now
        due = np.flatnonzero(self._active & (self._deadlines <= now))
        if due.size:
            # Equal deadlines fire in restart order -- the order their
            # per-entry Timeout events would have been heap-ordered by.
            for index in sorted(due.tolist(), key=lambda i: int(self._order[i])):
                if not self._active[index] or self._deadlines[index] > now:
                    continue  # re-armed or cancelled by an earlier expiry callback
                self._deactivate(index)
                self._expired[index] = True
                callback, args = self._callbacks[index]
                if self._release_on_fire[index]:
                    self._generations[index] += 1
                    self._callbacks[index] = None
                    self._free.append(index)
                callback(*args)
        if self._active.any():
            earliest = float(self._deadlines[self._active].min())
            if earliest < self._pending_time:
                self._schedule(earliest)

    def next_deadline(self) -> float:
        """Earliest armed deadline (``inf`` when nothing is armed)."""
        return float(self._deadlines[self._active].min()) if self._active.any() else math.inf

    def armed_entries(self) -> Sequence[int]:
        """Indices of armed entries (diagnostics)."""
        return np.flatnonzero(self._active).tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DeadlineTable {self.name} armed={len(self)}>"
