"""Periodic timers and timeouts.

Heartbeats, monitoring intervals, reconfiguration periods and failure
detection timeouts all reduce to two primitives:

* :class:`PeriodicTimer` -- fire a callback every ``interval`` seconds until
  stopped (optionally with random jitter so that thousands of Local
  Controllers do not all send heartbeats in the same microsecond, which is
  also what happens on a real cluster).
* :class:`Timeout` -- a restartable one-shot deadline; restarting it models a
  failure detector that is reset whenever a heartbeat arrives.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulation.engine import Event, SimulationError, Simulator


class PeriodicTimer:
    """Repeatedly invoke ``callback`` every ``interval`` simulated seconds."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
        rng=None,
        start_immediately: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval}")
        if jitter < 0 or jitter >= interval:
            raise SimulationError("jitter must satisfy 0 <= jitter < interval")
        if jitter > 0 and rng is None:
            raise SimulationError("jitter requires an rng")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.args = args
        self.jitter = float(jitter)
        self.rng = rng
        self.name = name or getattr(callback, "__name__", "timer")
        self.fired_count = 0
        self._running = True
        self._pending: Optional[Event] = None
        first_delay = 0.0 if start_immediately else self._next_delay()
        self._pending = sim.schedule(first_delay, self._tick)

    def _next_delay(self) -> float:
        if self.jitter > 0:
            return self.interval + float(self.rng.uniform(-self.jitter, self.jitter))
        return self.interval

    def _tick(self) -> None:
        if not self._running:
            return
        self.fired_count += 1
        self.callback(*self.args)
        if self._running:
            self._pending = self.sim.schedule(self._next_delay(), self._tick)

    @property
    def running(self) -> bool:
        """True until :meth:`stop` is called."""
        return self._running

    def stop(self) -> None:
        """Stop the timer; no further callbacks fire."""
        self._running = False
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"<PeriodicTimer {self.name} every {self.interval}s {state}>"


class Timeout:
    """A restartable deadline used for failure detection.

    ``Timeout(sim, 5.0, on_expire)`` arms a 5 second deadline.  Calling
    :meth:`restart` (e.g. whenever a heartbeat is received) pushes the
    deadline back; if it is ever allowed to elapse, ``on_expire`` runs once.
    """

    def __init__(
        self,
        sim: Simulator,
        duration: float,
        callback: Callable[..., Any],
        *args: Any,
        auto_start: bool = True,
    ) -> None:
        if duration <= 0:
            raise SimulationError(f"timeout duration must be positive, got {duration}")
        self.sim = sim
        self.duration = float(duration)
        self.callback = callback
        self.args = args
        self.expired = False
        self._pending: Optional[Event] = None
        if auto_start:
            self.restart()

    @property
    def armed(self) -> bool:
        """True if the deadline is currently counting down."""
        return self._pending is not None and self._pending.pending

    def restart(self, duration: Optional[float] = None) -> None:
        """(Re-)arm the deadline ``duration`` (default: original duration) from now."""
        if duration is not None:
            if duration <= 0:
                raise SimulationError("timeout duration must be positive")
            self.duration = float(duration)
        self.cancel()
        self.expired = False
        self._pending = self.sim.schedule(self.duration, self._expire)

    def cancel(self) -> None:
        """Disarm without firing."""
        if self._pending is not None and self._pending.pending:
            self._pending.cancel()
        self._pending = None

    def _expire(self) -> None:
        self.expired = True
        self._pending = None
        self.callback(*self.args)
