"""Generator-based cooperative processes on top of the event engine.

A :class:`Process` wraps a Python generator.  The generator drives the
process by yielding *wait requests*:

* ``yield 2.5`` -- sleep for 2.5 simulated seconds;
* ``yield event`` -- suspend until the :class:`~repro.simulation.engine.Event`
  fires, receiving its ``value`` as the result of the ``yield``;
* ``yield process`` -- wait for another process to terminate, receiving its
  return value.

This mirrors the coroutine style of SimPy but is implemented from scratch so
that the reproduction has no external simulation dependency.  Hierarchy
components use processes for their long-running behaviours (e.g. a Local
Controller's monitoring loop) and plain callbacks/timers for one-shot work.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Generator, Optional

from repro.simulation.engine import Event, EventCancelled, SimulationError, Simulator


class ProcessKilled(Exception):
    """Injected into a process generator when :meth:`Process.kill` is called."""


class Process:
    """A cooperative process executing a generator on the simulator."""

    def __init__(self, sim: Simulator, generator: Generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._alive = True
        self._value: Any = None
        #: Event fired when the process terminates (normally or via kill).
        self.terminated: Event = sim.event()
        # Start on the next tick at current time so construction never
        # executes user code re-entrantly.
        sim.schedule(0.0, self._resume, None, True)

    # ------------------------------------------------------------------ state
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    @property
    def value(self) -> Any:
        """Return value of the generator (``StopIteration.value``) once finished."""
        return self._value

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it.

        Used by failure injection: killing a component's processes models a
        node crash without tearing down the rest of the simulation.
        """
        if not self._alive:
            return
        try:
            self._generator.throw(ProcessKilled(reason))
        except (StopIteration, ProcessKilled):
            pass
        except EventCancelled:
            pass
        self._finish(None)

    # --------------------------------------------------------------- plumbing
    def _finish(self, value: Any) -> None:
        if not self._alive:
            return
        self._alive = False
        self._value = value
        if self.terminated.pending:
            self.sim.trigger(self.terminated, value)

    def _resume(self, value: Any, ok: bool) -> None:
        if not self._alive:
            return
        try:
            if ok:
                request = self._generator.send(value)
            else:
                request = self._generator.throw(EventCancelled("waited event was cancelled"))
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except ProcessKilled:
            self._finish(None)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, Real):
            delay = float(request)
            if delay < 0:
                self._crash(SimulationError(f"process {self.name!r} yielded negative delay {delay}"))
                return
            self.sim.schedule(delay, self._resume, None, True)
        elif isinstance(request, Event):
            request.add_listener(self._on_event)
        elif isinstance(request, Process):
            request.terminated.add_listener(self._on_event)
        elif request is None:
            self.sim.schedule(0.0, self._resume, None, True)
        else:
            self._crash(
                SimulationError(
                    f"process {self.name!r} yielded unsupported object {type(request).__name__}"
                )
            )

    def _on_event(self, event: Event, ok: bool) -> None:
        if ok:
            self._resume(event.value, True)
        else:
            self._resume(None, False)

    def _crash(self, error: Exception) -> None:
        self._alive = False
        raise error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"


def sleep(duration: float) -> float:
    """Readability helper: ``yield sleep(3.0)`` inside a process generator."""
    return float(duration)


def wait(event: Event) -> Event:
    """Readability helper: ``yield wait(event)`` inside a process generator."""
    return event
