"""Local Controller side monitoring: sampling VMs and hosts.

Each Local Controller owns a :class:`VMMonitor` per hosted VM (bounded sample
history) and one :class:`HostMonitor` summarizing the host.  The LC's
monitoring loop (driven by a :class:`~repro.simulation.timers.PeriodicTimer`
in :mod:`repro.hierarchy.local_controller`) refreshes the samples and ships
them to the Group Manager.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.resources import ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.monitoring.estimators import DemandEstimator, EwmaEstimator


@dataclass(frozen=True)
class MonitoringSample:
    """One utilization observation of a VM (or host) at a point in time."""

    timestamp: float
    usage: ResourceVector

    def as_array(self) -> np.ndarray:
        """The usage vector as a plain numpy array."""
        return self.usage.values


class VMMonitor:
    """Bounded history of utilization samples for one VM plus demand estimation."""

    def __init__(
        self,
        vm: VirtualMachine,
        window: int = 20,
        estimator: Optional[DemandEstimator] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.vm = vm
        self.window = int(window)
        self.estimator = estimator or EwmaEstimator()
        self._samples: Deque[MonitoringSample] = deque(maxlen=self.window)

    def sample(self, now: float) -> MonitoringSample:
        """Refresh the VM's usage from its trace and append a sample."""
        usage = self.vm.update_usage(now)
        record = MonitoringSample(timestamp=now, usage=usage)
        self._samples.append(record)
        return record

    @property
    def samples(self) -> List[MonitoringSample]:
        """Current sample window, oldest first."""
        return list(self._samples)

    def estimate_demand(self) -> ResourceVector:
        """Estimated demand vector; falls back to the reservation when empty."""
        if not self._samples:
            return self.vm.requested
        matrix = np.vstack([sample.as_array() for sample in self._samples])
        estimate = self.estimator.estimate(matrix)
        # Never estimate above the reservation: the reservation caps what the
        # hypervisor will give the VM.
        capped = np.minimum(estimate, self.vm.requested.values)
        return ResourceVector(capped, self.vm.requested.dimensions)


class HostMonitor:
    """Aggregated view of one physical node and its VM monitors."""

    def __init__(
        self,
        node: PhysicalNode,
        window: int = 20,
        estimator: Optional[DemandEstimator] = None,
    ) -> None:
        self.node = node
        self.window = int(window)
        self.estimator = estimator or EwmaEstimator()
        self._vm_monitors: Dict[int, VMMonitor] = {}

    # ----------------------------------------------------------------- per VM
    def track_vm(self, vm: VirtualMachine) -> VMMonitor:
        """Start (or continue) monitoring a VM placed on this host."""
        if vm.vm_id not in self._vm_monitors:
            self._vm_monitors[vm.vm_id] = VMMonitor(vm, self.window, self.estimator)
        return self._vm_monitors[vm.vm_id]

    def untrack_vm(self, vm: VirtualMachine) -> None:
        """Stop monitoring a VM (it left this host)."""
        self._vm_monitors.pop(vm.vm_id, None)

    def vm_monitor(self, vm: VirtualMachine) -> Optional[VMMonitor]:
        """The monitor of a VM, if tracked."""
        return self._vm_monitors.get(vm.vm_id)

    # ------------------------------------------------------------------ sweep
    def sample_all(self, now: float) -> Dict[int, MonitoringSample]:
        """Sample every tracked VM; also reconciles with the node's VM list."""
        hosted_ids = {vm.vm_id for vm in self.node.vms}
        # Track newly placed VMs and drop ones that left.
        for vm in self.node.vms:
            self.track_vm(vm)
        for vm_id in list(self._vm_monitors):
            if vm_id not in hosted_ids:
                del self._vm_monitors[vm_id]
        return {vm_id: monitor.sample(now) for vm_id, monitor in self._vm_monitors.items()}

    def estimated_used(self) -> ResourceVector:
        """Sum of estimated VM demands on this host."""
        total = np.zeros(len(self.node.capacity))
        for monitor in self._vm_monitors.values():
            total += monitor.estimate_demand().values
        return ResourceVector(total, self.node.capacity.dimensions)

    def utilization(self) -> float:
        """Scalar CPU utilization estimate in [0, 1]."""
        dims = self.node.capacity.dimensions
        cpu_index = dims.index("cpu") if "cpu" in dims else 0
        capacity = self.node.capacity.values[cpu_index]
        if capacity <= 0:
            return 0.0
        return float(min(self.estimated_used().values[cpu_index] / capacity, 1.0))

    def refresh(self, now: float) -> None:
        """Append one sample per tracked VM (reconciling with the node's VM list)."""
        self.sample_all(now)

    def build_report(self, now: float) -> dict:
        """The monitoring payload, from the current sample windows (no resampling)."""
        return {
            "node_id": self.node.node_id,
            "timestamp": now,
            "capacity": self.node.capacity.values.tolist(),
            "used": self.estimated_used().values.tolist(),
            "reserved": self.node.reserved().values.tolist(),
            "vm_count": self.node.vm_count,
            "utilization": self.utilization(),
            "vm_usage": {
                vm_id: monitor.estimate_demand().values.tolist()
                for vm_id, monitor in self._vm_monitors.items()
            },
        }

    def report(self, now: float) -> dict:
        """Sample every tracked VM, then build the LC's monitoring payload."""
        self.refresh(now)
        return self.build_report(now)
