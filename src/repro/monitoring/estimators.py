"""Resource-demand estimators.

A Group Manager receives a history of utilization samples per VM and must
produce a single demand vector to schedule on ("Resource (i.e. CPU, memory and
network utilization) demand estimation", paper Section II.A).  The estimator
choice trades packing density against overload risk:

* :class:`MaxEstimator` is conservative (no overload from estimation error,
  poorest packing),
* :class:`MeanEstimator` is aggressive,
* :class:`EwmaEstimator` tracks recent behaviour (the default, matching the
  sliding estimation window of the Snooze implementation),
* :class:`PercentileEstimator` gives an explicit knob (e.g. p95).

All estimators are vectorized: they consume an ``(n_samples, d)`` array and
return a ``(d,)`` vector.
"""

from __future__ import annotations

import abc
import numpy as np


class DemandEstimator(abc.ABC):
    """Base class mapping a sample history to a demand estimate."""

    name: str = "base"

    @abc.abstractmethod
    def estimate(self, samples: np.ndarray) -> np.ndarray:
        """Reduce ``(n_samples, d)`` utilization samples to a ``(d,)`` estimate."""

    def _validate(self, samples: np.ndarray) -> np.ndarray:
        samples = np.asarray(samples, dtype=float)
        if samples.ndim == 1:
            samples = samples.reshape(1, -1)
        if samples.ndim != 2 or samples.shape[0] == 0:
            raise ValueError("samples must be a non-empty (n, d) array")
        return samples


class MeanEstimator(DemandEstimator):
    """Arithmetic mean of the sample window."""

    name = "mean"

    def estimate(self, samples: np.ndarray) -> np.ndarray:
        return self._validate(samples).mean(axis=0)


class MaxEstimator(DemandEstimator):
    """Per-dimension maximum -- the most conservative estimate."""

    name = "max"

    def estimate(self, samples: np.ndarray) -> np.ndarray:
        return self._validate(samples).max(axis=0)


class EwmaEstimator(DemandEstimator):
    """Exponentially weighted moving average over the window (newest weighs most)."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)

    def estimate(self, samples: np.ndarray) -> np.ndarray:
        samples = self._validate(samples)
        estimate = samples[0].astype(float).copy()
        for row in samples[1:]:
            estimate = self.alpha * row + (1.0 - self.alpha) * estimate
        return estimate


class PercentileEstimator(DemandEstimator):
    """Per-dimension percentile of the window (p95 by default)."""

    name = "percentile"

    def __init__(self, percentile: float = 95.0) -> None:
        if not (0.0 < percentile <= 100.0):
            raise ValueError("percentile must be in (0, 100]")
        self.percentile = float(percentile)

    def estimate(self, samples: np.ndarray) -> np.ndarray:
        return np.percentile(self._validate(samples), self.percentile, axis=0)


def make_estimator(name: str, **kwargs) -> DemandEstimator:
    """Factory keyed by estimator name (used by configuration and the CLI)."""
    registry = {
        "mean": MeanEstimator,
        "max": MaxEstimator,
        "ewma": EwmaEstimator,
        "percentile": PercentileEstimator,
    }
    try:
        cls = registry[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown estimator {name!r}; choose from {sorted(registry)}") from exc
    return cls(**kwargs)
