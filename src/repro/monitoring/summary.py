"""Group Manager resource summaries.

Paper Section II.B: "each GM periodically sends aggregated resource monitoring
information to the GL. This information includes the used and total capacity
of the GM".  Section II.C stresses that this summary is deliberately *not*
sufficient for exact placement (the free capacity may be fragmented across
Local Controllers), which is why the Group Leader only produces a candidate
list and the Group Managers do the real placement.  The summary therefore
carries exactly: used, reserved and total capacity, LC count and the largest
single free slot (so the GL can cheaply rule out GMs that obviously cannot
host a VM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.cluster.resources import DEFAULT_DIMENSIONS, ResourceVector


@dataclass
class GroupManagerSummary:
    """Aggregated capacity view of one Group Manager, as sent to the Group Leader."""

    gm_id: str
    timestamp: float
    total_capacity: ResourceVector
    reserved: ResourceVector
    used: ResourceVector
    local_controller_count: int
    active_vm_count: int
    #: The largest per-dimension free reservation on any single LC: an upper
    #: bound on the biggest VM this GM could host without migrations.
    largest_free_slot: ResourceVector

    # --------------------------------------------------------------- derived
    def free_capacity(self) -> ResourceVector:
        """Total unreserved capacity across the GM's LCs (possibly fragmented).

        Memoized: summaries are immutable snapshots, and Group Leader
        dispatching probes this once per known GM per submission.
        """
        cached = getattr(self, "_free_capacity", None)
        if cached is None:
            cached = (self.total_capacity - self.reserved).clamp_nonnegative()
            self._free_capacity = cached
        return cached

    def utilization(self) -> float:
        """Scalar reserved/total ratio averaged over dimensions (GL load balancing key)."""
        total = self.total_capacity.values
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(total > 0, self.reserved.values / total, 0.0)
        return float(ratios.mean()) if ratios.size else 0.0

    def could_host(self, demand: ResourceVector) -> bool:
        """Optimistic admission test used by GL dispatching (may still fail at the GM)."""
        return demand.fits_within(self.free_capacity()) and demand.fits_within(
            self.largest_free_slot
        )

    def to_payload(self) -> dict:
        """Serialize for transmission over the simulated network."""
        return {
            "gm_id": self.gm_id,
            "timestamp": self.timestamp,
            "total_capacity": self.total_capacity.values.tolist(),
            "reserved": self.reserved.values.tolist(),
            "used": self.used.values.tolist(),
            "local_controller_count": self.local_controller_count,
            "active_vm_count": self.active_vm_count,
            "largest_free_slot": self.largest_free_slot.values.tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict, dimensions: Sequence[str] = DEFAULT_DIMENSIONS) -> "GroupManagerSummary":
        """Deserialize a payload produced by :meth:`to_payload`."""
        return cls(
            gm_id=payload["gm_id"],
            timestamp=float(payload["timestamp"]),
            total_capacity=ResourceVector(payload["total_capacity"], dimensions),
            reserved=ResourceVector(payload["reserved"], dimensions),
            used=ResourceVector(payload["used"], dimensions),
            local_controller_count=int(payload["local_controller_count"]),
            active_vm_count=int(payload["active_vm_count"]),
            largest_free_slot=ResourceVector(payload["largest_free_slot"], dimensions),
        )

    @classmethod
    def from_reports(
        cls,
        gm_id: str,
        timestamp: float,
        lc_reports: Iterable[dict],
        dimensions: Sequence[str] = DEFAULT_DIMENSIONS,
    ) -> "GroupManagerSummary":
        """Aggregate the latest LC monitoring reports into a GM summary.

        Vectorized but bit-identical to a sequential per-report fold:
        ``np.add.accumulate`` is left-to-right by construction, and the
        largest free slot is the lexicographic maximum either way.
        """
        reports = list(lc_reports)
        lc_count = len(reports)
        vm_count = sum(int(report.get("vm_count", 0)) for report in reports)
        if reports:
            capacity_rows = np.asarray([report["capacity"] for report in reports], dtype=float)
            reserved_rows = np.asarray([report["reserved"] for report in reports], dtype=float)
            used_rows = np.asarray([report["used"] for report in reports], dtype=float)
            total = np.add.accumulate(capacity_rows, axis=0)[-1]
            reserved = np.add.accumulate(reserved_rows, axis=0)[-1]
            used = np.add.accumulate(used_rows, axis=0)[-1]
            free_rows = np.maximum(capacity_rows - reserved_rows, 0.0)
            # "largest" judged by the CPU dimension first, then memory: a simple
            # componentwise max would overestimate (mixing slots of different
            # LCs).  Stable lexsort picks the lexicographically largest row;
            # all rows are non-negative, so an all-zero maximum keeps the
            # zero-vector default.
            candidate = free_rows[np.lexsort(free_rows.T[::-1])[-1]]
            largest_slot = candidate if candidate.any() else np.zeros(len(dimensions))
        else:
            total = np.zeros(len(dimensions))
            reserved = np.zeros(len(dimensions))
            used = np.zeros(len(dimensions))
            largest_slot = np.zeros(len(dimensions))
        return cls(
            gm_id=gm_id,
            timestamp=timestamp,
            total_capacity=ResourceVector(total, dimensions),
            reserved=ResourceVector(reserved, dimensions),
            used=ResourceVector(used, dimensions),
            local_controller_count=lc_count,
            active_vm_count=vm_count,
            largest_free_slot=ResourceVector(largest_slot, dimensions),
        )


def aggregate_summaries(summaries: Iterable[GroupManagerSummary]) -> Optional[dict]:
    """Cluster-wide totals across GM summaries (used by reports and the CLI)."""
    summaries = list(summaries)
    if not summaries:
        return None
    dimensions = summaries[0].total_capacity.dimensions
    total = np.zeros(len(dimensions))
    reserved = np.zeros(len(dimensions))
    used = np.zeros(len(dimensions))
    lcs = 0
    vms = 0
    for summary in summaries:
        total += summary.total_capacity.values
        reserved += summary.reserved.values
        used += summary.used.values
        lcs += summary.local_controller_count
        vms += summary.active_vm_count
    return {
        "group_managers": len(summaries),
        "local_controllers": lcs,
        "active_vms": vms,
        "total_capacity": ResourceVector(total, dimensions),
        "reserved": ResourceVector(reserved, dimensions),
        "used": ResourceVector(used, dimensions),
    }
