"""Resource monitoring and demand estimation.

Paper Section II.B: "Monitoring is mandatory to take proper scheduling
decisions and is performed at all layers of the system."  Concretely:

* Local Controllers sample the utilization of their VMs and periodically send
  the samples to their Group Manager (:class:`~repro.monitoring.collector.VMMonitor`).
* Group Managers run resource-demand **estimators** over the received history
  (:mod:`repro.monitoring.estimators`: mean, max, exponential moving average,
  percentile) and use the estimates for scheduling.
* Group Managers periodically push an aggregated **summary** (used and total
  capacity) to the Group Leader
  (:class:`~repro.monitoring.summary.GroupManagerSummary`), which is all the
  GL knows when dispatching VM submissions.
"""

from repro.monitoring.collector import MonitoringSample, VMMonitor, HostMonitor
from repro.monitoring.estimators import (
    DemandEstimator,
    EwmaEstimator,
    MaxEstimator,
    MeanEstimator,
    PercentileEstimator,
    make_estimator,
)
from repro.monitoring.summary import GroupManagerSummary, aggregate_summaries

__all__ = [
    "MonitoringSample",
    "VMMonitor",
    "HostMonitor",
    "DemandEstimator",
    "MeanEstimator",
    "MaxEstimator",
    "EwmaEstimator",
    "PercentileEstimator",
    "make_estimator",
    "GroupManagerSummary",
    "aggregate_summaries",
]
