"""Array-backed telemetry plane: vectorized VM monitoring.

The scalar reference path (:mod:`repro.monitoring.collector`) materializes one
:class:`~repro.monitoring.collector.MonitoringSample` dataclass per VM per
monitoring tick and re-runs the demand estimator from a fresh ``np.vstack`` of
the sample window *three times* per report (once for ``used``, once for
``utilization``, once for ``vm_usage``).  At fleet scale that object churn and
the per-VM micro-kernels dominate the simulation's wall clock.

This module replaces that with a single :class:`TelemetryPlane` shared by all
Local Controllers of a deployment:

* one ``(slots, window, dims)`` float64 ring buffer holds the sample windows
  of every VM in the fleet (a slot per VM, allocated on placement and
  recycled on departure);
* demand estimates are computed **vectorized across all stale slots at
  once** -- one numpy kernel per estimator per distinct window fill level --
  and cached per slot until its next sample write (a stale-slot set), so each
  report reads precomputed rows;
* :class:`ArrayHostMonitor` is a drop-in replacement for
  :class:`~repro.monitoring.collector.HostMonitor` built on the plane.

Bit-identity contract
---------------------
The plane is an *optimization*, not a behaviour change: every estimate it
produces is **bit-identical** to the scalar reference (``VMMonitor`` /
``HostMonitor``) for the same sample stream.  The vectorized kernels mirror
the scalar operation order exactly (elementwise float64 arithmetic is
independent of batch shape; axis reductions over equal-length contiguous
windows share numpy's pairwise tree), host-level aggregation accumulates VM
rows sequentially in tracking order like the scalar loop, and the golden
scenario fixtures plus the hypothesis property suite
(``tests/test_properties_monitoring.py``) pin the equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.node import PhysicalNode
from repro.cluster.resources import ResourceVector
from repro.cluster.vm import VirtualMachine
from repro.monitoring.estimators import (
    DemandEstimator,
    EwmaEstimator,
    MaxEstimator,
    MeanEstimator,
    PercentileEstimator,
)

#: Initial slot capacity of a plane (grown geometrically on demand).
_INITIAL_CAPACITY = 64


def estimate_windows(
    estimator: DemandEstimator, windows: np.ndarray
) -> np.ndarray:
    """Apply ``estimator`` to a ``(m, n, d)`` block of equal-length windows.

    Returns the ``(m, d)`` estimates, bit-identical to calling
    ``estimator.estimate`` on each ``(n, d)`` window separately.  The four
    built-in estimators take vectorized fast paths; unknown estimator types
    fall back to the per-window reference implementation.
    """
    windows = np.ascontiguousarray(windows, dtype=float)
    if windows.ndim != 3 or windows.shape[1] == 0:
        raise ValueError("windows must be a non-empty (m, n, d) block")
    kind = type(estimator)
    if kind is MeanEstimator:
        return windows.mean(axis=1)
    if kind is MaxEstimator:
        return windows.max(axis=1)
    if kind is EwmaEstimator:
        alpha = estimator.alpha
        estimate = windows[:, 0].copy()
        for position in range(1, windows.shape[1]):
            estimate = alpha * windows[:, position] + (1.0 - alpha) * estimate
        return estimate
    if kind is PercentileEstimator:
        return np.percentile(windows, estimator.percentile, axis=1)
    # Custom estimator subclass: exactness by construction, no vectorization.
    return np.stack([estimator.estimate(window) for window in windows])


class TelemetryPlane:
    """Fleet-wide ring buffers of VM utilization samples plus cached estimates."""

    SERVICE_NAME = "telemetry-plane"

    def __init__(self, window: int, estimator: DemandEstimator) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.estimator = estimator
        self._dims: Optional[int] = None
        self._samples: Optional[np.ndarray] = None  # (cap, window, d)
        self._requested: Optional[np.ndarray] = None  # (cap, d)
        self._estimates: Optional[np.ndarray] = None  # (cap, d) cache rows
        self._pos = np.zeros(0, dtype=np.int64)  # next write index per slot
        self._counts = np.zeros(0, dtype=np.int64)  # samples held per slot
        self._vms: List[Optional[VirtualMachine]] = []
        self._free: List[int] = []
        self._live: set = set()
        #: Slots whose window changed since their estimate row was computed.
        self._stale: set = set()

    # ------------------------------------------------------------------ service
    @classmethod
    def shared(cls, sim, window: int, estimator: DemandEstimator) -> "TelemetryPlane":
        """The per-simulation shared plane (created on first use).

        A deployment whose components disagree on window/estimator settings
        gets a private plane per distinct configuration instead of sharing.
        """
        if sim.has_service(cls.SERVICE_NAME):
            plane = sim.get_service(cls.SERVICE_NAME)
            if plane.window == int(window) and _same_estimator(plane.estimator, estimator):
                return plane
            return cls(window, estimator)
        plane = cls(window, estimator)
        sim.register_service(cls.SERVICE_NAME, plane)
        return plane

    # ------------------------------------------------------------------- slots
    def __len__(self) -> int:
        return len(self._live)

    @property
    def capacity(self) -> int:
        """Allocated slot capacity (monotone, grown geometrically)."""
        return len(self._vms)

    def _grow(self, minimum: int) -> None:
        old = self.capacity
        new = max(_INITIAL_CAPACITY, minimum, 2 * old)
        assert self._dims is not None
        d = self._dims

        def grown(array: Optional[np.ndarray], shape) -> np.ndarray:
            fresh = np.zeros(shape, dtype=float)
            if array is not None and old:
                fresh[:old] = array
            return fresh

        self._samples = grown(self._samples, (new, self.window, d))
        self._requested = grown(self._requested, (new, d))
        self._estimates = grown(self._estimates, (new, d))
        for name in ("_pos", "_counts"):
            fresh = np.zeros(new, dtype=np.int64)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        self._vms.extend([None] * (new - old))
        self._free.extend(range(new - 1, old - 1, -1))

    def allocate(self, vm: VirtualMachine) -> int:
        """Claim a slot for ``vm`` (empty window, estimate falls back to the reservation)."""
        requested = np.asarray(vm.requested.values, dtype=float)
        if self._dims is None:
            self._dims = requested.shape[0]
        elif requested.shape[0] != self._dims:
            raise ValueError(
                f"VM {vm.name} has {requested.shape[0]} resource dimensions, "
                f"plane tracks {self._dims}"
            )
        if not self._free:
            self._grow(self.capacity + 1)
        slot = self._free.pop()
        self._vms[slot] = vm
        self._requested[slot] = requested
        self._pos[slot] = 0
        self._counts[slot] = 0
        self._live.add(slot)
        self._stale.add(slot)  # retire any cached estimate of a prior tenant
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free pool (its window is discarded)."""
        if slot not in self._live:
            return
        self._live.discard(slot)
        self._stale.discard(slot)
        self._vms[slot] = None
        self._free.append(slot)

    def vm_at(self, slot: int) -> Optional[VirtualMachine]:
        """The VM currently occupying ``slot`` (None if free)."""
        return self._vms[slot]

    # ----------------------------------------------------------------- samples
    def record(self, slot: int, values: np.ndarray) -> None:
        """Append one usage sample to the slot's ring (evicting the oldest when full)."""
        self._samples[slot, self._pos[slot]] = values
        self._pos[slot] = (self._pos[slot] + 1) % self.window
        self._counts[slot] = min(self._counts[slot] + 1, self.window)
        self._stale.add(slot)

    def count(self, slot: int) -> int:
        """Number of samples currently held for ``slot``."""
        return int(self._counts[slot])

    def window_view(self, slot: int) -> np.ndarray:
        """Chronological ``(count, d)`` copy of the slot's sample window."""
        n = int(self._counts[slot])
        if n < self.window:
            return self._samples[slot, :n].copy()
        pos = int(self._pos[slot])
        return np.concatenate([self._samples[slot, pos:], self._samples[slot, :pos]])

    # --------------------------------------------------------------- estimates
    def estimates(self, slots: Sequence[int]) -> np.ndarray:
        """Demand estimate rows for ``slots`` (``(len(slots), d)``).

        Estimates are cached per slot and recomputed only for slots whose
        window changed since they were last estimated.  The recomputation
        batch covers *every* stale live slot -- not just the requested ones --
        so a fleet-wide monitoring sweep vectorizes into one kernel invocation
        per window fill level regardless of how many hosts share the plane.
        """
        if self._dims is None:
            return np.zeros((0, 0), dtype=float)
        if self._stale:
            self._refresh(sorted(self._stale))
            self._stale.clear()
        return self._estimates[np.asarray(list(slots), dtype=np.int64)] if len(slots) else np.zeros(
            (0, self._dims), dtype=float
        )

    def estimate_row(self, slot: int) -> np.ndarray:
        """The cached estimate row of one slot (refreshing if stale)."""
        return self.estimates([slot])[0]

    def _refresh(self, slots: List[int]) -> None:
        by_count: Dict[int, List[int]] = {}
        for slot in slots:
            n = int(self._counts[slot])
            if n == 0:
                # Scalar reference: an empty window falls back to the
                # reservation, uncapped (it *is* the cap).
                self._estimates[slot] = self._requested[slot]
            else:
                by_count.setdefault(n, []).append(slot)
        for n, group in by_count.items():
            index = np.asarray(group, dtype=np.int64)
            if n < self.window:
                block = self._samples[index, :n]
            else:
                order = (self._pos[index][:, None] + np.arange(self.window)[None, :]) % self.window
                block = np.take_along_axis(self._samples[index], order[:, :, None], axis=1)
            estimate = estimate_windows(self.estimator, block)
            # Never estimate above the reservation (scalar VMMonitor contract).
            self._estimates[index] = np.minimum(estimate, self._requested[index])


def _same_estimator(left: DemandEstimator, right: DemandEstimator) -> bool:
    """Structural equality of estimator configurations (type + parameters)."""
    if type(left) is not type(right):
        return False
    if isinstance(left, EwmaEstimator):
        return left.alpha == right.alpha
    if isinstance(left, PercentileEstimator):
        return left.percentile == right.percentile
    return True


class ArrayHostMonitor:
    """Drop-in :class:`~repro.monitoring.collector.HostMonitor` on the plane.

    Same responsibilities -- track the VMs of one physical node, refresh their
    usage each monitoring interval, produce the LC's report payload -- but all
    sample state lives in the shared :class:`TelemetryPlane` and every
    estimate is read from its vectorized cache.
    """

    def __init__(self, node: PhysicalNode, plane: TelemetryPlane) -> None:
        self.node = node
        self.plane = plane
        #: vm_id -> plane slot, in first-tracked order (drives aggregation order).
        self._slots: Dict[int, int] = {}
        self._tracked: Dict[int, VirtualMachine] = {}

    @property
    def window(self) -> int:
        """Sample window length (plane-wide setting)."""
        return self.plane.window

    @property
    def estimator(self) -> DemandEstimator:
        """Demand estimator (plane-wide setting)."""
        return self.plane.estimator

    # ----------------------------------------------------------------- per VM
    def track_vm(self, vm: VirtualMachine) -> int:
        """Start (or continue) monitoring a VM placed on this host; returns its slot."""
        if vm.vm_id not in self._slots:
            self._slots[vm.vm_id] = self.plane.allocate(vm)
            self._tracked[vm.vm_id] = vm
        return self._slots[vm.vm_id]

    def untrack_vm(self, vm: VirtualMachine) -> None:
        """Stop monitoring a VM (it left this host)."""
        slot = self._slots.pop(vm.vm_id, None)
        self._tracked.pop(vm.vm_id, None)
        if slot is not None:
            self.plane.release(slot)

    def tracked_vm_ids(self) -> List[int]:
        """Currently tracked VM ids, in tracking order."""
        return list(self._slots)

    def estimate_demand(self, vm: VirtualMachine) -> ResourceVector:
        """Estimated demand vector of one tracked VM (reservation fallback when empty)."""
        slot = self._slots.get(vm.vm_id)
        if slot is None:
            return vm.requested
        return ResourceVector(self.plane.estimate_row(slot).copy(), vm.requested.dimensions)

    # ------------------------------------------------------------------ sweep
    def refresh(self, now: float) -> None:
        """Reconcile with the node's VM list and append one sample per VM."""
        hosted_ids = {vm.vm_id for vm in self.node.vms}
        for vm in self.node.vms:
            self.track_vm(vm)
        for vm_id in list(self._slots):
            if vm_id not in hosted_ids:
                self.untrack_vm(self._tracked[vm_id])
        for vm_id, slot in self._slots.items():
            usage = self._tracked[vm_id].update_usage(now)
            self.plane.record(slot, usage.values)

    def _estimate_rows(self) -> np.ndarray:
        return self.plane.estimates(list(self._slots.values()))

    def _fold_rows(self, rows: np.ndarray) -> np.ndarray:
        """Sum estimate rows sequentially in tracking order (scalar-loop bits)."""
        total = np.zeros(len(self.node.capacity))
        for row in rows:
            total += row
        return total

    def _cpu_utilization_of(self, total: np.ndarray) -> float:
        """Scalar CPU utilization in [0, 1] for a summed demand vector."""
        dims = self.node.capacity.dimensions
        cpu_index = dims.index("cpu") if "cpu" in dims else 0
        capacity = self.node.capacity.values[cpu_index]
        if capacity <= 0:
            return 0.0
        return float(min(total[cpu_index] / capacity, 1.0))

    def estimated_used(self) -> ResourceVector:
        """Sum of estimated VM demands on this host (sequential, tracking order)."""
        return ResourceVector(
            self._fold_rows(self._estimate_rows()), self.node.capacity.dimensions
        )

    def utilization(self) -> float:
        """Scalar CPU utilization estimate in [0, 1]."""
        return self._cpu_utilization_of(self._fold_rows(self._estimate_rows()))

    def build_report(self, now: float) -> dict:
        """The LC's monitoring payload, from the current sample windows.

        Unlike the scalar reference -- which recomputes every VM's estimate
        three times per report -- the estimate rows are computed once and
        every derived quantity reads them.
        """
        rows = self._estimate_rows()
        total = self._fold_rows(rows)
        utilization = self._cpu_utilization_of(total)
        return {
            "node_id": self.node.node_id,
            "timestamp": now,
            "capacity": self.node.capacity.values.tolist(),
            "used": total.tolist(),
            "reserved": self.node.reserved_values().tolist(),
            "vm_count": self.node.vm_count,
            "utilization": utilization,
            "vm_usage": {
                vm_id: rows[index].tolist()
                for index, vm_id in enumerate(self._slots)
            },
        }

    def report(self, now: float) -> dict:
        """Sample every tracked VM and build the report (scalar-API parity)."""
        self.refresh(now)
        return self.build_report(now)
