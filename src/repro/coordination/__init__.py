"""Coordination service: ZooKeeper substitute and leader election.

Snooze builds its Group Leader election "on top of the Apache ZooKeeper highly
available and reliable coordination system" (paper Section II.D).  The
reproduction provides an in-simulation coordination service exposing the same
primitives ZooKeeper recipes rely on -- a hierarchical znode namespace with
persistent, ephemeral and sequential nodes, watches, and sessions whose expiry
deletes their ephemeral nodes -- plus the standard leader-election recipe used
by Snooze (create an ephemeral sequential node, the lowest sequence number
leads, everyone else watches its predecessor).
"""

from repro.coordination.znodes import (
    CoordinationError,
    CoordinationService,
    NodeExistsError,
    NoNodeError,
    Session,
    ZNode,
)
from repro.coordination.election import LeaderElection

__all__ = [
    "CoordinationService",
    "CoordinationError",
    "NodeExistsError",
    "NoNodeError",
    "Session",
    "ZNode",
    "LeaderElection",
]
