"""A ZooKeeper-like znode store with sessions, ephemeral nodes and watches.

Only the subset of ZooKeeper semantics that the leader-election recipe (and
therefore Snooze) depends on is implemented:

* a hierarchical namespace of znodes addressed by slash-separated paths;
* **persistent** and **ephemeral** nodes -- ephemeral nodes are deleted when
  the owning session expires (the owning component crashed or lost
  connectivity);
* **sequential** nodes -- the service appends a monotonically increasing,
  zero-padded counter to the requested path;
* **watches** -- one-shot callbacks fired when a watched node is deleted or
  created, which is how a candidate learns its predecessor disappeared;
* **sessions** with a timeout refreshed by heartbeats from the client.

The store runs inside the simulation (deliveries and expirations are simulator
events), so a network partition or component crash exercises exactly the code
path the paper describes: "When a GL fails, its heartbeats are lost and the
leader election procedure is restarted by one of the GMs."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.simulation.batch import DeadlineHandle, DeadlineTable
from repro.simulation.engine import Simulator


class CoordinationError(RuntimeError):
    """Base error for coordination-service misuse."""


class NoNodeError(CoordinationError):
    """Raised when an operation references a path that does not exist."""


class NodeExistsError(CoordinationError):
    """Raised when creating a non-sequential node at an existing path."""


@dataclass
class ZNode:
    """A node in the coordination namespace."""

    path: str
    data: object = None
    ephemeral_owner: Optional[int] = None
    sequence: Optional[int] = None
    created_at: float = 0.0

    @property
    def is_ephemeral(self) -> bool:
        """True if the node dies with its owning session."""
        return self.ephemeral_owner is not None


@dataclass
class Session:
    """A client session; its expiry removes all ephemeral nodes it owns."""

    session_id: int
    owner_name: str
    timeout: float
    _timer: Optional[DeadlineHandle] = field(default=None, repr=False)
    expired: bool = False


class CoordinationService:
    """The in-simulation ZooKeeper substitute."""

    SERVICE_NAME = "coordination"

    def __init__(self, sim: Simulator, default_session_timeout: float = 10.0) -> None:
        if default_session_timeout <= 0:
            raise CoordinationError("session timeout must be positive")
        self.sim = sim
        self.default_session_timeout = float(default_session_timeout)
        self._nodes: Dict[str, ZNode] = {"/": ZNode(path="/")}
        self._sessions: Dict[int, Session] = {}
        self._session_counter = itertools.count(1)
        self._sequence_counters: Dict[str, itertools.count] = {}
        # Watches: path -> list of (callback, event_kind) where kind in {"deleted", "created", "children"}.
        self._delete_watches: Dict[str, List[Callable[[str], None]]] = {}
        self._create_watches: Dict[str, List[Callable[[str], None]]] = {}
        self._children_watches: Dict[str, List[Callable[[str], None]]] = {}
        if not sim.has_service(self.SERVICE_NAME):
            sim.register_service(self.SERVICE_NAME, self)

    # --------------------------------------------------------------- sessions
    def create_session(self, owner_name: str, timeout: Optional[float] = None) -> Session:
        """Open a session for ``owner_name``; must be kept alive with :meth:`touch_session`."""
        session = Session(
            session_id=next(self._session_counter),
            owner_name=owner_name,
            timeout=float(timeout) if timeout is not None else self.default_session_timeout,
        )
        # Pooled deadline: sessions are refreshed on every keeper heartbeat,
        # and per-refresh Timeout cancellation would leave one heap tombstone
        # per touch until the stale deadline passes.
        session._timer = DeadlineTable.shared(self.sim, "zk-sessions").arm(
            session.timeout, self._expire_session, session.session_id
        )
        self._sessions[session.session_id] = session
        return session

    def touch_session(self, session: Session) -> None:
        """Refresh the session's expiry deadline (the client is alive)."""
        if session.expired:
            raise CoordinationError(f"session {session.session_id} already expired")
        session._timer.restart()

    def close_session(self, session: Session) -> None:
        """Close a session cleanly, removing its ephemeral nodes immediately."""
        self._expire_session(session.session_id)

    def session_alive(self, session: Session) -> bool:
        """True while the session has not expired or been closed."""
        return not session.expired and session.session_id in self._sessions

    def _expire_session(self, session_id: int) -> None:
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        session.expired = True
        if session._timer is not None:
            session._timer.release()
            session._timer = None
        doomed = [
            path for path, node in self._nodes.items() if node.ephemeral_owner == session_id
        ]
        for path in doomed:
            self._delete_node(path)

    # ------------------------------------------------------------------ nodes
    def create(
        self,
        path: str,
        data: object = None,
        session: Optional[Session] = None,
        ephemeral: bool = False,
        sequential: bool = False,
    ) -> str:
        """Create a znode; returns the actual path (with the sequence suffix if sequential)."""
        path = self._normalize(path)
        if ephemeral:
            if session is None:
                raise CoordinationError("ephemeral nodes require a session")
            if not self.session_alive(session):
                raise CoordinationError("cannot create ephemeral node on an expired session")
        parent = path.rsplit("/", 1)[0] or "/"
        if parent not in self._nodes:
            # ZooKeeper requires parents to exist; Snooze always creates its
            # election root first, and we auto-create intermediate persistent
            # parents to keep call sites simple.
            self._ensure_parents(parent)
        if sequential:
            counter = self._sequence_counters.setdefault(path, itertools.count())
            sequence = next(counter)
            actual_path = f"{path}{sequence:010d}"
        else:
            sequence = None
            actual_path = path
            if actual_path in self._nodes:
                raise NodeExistsError(f"node {actual_path} already exists")
        self._nodes[actual_path] = ZNode(
            path=actual_path,
            data=data,
            ephemeral_owner=session.session_id if ephemeral else None,
            sequence=sequence,
            created_at=self.sim.now,
        )
        self._fire(self._create_watches, actual_path)
        self._fire(self._children_watches, parent)
        return actual_path

    def _ensure_parents(self, path: str) -> None:
        parts = [part for part in path.split("/") if part]
        current = ""
        for part in parts:
            current = f"{current}/{part}"
            if current not in self._nodes:
                self._nodes[current] = ZNode(path=current, created_at=self.sim.now)

    def exists(self, path: str) -> bool:
        """True if a node exists at ``path``."""
        return self._normalize(path) in self._nodes

    def get_data(self, path: str) -> object:
        """Return a node's data; raises :class:`NoNodeError` if absent."""
        node = self._nodes.get(self._normalize(path))
        if node is None:
            raise NoNodeError(path)
        return node.data

    def set_data(self, path: str, data: object) -> None:
        """Replace a node's data; raises :class:`NoNodeError` if absent."""
        node = self._nodes.get(self._normalize(path))
        if node is None:
            raise NoNodeError(path)
        node.data = data

    def delete(self, path: str) -> None:
        """Delete a node; raises :class:`NoNodeError` if absent."""
        path = self._normalize(path)
        if path not in self._nodes:
            raise NoNodeError(path)
        self._delete_node(path)

    def _delete_node(self, path: str) -> None:
        self._nodes.pop(path, None)
        parent = path.rsplit("/", 1)[0] or "/"
        self._fire(self._delete_watches, path)
        self._fire(self._children_watches, parent)

    def get_children(self, path: str) -> List[str]:
        """Direct children names of ``path``, sorted (as ZooKeeper returns them)."""
        path = self._normalize(path)
        if path not in self._nodes:
            raise NoNodeError(path)
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for candidate in self._nodes:
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                children.add(remainder.split("/", 1)[0])
        return sorted(children)

    # ---------------------------------------------------------------- watches
    def watch_delete(self, path: str, callback: Callable[[str], None]) -> None:
        """One-shot callback when ``path`` is deleted (fires immediately if absent)."""
        path = self._normalize(path)
        if path not in self._nodes:
            self.sim.schedule(0.0, callback, path)
            return
        self._delete_watches.setdefault(path, []).append(callback)

    def watch_create(self, path: str, callback: Callable[[str], None]) -> None:
        """One-shot callback when ``path`` is created (fires immediately if present)."""
        path = self._normalize(path)
        if path in self._nodes:
            self.sim.schedule(0.0, callback, path)
            return
        self._create_watches.setdefault(path, []).append(callback)

    def watch_children(self, path: str, callback: Callable[[str], None]) -> None:
        """One-shot callback when the children of ``path`` change."""
        self._children_watches.setdefault(self._normalize(path), []).append(callback)

    def _fire(self, registry: Dict[str, List[Callable[[str], None]]], path: str) -> None:
        callbacks = registry.pop(path, [])
        for callback in callbacks:
            # Watches are delivered asynchronously, as in ZooKeeper.
            self.sim.schedule(0.0, callback, path)

    # ------------------------------------------------------------------ misc
    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise CoordinationError(f"paths must be absolute, got {path!r}")
        if len(path) > 1 and path.endswith("/"):
            path = path.rstrip("/")
        return path

    def node_count(self) -> int:
        """Number of znodes currently stored (excluding the root)."""
        return len(self._nodes) - 1
