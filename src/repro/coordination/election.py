"""Leader election recipe on the coordination service.

This is the standard ZooKeeper election recipe Snooze uses for Group Leader
election (paper Section II.D):

1. every candidate creates an *ephemeral sequential* node under the election
   root, carrying its identity as data;
2. the candidate owning the node with the lowest sequence number is the
   leader;
3. every other candidate watches the node immediately preceding its own and
   re-evaluates when that node disappears (avoiding the herd effect);
4. when a leader's session expires (it crashed / was partitioned), its
   ephemeral node vanishes and the next candidate in line is promoted.

Candidates are notified through ``on_elected`` / ``on_leader_changed``
callbacks; the Group Manager component switches itself into Group Leader mode
when ``on_elected`` fires, exactly as described in the paper ("When an
existing GM becomes the new leader it switches to GL mode").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.coordination.znodes import CoordinationService, NoNodeError, Session


class LeaderElection:
    """One candidate's participation in an election."""

    def __init__(
        self,
        service: CoordinationService,
        candidate_id: str,
        election_root: str = "/snooze/election",
        session: Optional[Session] = None,
        session_timeout: Optional[float] = None,
        on_elected: Optional[Callable[[], None]] = None,
        on_leader_changed: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.service = service
        self.candidate_id = candidate_id
        self.election_root = election_root
        self.session = session or service.create_session(candidate_id, timeout=session_timeout)
        self.on_elected = on_elected
        self.on_leader_changed = on_leader_changed
        self._my_path: Optional[str] = None
        self._withdrawn = False
        self.is_leader = False

    # ------------------------------------------------------------------ join
    def join(self) -> str:
        """Enter the election; returns the created ephemeral sequential path."""
        if self._my_path is not None:
            return self._my_path
        self._withdrawn = False
        self._my_path = self.service.create(
            f"{self.election_root}/candidate-",
            data=self.candidate_id,
            session=self.session,
            ephemeral=True,
            sequential=True,
        )
        self._evaluate()
        return self._my_path

    def withdraw(self) -> None:
        """Leave the election voluntarily (component shutting down)."""
        self._withdrawn = True
        self.is_leader = False
        if self._my_path is not None and self.service.exists(self._my_path):
            self.service.delete(self._my_path)
        self._my_path = None

    def keep_alive(self) -> None:
        """Refresh the candidate's coordination session (called from its heartbeat loop)."""
        if self.service.session_alive(self.session):
            self.service.touch_session(self.session)

    # ------------------------------------------------------------- evaluation
    def current_leader(self) -> Optional[str]:
        """Identity of the current leader, or None if the election is empty."""
        ordered = self._ordered_candidates()
        if not ordered:
            return None
        try:
            return self.service.get_data(f"{self.election_root}/{ordered[0]}")
        except NoNodeError:
            return None

    def _ordered_candidates(self) -> list[str]:
        try:
            children = self.service.get_children(self.election_root)
        except NoNodeError:
            return []
        return sorted(children)

    def _evaluate(self, _path: str = "") -> None:
        """(Re-)determine leadership after joining or after a predecessor vanished."""
        if self._withdrawn or self._my_path is None:
            return
        if not self.service.exists(self._my_path):
            # Our session expired (we were partitioned); we are no longer a candidate.
            self.is_leader = False
            self._my_path = None
            return
        ordered = self._ordered_candidates()
        my_name = self._my_path.rsplit("/", 1)[1]
        position = ordered.index(my_name)
        if position == 0:
            if not self.is_leader:
                self.is_leader = True
                if self.on_elected is not None:
                    self.on_elected()
        else:
            self.is_leader = False
            predecessor = ordered[position - 1]
            self.service.watch_delete(f"{self.election_root}/{predecessor}", self._evaluate)
            if self.on_leader_changed is not None:
                leader = self.current_leader()
                if leader is not None:
                    self.on_leader_changed(leader)

    def __repr__(self) -> str:
        role = "leader" if self.is_leader else "candidate"
        return f"<LeaderElection {self.candidate_id} {role}>"
